"""Ablation D1: event-based versus membership-based constraint tracking.

The membership baseline (pre-Armus tools) pays a global bookkeeping
operation per register/arrive/block/unblock and must reimplement the
release protocol; the event-based representation pays only at
block/unblock.  The bench times both trackers processing an identical
SYNC-shaped trace and records the op-count ratio.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import representation_ablation
from repro.core.baseline import MembershipTracker
from repro.core.checker import DeadlockChecker
from repro.core.events import BlockedStatus, Event

N_TASKS = 16
STEPS = 200


def _drive_membership() -> int:
    tracker = MembershipTracker()
    tracker.create("bar")
    for t in range(N_TASKS):
        tracker.register("bar", f"t{t}")
    for _ in range(STEPS):
        for t in range(N_TASKS):
            tracker.block(f"t{t}", "bar")
            tracker.arrive("bar", f"t{t}")
        for t in range(N_TASKS):
            tracker.unblock(f"t{t}")
    return tracker.ops


def _drive_event_based() -> int:
    checker = DeadlockChecker()
    ops = 0
    for step in range(STEPS):
        for t in range(N_TASKS):
            checker.set_blocked(
                f"t{t}",
                BlockedStatus(
                    waits=frozenset({Event("bar", step + 1)}),
                    registered={"bar": step + 1},
                ),
            )
            ops += 1
        for t in range(N_TASKS):
            checker.clear(f"t{t}")
            ops += 1
    return ops


def test_membership_tracking_cost(benchmark):
    ops = benchmark(_drive_membership)
    benchmark.extra_info["bookkeeping_ops"] = ops


def test_event_based_cost(benchmark):
    ops = benchmark(_drive_event_based)
    benchmark.extra_info["bookkeeping_ops"] = ops


def test_op_count_ratio(benchmark):
    stats = benchmark(representation_ablation, n_tasks=N_TASKS, steps=STEPS)
    assert stats["membership_ops"] > stats["event_ops"]
    benchmark.extra_info.update(
        {k: round(v, 2) for k, v in stats.items()}
    )
