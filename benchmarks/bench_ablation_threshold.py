"""Ablation D2: the adaptive SG-abort threshold factor (default 2.0).

Sweeps the factor on an SG-friendly program (PS) and a balanced one
(FI).  PS should be insensitive (its SG is tiny at any threshold); FI's
edge counts grow as looser thresholds keep it on the SG longer.
"""

from __future__ import annotations

import pytest

from repro.core.selection import GraphModel
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.workloads.course import KERNELS
from repro.bench.harness import COURSE_SIZES

FACTORS = (0.5, 2.0, 8.0)


@pytest.mark.parametrize("factor", FACTORS)
@pytest.mark.parametrize("kernel", ("PS", "FI"))
def test_threshold_factor(benchmark, kernel: str, factor: float):
    edges = []

    def run():
        runtime = ArmusRuntime(
            mode=VerificationMode.AVOIDANCE,
            model=GraphModel.AUTO,
            threshold_factor=factor,
        ).start()
        try:
            result = KERNELS[kernel](runtime, **COURSE_SIZES[kernel])
        finally:
            runtime.stop()
        edges.append(runtime.stats.mean_edges)
        return result

    result = benchmark.pedantic(run, rounds=2, warmup_rounds=1, iterations=1)
    assert result.validated
    benchmark.extra_info["mean_edges"] = round(sum(edges) / len(edges), 1)
