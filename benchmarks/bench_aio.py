"""Asyncio-backend throughput vs the thread backend (``BENCH_aio.json``).

The workload is deadlock-free SPMD barrier rounds on one shared phaser:
``tasks × rounds`` verified synchronisations, every one of them running
the full observer protocol (fast path or block entry/exit, status
construction, cancellation polling).  The same shape runs on both
backends at matched task counts — the apples-to-apples comparison — and
then at task counts only the event loop can reach (the thread backend
stops at hundreds of OS threads; ``aio`` runs thousands of tasks in one
process, the workload class this backend opens).

``extra_info`` carries ``syncs_per_sec`` (tasks × rounds / mean wall
time) per backend/size point; CI uploads the whole suite as
``BENCH_aio.json`` next to the trace-replay benchmark artifact.

The ``aio-uvloop`` column (the ROADMAP item) reruns the aio points on a
uvloop event loop at matched sizes, so the artifact carries
syncs/sec for the default loop and uvloop side by side.  It is
probe-gated exactly like the CI uvloop leg: where no uvloop wheel is
installed the points *skip* instead of failing.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.aio.scenarios import barrier_rounds
from repro.runtime.phaser import Phaser
from repro.runtime.verifier import ArmusRuntime, VerificationMode


def _uvloop_available() -> bool:
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


#: (backend, tasks, rounds) grid.  Matched sizes first, then the
#: aio-only scale points (≥1000 tasks: the ISSUE's floor); the uvloop
#: column mirrors the aio points (probe-gated skip where unavailable).
POINTS = [
    ("thread", 32, 20),
    ("aio", 32, 20),
    ("aio-uvloop", 32, 20),
    ("thread", 128, 10),
    ("aio", 128, 10),
    ("aio-uvloop", 128, 10),
    ("aio", 1024, 4),
    ("aio-uvloop", 1024, 4),
    ("aio", 2048, 2),
    ("aio-uvloop", 2048, 2),
]


def run_thread_backend(n_tasks: int, rounds: int) -> int:
    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION, interval_s=0.1, poll_s=0.005
    ).start()
    try:
        ph = Phaser(runtime, register_self=False, name="bar")
        gate = threading.Event()

        def body() -> None:
            gate.wait(30)
            for _ in range(rounds):
                ph.arrive_and_await_advance()

        tasks = [
            runtime.spawn(body, register=[ph], name=f"w{i}")
            for i in range(n_tasks)
        ]
        gate.set()
        for task in tasks:
            task.join(120)
    finally:
        runtime.stop()
    assert not runtime.reports
    return n_tasks * rounds


def run_aio_backend(n_tasks: int, rounds: int) -> int:
    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION, interval_s=0.1, poll_s=0.005
    ).start()

    async def main() -> None:
        tasks = barrier_rounds(runtime, n_tasks, rounds)
        for task in tasks:
            await task.wait(120)

    try:
        asyncio.run(main())
    finally:
        runtime.stop()
    assert not runtime.reports
    return n_tasks * rounds


def run_aio_uvloop_backend(n_tasks: int, rounds: int) -> int:
    """The aio workload on a uvloop event loop (caller has probed the
    import)."""
    import uvloop

    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION, interval_s=0.1, poll_s=0.005
    ).start()

    async def main() -> None:
        tasks = barrier_rounds(runtime, n_tasks, rounds)
        for task in tasks:
            await task.wait(120)

    try:
        if hasattr(asyncio, "Runner"):  # 3.11+
            with asyncio.Runner(loop_factory=uvloop.new_event_loop) as runner:
                runner.run(main())
        else:  # 3.10: drive a uvloop loop by hand
            loop = uvloop.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                loop.run_until_complete(main())
            finally:
                asyncio.set_event_loop(None)
                loop.close()
    finally:
        runtime.stop()
    assert not runtime.reports
    return n_tasks * rounds


RUNNERS = {
    "thread": run_thread_backend,
    "aio": run_aio_backend,
    "aio-uvloop": run_aio_uvloop_backend,
}


@pytest.mark.parametrize(
    "backend,n_tasks,rounds", POINTS, ids=[f"{b}-N{n}xR{r}" for b, n, r in POINTS]
)
def test_barrier_rounds_throughput(bench, benchmark, backend, n_tasks, rounds):
    if backend == "aio-uvloop" and not _uvloop_available():
        pytest.skip("uvloop wheel not installed on this platform/python")
    syncs = bench(RUNNERS[backend], n_tasks, rounds)
    assert syncs == n_tasks * rounds
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["loop"] = (
        "uvloop" if backend == "aio-uvloop" else "asyncio"
    )
    benchmark.extra_info["tasks"] = n_tasks
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["syncs_per_sec"] = round(syncs / elapsed)
