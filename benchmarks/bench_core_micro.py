"""Core-library microbenchmarks: graph construction and cycle detection.

Not a paper artefact, but the foundation of every overhead number: how
fast one verification check is, as a function of blocked-task count and
the task:event ratio (Proposition 4.2's complexity in practice).
"""

from __future__ import annotations

import pytest

from repro.core.checker import DeadlockChecker
from repro.core.dependency import ResourceDependency
from repro.core.events import BlockedStatus, Event
from repro.core.graphs import build_grg, build_sg, build_wfg
from repro.core.cycles import find_cycle
from repro.core.selection import GraphModel, build_graph


def _spmd_snapshot(n_tasks: int, phase_skew: bool = True):
    """An SPMD-shaped state: all tasks on one barrier, half a phase
    ahead (the generation-overlap pattern that densifies the WFG)."""
    dep = ResourceDependency()
    for i in range(n_tasks):
        phase = 2 if (phase_skew and i % 2) else 1
        dep.set_blocked(
            f"t{i}",
            BlockedStatus(
                waits=frozenset({Event("bar", phase)}),
                registered={"bar": phase},
            ),
        )
    return dep.snapshot()


def _forkjoin_snapshot(n_tasks: int):
    """A fork/join-shaped state: one event per task (futures pattern)."""
    dep = ResourceDependency()
    for i in range(n_tasks):
        dep.set_blocked(
            f"t{i}",
            BlockedStatus(
                waits=frozenset({Event(f"f{(i + 1) % n_tasks}", 1)}),
                registered={f"f{i}": 0},
            ),
        )
    return dep.snapshot()


@pytest.mark.parametrize("n_tasks", (16, 64, 256))
@pytest.mark.parametrize(
    "builder", (build_wfg, build_sg, build_grg), ids=("wfg", "sg", "grg")
)
def test_build_spmd(benchmark, builder, n_tasks: int):
    snapshot = _spmd_snapshot(n_tasks)
    graph = benchmark(builder, snapshot)
    benchmark.extra_info["edges"] = graph.edge_count


@pytest.mark.parametrize("n_tasks", (16, 64, 256))
@pytest.mark.parametrize("model", ("auto", "wfg", "sg"))
def test_full_check_spmd(benchmark, model: str, n_tasks: int):
    snapshot = _spmd_snapshot(n_tasks)
    gm = GraphModel(model)

    def check():
        built = build_graph(snapshot, gm)
        return find_cycle(built.graph), built

    cycle, built = benchmark(check)
    assert cycle is None  # phase skew alone is not a deadlock
    benchmark.extra_info["edges"] = built.edge_count
    benchmark.extra_info["model_used"] = built.model_used.value


@pytest.mark.parametrize("n_tasks", (16, 64, 256))
def test_full_check_forkjoin_cycle(benchmark, n_tasks: int):
    """Worst case with a real cycle: the futures ring deadlock."""
    snapshot = _forkjoin_snapshot(n_tasks)
    checker = DeadlockChecker(model=GraphModel.AUTO)

    def check():
        return checker.check(snapshot=snapshot)

    report = benchmark(check)
    assert report is not None and len(report.tasks) == n_tasks
