"""Figure 6 (a-f): execution time vs task count per verification mode.

The full grid is kernels x modes x task counts; to bound suite time the
bench sweeps every kernel at the three modes for n=4, and sweeps the
task axis on CG (Figure 6b, the most barrier-intensive kernel).
Detection should stay flat with task count; avoidance should grow.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import LOCAL_KERNELS, run_local_kernel

MODES = ("off", "detection", "avoidance")


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("kernel", sorted(LOCAL_KERNELS))
def test_modes_at_4_tasks(bench, kernel: str, mode: str):
    result = bench(run_local_kernel, kernel, mode, 4)
    assert result.validated


@pytest.mark.parametrize("n_tasks", (2, 4, 8, 16))
@pytest.mark.parametrize("mode", MODES)
def test_cg_task_scaling(bench, mode: str, n_tasks: int):
    result = bench(run_local_kernel, "CG", mode, n_tasks)
    assert result.validated
