"""Figure 7: distributed deadlock detection overhead — plus the
delta-vs-bucket protocol column.

Each HPCC kernel runs on a 4-place cluster, unchecked versus with every
site publishing and checking (200 ms period, the paper's setting).  The
paper reports *no statistical evidence* of overhead; expect the checked
and unchecked timings to be statistically indistinguishable.

The protocol column drives the same periodic publish/check rounds over
a synthetic cluster state twice — once through the legacy bucket
protocol (every site re-``put``s its whole encoded bucket, every check
re-merges the full global view) and once through the delta wire
protocol (sites append ``set``/``restore``/``clear`` deltas, the
checker maintains its merged view incrementally) — and compares

* **bytes on the wire** per run (store ``bytes_put + bytes_get``), and
* **merge cost** per run (statuses decoded+merged per check vs
  task-level delta ops applied),

with both protocols required to report the *same* deadlock when the
final round ties a cross-site knot.  The acceptance floor (≥5× on both
quantities) arms at the ISSUE's size — 8 sites × 1000 tasks — which is
the default; CI runs a reduced size via ``REPRO_FIG7_SITES`` /
``REPRO_FIG7_TASKS``.  CI uploads the suite as
``BENCH_distributed_delta.json`` (the checked-in copy records the
full-size numbers).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import HPCC_KERNELS, _run_distributed, make_cluster
from repro.core.checker import DeadlockChecker
from repro.core.events import waiting_on
from repro.distributed.delta import DeltaPublisher, encode_bucket
from repro.distributed.detector import DistributedChecker, check_buckets
from repro.distributed.store import InMemoryStore, encode_statuses

N_PLACES = 4

# -- delta-vs-bucket protocol column ----------------------------------------
#: Acceptance size (the ISSUE's floor); CI overrides with reduced N.
N_SITES = int(os.environ.get("REPRO_FIG7_SITES", "8"))
N_TASKS = int(os.environ.get("REPRO_FIG7_TASKS", "1000"))
#: Publish/check rounds per run, and status changes per round (~1%).
N_ROUNDS = int(os.environ.get("REPRO_FIG7_ROUNDS", "40"))
CHANGES_PER_ROUND = max(1, N_TASKS // 100)

#: The acceptance floor for both the traffic and merge-cost ratios.
PROTOCOL_FLOOR = 5.0


def _initial_statuses():
    """A deadlock-free cluster state: every task blocked on its own
    phaser (no impeders, so continuous checks stay cheap and honest)."""
    return {
        f"t{i}": waiting_on(f"w{i}", 1, **{f"w{i}": 1}) for i in range(N_TASKS)
    }


def _site_of(i: int) -> str:
    return f"site{i % N_SITES}"


def _mutate(statuses, round_no: int) -> None:
    """Churn ~1% of tasks per round (status replaced, phases bumped)."""
    for k in range(CHANGES_PER_ROUND):
        i = (round_no * CHANGES_PER_ROUND + k) % N_TASKS
        phase = round_no + 1
        statuses[f"t{i}"] = waiting_on(f"w{i}", phase, **{f"w{i}": phase})


def _tie_knot(statuses) -> None:
    """Close a cross-site cycle between the first two sites' tasks."""
    statuses["t0"] = waiting_on("kp", 1, kp=1, kq=0)
    statuses["t1"] = waiting_on("kq", 1, kq=1, kp=0)


def _site_slices(statuses):
    out = {f"site{s}": {} for s in range(N_SITES)}
    for i, (task, status) in enumerate(statuses.items()):
        out[_site_of(i)][task] = status
    return out


def run_bucket_protocol():
    """The pre-delta reference: whole buckets out, full re-merge in."""
    store = InMemoryStore("bucket", track_bytes=True)
    checker = DeadlockChecker()
    statuses = _initial_statuses()
    merged_statuses = 0
    report = None
    for r in range(N_ROUNDS):
        _mutate(statuses, r)
        if r == N_ROUNDS - 1:
            _tie_knot(statuses)
        for site, slice_ in _site_slices(statuses).items():
            store.put(site, encode_statuses(slice_))
        merged_statuses += len(statuses)
        report = check_buckets(store, checker=checker)
    return {
        "bytes": store.bytes_put + store.bytes_get,
        "merge_cost": merged_statuses,
        "report": report,
    }


def run_delta_protocol():
    """The live protocol: deltas out, maintained view in."""
    store = InMemoryStore("delta", track_bytes=True)
    checker = DistributedChecker(store)
    publishers = {f"site{s}": DeltaPublisher(f"site{s}") for s in range(N_SITES)}
    statuses = _initial_statuses()
    report = None
    for r in range(N_ROUNDS):
        _mutate(statuses, r)
        if r == N_ROUNDS - 1:
            _tie_knot(statuses)
        for site, slice_ in _site_slices(statuses).items():
            publisher = publishers[site]
            obj = publisher.prepare(encode_bucket(slice_))
            if obj is None:
                continue
            store.append_delta(site, obj)
            publisher.commit(obj)
        report = checker.check_global()
    return {
        "bytes": store.bytes_put + store.bytes_get,
        "merge_cost": checker.view.ops_applied,
        "report": report,
    }


PROTOCOLS = {"bucket": run_bucket_protocol, "delta": run_delta_protocol}

#: The bucket param's last (deterministic) run, reused as the delta
#: param's reference so the most expensive workload is not repeated.
_bucket_reference: list = []


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_delta_vs_bucket_protocol(bench, benchmark, protocol):
    """The tentpole acceptance column: per-round bytes-on-wire and
    per-check merge cost, delta vs bucket, identical reports."""
    result = bench(PROTOCOLS[protocol])
    assert result["report"] is not None, "the final knot must be detected"
    benchmark.extra_info["protocol"] = protocol
    benchmark.extra_info["sites"] = N_SITES
    benchmark.extra_info["tasks"] = N_TASKS
    benchmark.extra_info["rounds"] = N_ROUNDS
    benchmark.extra_info["bytes_on_wire"] = result["bytes"]
    benchmark.extra_info["merge_cost"] = result["merge_cost"]
    if protocol == "bucket":
        _bucket_reference[:] = [result]
    if protocol == "delta":
        # The run is deterministic, so the bucket param's result (when
        # that param ran, e.g. not under -k delta) serves verbatim.
        reference = (
            _bucket_reference[0] if _bucket_reference else run_bucket_protocol()
        )
        # Byte-identical evidence across protocols.
        assert result["report"] == reference["report"]
        traffic_ratio = reference["bytes"] / max(1, result["bytes"])
        merge_ratio = reference["merge_cost"] / max(1, result["merge_cost"])
        benchmark.extra_info["traffic_reduction"] = round(traffic_ratio, 1)
        benchmark.extra_info["merge_cost_reduction"] = round(merge_ratio, 1)
        benchmark.extra_info["floor"] = PROTOCOL_FLOOR
        if N_SITES >= 8 and N_TASKS >= 1000:
            assert traffic_ratio >= PROTOCOL_FLOOR
            assert merge_ratio >= PROTOCOL_FLOOR


@pytest.fixture(scope="module")
def clusters():
    """Long-lived clusters: site start/stop stays out of the timed
    region, as in the paper's deployment (the tool runs alongside)."""
    plain = make_cluster(N_PLACES, checked=False)
    monitored = make_cluster(N_PLACES, checked=True)
    yield {False: plain, True: monitored}
    monitored.stop()


@pytest.mark.parametrize("checked", (False, True), ids=("unchecked", "checked"))
@pytest.mark.parametrize("kernel", sorted(HPCC_KERNELS))
def test_distributed_detection(bench, clusters, kernel: str, checked: bool):
    result = bench(
        _run_distributed, kernel, N_PLACES, checked, clusters[checked]
    )
    assert result.validated
