"""Figure 7: distributed deadlock detection overhead.

Each HPCC kernel runs on a 4-place cluster, unchecked versus with every
site publishing and checking (200 ms period, the paper's setting).  The
paper reports *no statistical evidence* of overhead; expect the checked
and unchecked timings to be statistically indistinguishable.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import HPCC_KERNELS, _run_distributed, make_cluster

N_PLACES = 4


@pytest.fixture(scope="module")
def clusters():
    """Long-lived clusters: site start/stop stays out of the timed
    region, as in the paper's deployment (the tool runs alongside)."""
    plain = make_cluster(N_PLACES, checked=False)
    monitored = make_cluster(N_PLACES, checked=True)
    yield {False: plain, True: monitored}
    monitored.stop()


@pytest.mark.parametrize("checked", (False, True), ids=("unchecked", "checked"))
@pytest.mark.parametrize("kernel", sorted(HPCC_KERNELS))
def test_distributed_detection(bench, clusters, kernel: str, checked: bool):
    result = bench(
        _run_distributed, kernel, N_PLACES, checked, clusters[checked]
    )
    assert result.validated
