"""Figure 8: graph-model choice under deadlock *avoidance*.

Course programs (SE, FI, FR, BFS, PS) x {unchecked, Auto, SG, WFG}.
The paper's headline: the model choice severely amplifies avoidance
overhead — fixed WFG on PS costs 600% versus 82% adaptive — and Auto
never loses to the better fixed model by much.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SELECTIONS, run_course_kernel
from repro.workloads.course import KERNELS


@pytest.mark.parametrize("selection", list(SELECTIONS))
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_avoidance_model_choice(bench, kernel: str, selection: str):
    model = SELECTIONS[selection]
    if model is None:
        result, _rt = bench(run_course_kernel, kernel, "off")
    else:
        result, _rt = bench(run_course_kernel, kernel, "avoidance", model)
    assert result.validated
