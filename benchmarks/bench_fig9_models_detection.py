"""Figure 9: graph-model choice under deadlock *detection*.

Same grid as Figure 8 in detection mode: the dedicated checker task
decouples verification from the application, so overheads are far lower
and the model choice matters less (paper: up to 9% difference).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SELECTIONS, run_course_kernel
from repro.workloads.course import KERNELS


@pytest.mark.parametrize("selection", list(SELECTIONS))
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_detection_model_choice(bench, kernel: str, selection: str):
    model = SELECTIONS[selection]
    if model is None:
        result, _rt = bench(run_course_kernel, kernel, "off")
    else:
        result, _rt = bench(run_course_kernel, kernel, "detection", model)
    assert result.validated
