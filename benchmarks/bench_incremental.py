"""Incremental vs from-scratch checking: the O(N) vs O(N²) replay wall.

The ISSUE's acceptance workload is a ``check_every=1`` detection replay
of an N-task aio cycle trace (the thousand-task ring the asyncio
backend records).  The from-scratch engine rebuilds the analysis graph
at every cadence point — quadratic overall; the incremental engine
feeds record-level deltas into the maintained graph and only pays for
what changed — linear, with the single canonical-extraction fallback at
the knot-closing record.

``extra_info`` records per-engine events/sec and, on the incremental
points, ``speedup_vs_scratch`` — the acceptance figure (≥5× at
N=1000).  CI runs the suite at a reduced N (``REPRO_INCR_BENCH_TASKS``)
and uploads ``BENCH_incremental.json``; run locally without the
variable for the full-size numbers.

A second pair of points replays the churn-shaped ok-trace (constant
small blocked set, heavy block/unblock turnover) — the delta engine's
worst case relative to scratch, reported for honesty: the win there is
bounded because the from-scratch graphs are already tiny.
"""

from __future__ import annotations

import os

import pytest

from repro.trace.corpus import AioSpec, build_trace
from repro.trace.replay import replay

#: Acceptance size; CI overrides with a reduced count.
N_TASKS = int(os.environ.get("REPRO_INCR_BENCH_TASKS", "1000"))

#: The acceptance floor for the cycle-shape speedup.
SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def cycle_trace():
    return build_trace(AioSpec(tasks=N_TASKS, shape="cycle", deadlock=True))


@pytest.fixture(scope="module")
def churn_trace():
    return build_trace(AioSpec(tasks=N_TASKS, shape="churn", deadlock=False))


def _info(benchmark, trace, engine):
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["tasks"] = N_TASKS
    benchmark.extra_info["records"] = len(trace)
    benchmark.extra_info["events_per_sec"] = round(len(trace) / elapsed)
    return elapsed


def test_cycle_scratch(bench, benchmark, cycle_trace):
    result = bench(lambda: replay(cycle_trace, check_every=1))
    assert result.deadlocked
    _info(benchmark, cycle_trace, "scratch")


def test_cycle_incremental(bench, benchmark, cycle_trace):
    """The acceptance point: ≥5× over from-scratch at ``check_every=1``."""
    result = bench(lambda: replay(cycle_trace, check_every=1, incremental=True))
    assert result.deadlocked
    elapsed = _info(benchmark, cycle_trace, "incremental")
    # One timed from-scratch reference inside the same process/state so
    # the speedup lands in this benchmark's extra_info.
    import time

    t0 = time.perf_counter()
    reference = replay(cycle_trace, check_every=1)
    scratch_s = time.perf_counter() - t0
    assert reference.reports == result.reports  # byte-identical evidence
    speedup = scratch_s / elapsed
    benchmark.extra_info["scratch_s"] = round(scratch_s, 4)
    benchmark.extra_info["speedup_vs_scratch"] = round(speedup, 1)
    benchmark.extra_info["speedup_floor"] = SPEEDUP_FLOOR
    if N_TASKS >= 1000:
        assert speedup >= SPEEDUP_FLOOR


def test_churn_scratch(bench, benchmark, churn_trace):
    result = bench(lambda: replay(churn_trace, check_every=1))
    assert not result.deadlocked
    _info(benchmark, churn_trace, "scratch")


def test_churn_incremental(bench, benchmark, churn_trace):
    result = bench(lambda: replay(churn_trace, check_every=1, incremental=True))
    assert not result.deadlocked
    _info(benchmark, churn_trace, "incremental")


def test_sharded_cycle_incremental(bench, benchmark, cycle_trace):
    """Sharded detection through the maintained graph: the oracle keeps
    shard checks O(1) while acyclic too."""
    result = bench(
        lambda: replay(
            cycle_trace, check_every=1, shard_components=True, incremental=True
        )
    )
    assert result.deadlocked
    _info(benchmark, cycle_trace, "incremental+sharded")
