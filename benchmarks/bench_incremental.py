"""Incremental vs from-scratch checking: the O(N) vs O(N²) replay wall.

The ISSUE's acceptance workload is a ``check_every=1`` detection replay
of an N-task aio cycle trace (the thousand-task ring the asyncio
backend records).  The from-scratch engine rebuilds the analysis graph
at every cadence point — quadratic overall; the incremental engine
feeds record-level deltas into the maintained graph and only pays for
what changed — linear, with the single canonical-extraction fallback at
the knot-closing record.

``extra_info`` records per-engine events/sec and, on the incremental
points, ``speedup_vs_scratch`` — the acceptance figure (≥5× at
N=1000).  CI runs the suite at a reduced N (``REPRO_INCR_BENCH_TASKS``)
and uploads ``BENCH_incremental.json``; run locally without the
variable for the full-size numbers.

A second pair of points replays the churn-shaped ok-trace (constant
small blocked set, heavy block/unblock turnover) — the delta engine's
worst case relative to scratch, reported for honesty: the win there is
bounded because the from-scratch graphs are already tiny.
"""

from __future__ import annotations

import contextlib
import os
import time

import pytest

from repro.core._native import NATIVE_ENV, native_available
from repro.core.incremental import IncrementalChecker
from repro.obs import tracing
from repro.trace.corpus import AioSpec, build_trace
from repro.trace.replay import ReplayEngine, replay

#: Acceptance size; CI overrides with a reduced count.
N_TASKS = int(os.environ.get("REPRO_INCR_BENCH_TASKS", "1000"))

#: The acceptance floor for the cycle-shape speedup.
SPEEDUP_FLOOR = 5.0


@contextlib.contextmanager
def seed_engine():
    """Reconstruct the engine configuration the pre-batching checked-in
    numbers measured, so the hot-path speedup has a baseline from the
    *same run on the same machine* (checked-in absolute numbers do not
    transfer across VMs — see EXPERIMENTS.md).  Four reversions:
    per-edge delta application, pure-Python SCC maintenance, the eager
    status-view rebuild at every cadence point that carried reports,
    and the per-vertex provenance-attribution scan (the predecessor of
    ``_attribution_index``)."""
    real_batch = IncrementalChecker.apply_batch
    real_collect = ReplayEngine._collect
    real_attribute = tracing._attribute
    real_index = tracing._attribution_index
    real_native = os.environ.get(NATIVE_ENV)

    def per_edge(self, ops):
        for op, task, status in ops:
            if op == "set":
                self.set_blocked(task, status)
            elif op == "clear":
                self.clear(task)
            else:
                self.restore(task, status)

    def eager_collect(self, reports, seen, result, origins, statuses_fn,
                      lags):
        if reports:
            statuses = statuses_fn()
            statuses_fn = lambda: statuses  # noqa: E731
        return real_collect(self, reports, seen, result, origins,
                            statuses_fn, lags)

    def scanning_attribute(vertex, report, statuses, tracker, index=None):
        # The seed implementation: a sorted scan over the report's
        # tasks for every cycle vertex — O(cycle × statuses) per
        # report, the quadratic term the attribution index removed.
        fallback = tracing.RecordOrigin(tracker.last_ordinal, "block")
        if vertex in tracker.origins:
            return tracker.origins[vertex], str(vertex)
        if vertex in statuses or not report.tasks:
            return fallback, str(vertex)
        candidates = sorted(
            (str(t), t) for t in report.tasks
            if t in statuses and vertex in statuses[t].waits
        )
        if not candidates:
            candidates = sorted((str(t), t) for t in report.tasks)
        task = candidates[0][1]
        return tracker.origins.get(task, fallback), str(task)

    IncrementalChecker.apply_batch = per_edge
    ReplayEngine._collect = eager_collect
    tracing._attribute = scanning_attribute
    tracing._attribution_index = lambda report, statuses: None
    os.environ[NATIVE_ENV] = "0"
    try:
        yield
    finally:
        IncrementalChecker.apply_batch = real_batch
        ReplayEngine._collect = real_collect
        tracing._attribute = real_attribute
        tracing._attribution_index = real_index
        if real_native is None:
            os.environ.pop(NATIVE_ENV, None)
        else:
            os.environ[NATIVE_ENV] = real_native


@pytest.fixture(scope="module")
def cycle_trace():
    return build_trace(AioSpec(tasks=N_TASKS, shape="cycle", deadlock=True))


@pytest.fixture(scope="module")
def churn_trace():
    return build_trace(AioSpec(tasks=N_TASKS, shape="churn", deadlock=False))


def _info(benchmark, trace, engine):
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["tasks"] = N_TASKS
    benchmark.extra_info["records"] = len(trace)
    benchmark.extra_info["events_per_sec"] = round(len(trace) / elapsed)
    return elapsed


def test_cycle_scratch(bench, benchmark, cycle_trace):
    result = bench(lambda: replay(cycle_trace, check_every=1))
    assert result.deadlocked
    _info(benchmark, cycle_trace, "scratch")


def test_cycle_incremental(bench, benchmark, cycle_trace):
    """The acceptance point: ≥5× over from-scratch at ``check_every=1``."""
    result = bench(lambda: replay(cycle_trace, check_every=1, incremental=True))
    assert result.deadlocked
    elapsed = _info(benchmark, cycle_trace, "incremental")
    # One timed from-scratch reference inside the same process/state so
    # the speedup lands in this benchmark's extra_info.
    import time

    t0 = time.perf_counter()
    reference = replay(cycle_trace, check_every=1)
    scratch_s = time.perf_counter() - t0
    assert reference.reports == result.reports  # byte-identical evidence
    speedup = scratch_s / elapsed
    benchmark.extra_info["scratch_s"] = round(scratch_s, 4)
    benchmark.extra_info["speedup_vs_scratch"] = round(speedup, 1)
    benchmark.extra_info["speedup_floor"] = SPEEDUP_FLOOR
    if N_TASKS >= 1000:
        assert speedup >= SPEEDUP_FLOOR


def test_cycle_incremental_compiled(bench, benchmark, cycle_trace,
                                    monkeypatch):
    """The hot-path acceptance point: batched delta application plus
    the compiled SCC kernel, floored at ≥5× over the seed engine
    (per-edge, pure Python, eager enrichment) timed in the same run.
    Reports must be identical across all three configurations."""
    if not native_available():
        pytest.skip("compiled kernel not built")
    monkeypatch.setenv(NATIVE_ENV, "require")
    result = bench(
        lambda: replay(cycle_trace, check_every=1, incremental=True)
    )
    assert result.deadlocked
    elapsed = _info(benchmark, cycle_trace, "incremental+batched+compiled")

    t0 = time.perf_counter()
    with seed_engine():
        baseline = replay(cycle_trace, check_every=1, incremental=True)
    baseline_s = time.perf_counter() - t0
    assert baseline.reports == result.reports  # byte-identical evidence

    speedup = baseline_s / elapsed
    benchmark.extra_info["seed_engine_s"] = round(baseline_s, 4)
    benchmark.extra_info["seed_engine_events_per_sec"] = round(
        len(cycle_trace) / baseline_s
    )
    benchmark.extra_info["speedup_vs_seed_engine"] = round(speedup, 1)
    benchmark.extra_info["speedup_floor"] = SPEEDUP_FLOOR
    if N_TASKS >= 1000:
        assert speedup >= SPEEDUP_FLOOR


def test_churn_scratch(bench, benchmark, churn_trace):
    result = bench(lambda: replay(churn_trace, check_every=1))
    assert not result.deadlocked
    _info(benchmark, churn_trace, "scratch")


def test_churn_incremental(bench, benchmark, churn_trace):
    result = bench(lambda: replay(churn_trace, check_every=1, incremental=True))
    assert not result.deadlocked
    _info(benchmark, churn_trace, "incremental")


def test_sharded_cycle_incremental(bench, benchmark, cycle_trace):
    """Sharded detection through the maintained graph: the oracle keeps
    shard checks O(1) while acyclic too."""
    result = bench(
        lambda: replay(
            cycle_trace, check_every=1, shard_components=True, incremental=True
        )
    )
    assert result.deadlocked
    _info(benchmark, cycle_trace, "incremental+sharded")
