"""The network-native checker service under an open-loop publisher fleet.

One :class:`CheckerService` on localhost; ``REPRO_NET_WORKERS`` client
*processes* (not threads — real sockets, real GIL-free concurrency on
the client side) each publish ``REPRO_NET_PUBLISHES`` delta rounds for
its own site as fast as the wire accepts them, while the orchestrator
concurrently drives ``check`` operations and records their latency.

Reported per run (``extra_info``):

* ``publishes_per_sec`` — fleet-wide sustained append throughput;
* ``check_p95_ms`` / ``check_p99_ms`` — 95th/99th-percentile
  service-side detection latency observed by a live client during the
  storm (the p99 tail is the capacity-planning number: it bounds the
  stall a publisher sees when a check lands behind a burst);
* ``transport_failures`` — retry accounting across the fleet (expected
  0 on loopback).

The acceptance floor (≥4 workers sustaining ≥5k publishes/sec) arms at
the default size; CI runs a reduced fleet via the env knobs and uploads
the suite as ``BENCH_net_service.json`` (the checked-in copy records
the full-size numbers).  The byte-identity leg of the acceptance — the
same cross-site knot, wire path vs in-process path, canonical report
JSON compared byte-for-byte — runs here too, once per benchmark run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.core.events import waiting_on
from repro.distributed.delta import DeltaPublisher, encode_bucket
from repro.distributed.detector import DistributedChecker
from repro.distributed.net import CheckerService, RemoteStore
from repro.distributed.store import InMemoryStore
from repro.trace.events import report_to_obj

#: Acceptance size; CI overrides with a reduced fleet.
N_WORKERS = int(os.environ.get("REPRO_NET_WORKERS", "4"))
N_PUBLISHES = int(os.environ.get("REPRO_NET_PUBLISHES", "2500"))
TASKS_PER_SITE = 8

#: The acceptance floor: fleet-wide sustained publishes per second.
THROUGHPUT_FLOOR = 5000.0

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: The worker process: one site, one RemoteStore, open-loop publishing.
#: The delta sequence is pre-generated (a real ``DeltaPublisher`` run:
#: snapshot first, then one-op phase-churn deltas) *before* the clock
#: starts — open-loop load generation must not be bottlenecked by
#: payload construction, especially on small machines where the
#: client fleet and the service share cores.
_WORKER = """
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro.core.events import waiting_on
from repro.distributed.delta import DeltaPublisher, encode_bucket
from repro.distributed.net import RemoteStore

host, port, tenant, site, n, tasks = (
    sys.argv[2], int(sys.argv[3]), sys.argv[4], sys.argv[5],
    int(sys.argv[6]), int(sys.argv[7]),
)
publisher = DeltaPublisher(site)
statuses = {
    f"{site}-t{k}": waiting_on(f"{site}-e{k}", 1, **{f"{site}-e{k}": 1})
    for k in range(tasks)
}
objs = []
for r in range(n):
    k = r % tasks
    phase = r // tasks + 2
    statuses[f"{site}-t{k}"] = waiting_on(
        f"{site}-e{k}", phase, **{f"{site}-e{k}": phase}
    )
    obj = publisher.prepare(encode_bucket(statuses))
    publisher.commit(obj)
    objs.append(obj)
with RemoteStore(host, port, tenant=tenant, name=site) as store:
    store.ping()  # connection established outside the timed window
    started = time.perf_counter()
    for obj in objs:
        store.append_delta(site, obj)
    elapsed = time.perf_counter() - started
    print(json.dumps({
        "published": len(objs),
        "elapsed": elapsed,
        "transport_failures": store.transport_failures,
    }))
"""


def _spawn_worker(service, tenant: str, site: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-c", _WORKER, _SRC,
            service.host, str(service.port), tenant, site,
            str(N_PUBLISHES), str(TASKS_PER_SITE),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def run_fleet() -> dict:
    """One open-loop storm: spawn the fleet, sample check latency while
    it runs, gather per-worker stats."""
    with CheckerService(port=0, check_interval_s=0.05) as service:
        tenant = "bench"
        workers = [
            _spawn_worker(service, tenant, f"w{i}") for i in range(N_WORKERS)
        ]
        check_latencies = []
        with RemoteStore(
            service.host, service.port, tenant=tenant, name="checker"
        ) as checker_client:
            # *Sample* detection latency (200 Hz) rather than hammering
            # the loop with back-to-back checks: the fleet's appends are
            # the load under test, the checks are the measurement.
            while any(w.poll() is None for w in workers):
                started = time.perf_counter()
                checker_client.check()
                check_latencies.append(time.perf_counter() - started)
                time.sleep(0.005)
        results = []
        for worker in workers:
            out, err = worker.communicate(timeout=60)
            if worker.returncode != 0:
                raise RuntimeError(f"worker failed: {err.strip()}")
            results.append(json.loads(out))
        published = sum(r["published"] for r in results)
        # Open-loop throughput: total appends over the slowest worker's
        # wall clock (they all start within process-spawn jitter).
        elapsed = max(r["elapsed"] for r in results)
        check_latencies.sort()

        def quantile(q: float) -> float:
            if not check_latencies:
                return 0.0
            index = min(
                int(len(check_latencies) * q), len(check_latencies) - 1
            )
            return check_latencies[index]

        return {
            "published": published,
            "elapsed": elapsed,
            "publishes_per_sec": published / elapsed if elapsed else 0.0,
            "check_p95_ms": quantile(0.95) * 1e3,
            "check_p99_ms": quantile(0.99) * 1e3,
            "check_samples": len(check_latencies),
            "transport_failures": sum(
                r["transport_failures"] for r in results
            ),
        }


def knot_reports_byte_identical() -> bool:
    """The differential leg: the same cross-site knot published through
    the wire and in-process, canonical report JSON compared by byte."""
    def tie(store):
        for i, statuses in enumerate((
            {"a": waiting_on("p", 1, p=1, q=0)},
            {"b": waiting_on("q", 1, q=1, p=0)},
        )):
            publisher = DeltaPublisher(f"s{i}", stream=f"bench-{i:04d}")
            obj = publisher.prepare(encode_bucket(statuses))
            store.append_delta(f"s{i}", obj)
            publisher.commit(obj)

    local = InMemoryStore()
    tie(local)
    local_bytes = json.dumps(
        report_to_obj(DistributedChecker(local).check_global()),
        sort_keys=True,
    )
    with CheckerService(port=0, check_interval_s=0) as service:
        with RemoteStore(service.host, service.port, tenant="knot") as remote:
            tie(remote)
            wire_bytes = json.dumps(
                report_to_obj(DistributedChecker(remote).check_global()),
                sort_keys=True,
            )
    return wire_bytes == local_bytes


def test_open_loop_publisher_fleet(bench, benchmark):
    result = bench(run_fleet)
    assert result["published"] >= N_WORKERS  # every worker got through
    assert knot_reports_byte_identical()
    benchmark.extra_info["workers"] = N_WORKERS
    benchmark.extra_info["publishes_per_worker"] = N_PUBLISHES
    benchmark.extra_info["tasks_per_site"] = TASKS_PER_SITE
    benchmark.extra_info["publishes_per_sec"] = round(
        result["publishes_per_sec"], 1
    )
    benchmark.extra_info["check_p95_ms"] = round(result["check_p95_ms"], 3)
    benchmark.extra_info["check_p99_ms"] = round(result["check_p99_ms"], 3)
    benchmark.extra_info["check_samples"] = result["check_samples"]
    benchmark.extra_info["transport_failures"] = result["transport_failures"]
    benchmark.extra_info["floor_publishes_per_sec"] = THROUGHPUT_FLOOR
    benchmark.extra_info["reports_byte_identical"] = True
    if N_WORKERS >= 4 and N_PUBLISHES >= 2500:
        assert result["publishes_per_sec"] >= THROUGHPUT_FLOOR
