"""Observability overhead: the metrics layer must be nearly free.

Two kinds of points:

* **Replay overhead** — the same trace replayed through an engine with
  the default (enabled, merged) registry and through one handed
  :data:`~repro.obs.registry.NULL_REGISTRY`.  The enabled run pays for
  the engine counters, the end-of-run registry merges and the checker
  instruments; the acceptance assert pins that cost at ≤10% of the
  null-registry time (with a small absolute epsilon so micro-second
  scale noise on reduced CI sizes cannot flake the job).
* **Hook micro** — the live runtime's observer hooks
  (``block_entry``/``block_exit``) driven directly, with the no-op
  registry versus an enabled one: the per-block marginal cost of the
  blocked-task gauge and hook counters, reported in ``extra_info``
  (informational; wall-clock-per-hook, not asserted).

CI runs the suite at a reduced size (``REPRO_OBS_BENCH_TASKS``) and
uploads ``BENCH_obs.json``; run locally without the variable for
full-size numbers.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.trace.corpus import AioSpec, build_trace
from repro.trace.replay import ReplayEngine

#: Acceptance size; CI overrides with a reduced count.
N_TASKS = int(os.environ.get("REPRO_OBS_BENCH_TASKS", "1000"))

#: The acceptance ceiling on metrics-enabled replay overhead.
OVERHEAD_CEILING = 0.10
#: Absolute slack: differences below this are timer noise, not cost.
EPSILON_S = 0.002


@pytest.fixture(scope="module")
def cycle_trace():
    return build_trace(AioSpec(tasks=N_TASKS, shape="cycle", deadlock=True))


def _min_time(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_overhead(benchmark, enabled_s: float, null_s: float) -> None:
    overhead = (enabled_s - null_s) / null_s if null_s > 0 else 0.0
    benchmark.extra_info["enabled_s"] = round(enabled_s, 5)
    benchmark.extra_info["null_s"] = round(null_s, 5)
    benchmark.extra_info["overhead_frac"] = round(overhead, 4)
    benchmark.extra_info["ceiling"] = OVERHEAD_CEILING
    assert (
        overhead <= OVERHEAD_CEILING or (enabled_s - null_s) <= EPSILON_S
    ), f"metrics-enabled replay {overhead:.1%} slower than null-registry"


def _engines(incremental: bool):
    enabled = ReplayEngine(check_every=1, incremental=incremental)
    null = ReplayEngine(
        check_every=1, incremental=incremental, metrics=NULL_REGISTRY
    )
    return enabled, null


def test_replay_overhead_incremental(bench, benchmark, cycle_trace):
    """The ≤10% acceptance point on the linear engine (hot path:
    per-record delta application, where instrument cost would show)."""
    enabled, null = _engines(incremental=True)
    result = bench(lambda: enabled.run(cycle_trace))
    assert result.deadlocked
    enabled_s = _min_time(lambda: enabled.run(cycle_trace))
    null_s = _min_time(lambda: null.run(cycle_trace))
    benchmark.extra_info["engine"] = "incremental"
    benchmark.extra_info["records"] = len(cycle_trace)
    _assert_overhead(benchmark, enabled_s, null_s)


def test_replay_overhead_scratch(bench, benchmark, cycle_trace):
    """Same ceiling on the from-scratch engine (check-dominated: the
    instruments are amortised across whole graph rebuilds)."""
    enabled, null = _engines(incremental=False)
    # Rebuild-per-record is quadratic; a coarser cadence keeps the
    # point CI-sized without changing what is being compared.
    enabled.check_every = null.check_every = 16
    result = bench(lambda: enabled.run(cycle_trace))
    assert result.deadlocked
    enabled_s = _min_time(lambda: enabled.run(cycle_trace))
    null_s = _min_time(lambda: null.run(cycle_trace))
    benchmark.extra_info["engine"] = "scratch"
    benchmark.extra_info["records"] = len(cycle_trace)
    _assert_overhead(benchmark, enabled_s, null_s)


def test_runtime_hook_micro(bench, benchmark):
    """Marginal per-hook cost of runtime telemetry (informational).

    Drives ``block_entry``/``block_exit`` directly — no threads, no
    monitor — so the difference between the no-op and enabled
    registries is exactly the gauge sync plus two counter bumps.
    """
    from repro.core.events import waiting_on
    from repro.runtime.verifier import ArmusRuntime, VerificationMode

    class FakeTask:
        def __init__(self, task_id: str) -> None:
            self.task_id = task_id

    n = 2000
    status = waiting_on("p", 1, p=1)
    tasks = [FakeTask(f"t{i}") for i in range(8)]

    def drive(runtime) -> None:
        for _ in range(n // len(tasks)):
            for task in tasks:
                runtime.block_entry(task, status)
            for task in tasks:
                runtime.block_exit(task)

    null_rt = ArmusRuntime(mode=VerificationMode.DETECTION)
    enabled_rt = ArmusRuntime(
        mode=VerificationMode.DETECTION, metrics=MetricsRegistry()
    )
    bench(lambda: drive(enabled_rt))
    null_s = _min_time(lambda: drive(null_rt))
    enabled_s = _min_time(lambda: drive(enabled_rt))
    per_hook_ns = (enabled_s - null_s) / (2 * n) * 1e9
    benchmark.extra_info["hooks"] = 2 * n
    benchmark.extra_info["null_s"] = round(null_s, 5)
    benchmark.extra_info["enabled_s"] = round(enabled_s, 5)
    benchmark.extra_info["marginal_ns_per_hook"] = round(per_hook_ns)
