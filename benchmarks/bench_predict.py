"""Predictive-detection throughput: the four-stage pipeline end to end.

A near-miss corpus is generated once (the ``NearMissSpec`` grid — hit
and control schedules, local and distributed routing) and each round
runs the full predictor over it: HB model, interval extraction,
candidate enumeration, witness construction and the double confirmation
replay.  The ground truth is asserted every round — every hit predicts,
every control stays clean — so the benchmark doubles as a soundness
smoke test at scale.

Reported per run (``extra_info``): records/sec through the predictor,
candidates scanned/confirmed, corpus fan-out throughput per process
count.  CI runs a reduced grid via ``REPRO_PREDICT_CHAINS`` /
``REPRO_PREDICT_ROUNDS`` and uploads ``BENCH_predict.json`` (the
checked-in copy records the full-size numbers).
"""

from __future__ import annotations

import os

import pytest

from repro.predict.engine import predict_trace
from repro.predict.parallel import predict_corpus
from repro.trace.codec import load_trace
from repro.trace.corpus import build_trace, nearmiss_grid_specs, write_corpus

#: Acceptance size; CI overrides with a reduced grid.
CHAIN_LENS = tuple(
    int(x) for x in os.environ.get("REPRO_PREDICT_CHAINS", "2,4,8").split(",")
)
ROUNDS = int(os.environ.get("REPRO_PREDICT_ROUNDS", "12"))

SPECS = nearmiss_grid_specs(
    chain_lens=CHAIN_LENS,
    rounds=(ROUNDS,),
    site_counts=(1, 2),
    realisable=(True, False),
)
HITS = sum(1 for s in SPECS if s.realisable)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("predict-corpus")
    paths = write_corpus(tmp, SPECS, codecs=("jsonl",))
    records = sum(len(load_trace(p)) for p in paths)
    return tmp, len(paths), records


def test_predict_single_trace(bench, benchmark):
    """The deepest single scan: longest chain, distributed routing."""
    spec = max(
        (s for s in SPECS if s.realisable and s.sites > 1),
        key=lambda s: s.chain_len,
    )
    trace = build_trace(spec)

    def run():
        return predict_trace(trace)

    result = bench(run)
    assert result.predicted and len(result.confirmed) == 1
    assert not result.truncated
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["scenario"] = spec.name
    benchmark.extra_info["records"] = result.records
    benchmark.extra_info["candidates_scanned"] = result.candidates_scanned
    benchmark.extra_info["witness_records"] = len(
        result.confirmed[0].witness.records
    )
    benchmark.extra_info["predict_records_per_sec"] = round(
        result.records / elapsed
    )


@pytest.mark.parametrize("processes", [1, 2])
def test_predict_corpus_fanout(bench, benchmark, corpus_dir, processes):
    """Corpus prediction at 1/2 processes; every verdict re-checked
    against the planted ground truth each round."""
    path, n_files, n_records = corpus_dir

    def run():
        return predict_corpus(path, processes=processes)

    result = bench(run)
    assert len(result.entries) == n_files
    assert not result.mismatches
    assert result.confirmed == HITS
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["processes"] = processes
    benchmark.extra_info["traces"] = n_files
    benchmark.extra_info["records"] = n_records
    benchmark.extra_info["chain_lens"] = list(CHAIN_LENS)
    benchmark.extra_info["confirmed"] = result.confirmed
    benchmark.extra_info["candidates_scanned"] = result.candidates_scanned
    benchmark.extra_info["corpus_records_per_sec"] = round(
        n_records / elapsed
    )
