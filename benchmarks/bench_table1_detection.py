"""Table 1: relative execution overhead in detection mode.

Rows = kernels (BT, CG, FT, MG, RT, SP), columns = task counts.
Compare each ``[kernel-nN-detection]`` benchmark against its
``[kernel-nN-off]`` baseline to obtain the table's overhead cell.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import LOCAL_KERNELS, run_local_kernel

TASK_COUNTS = (2, 4, 8)


@pytest.mark.parametrize("n_tasks", TASK_COUNTS)
@pytest.mark.parametrize("kernel", sorted(LOCAL_KERNELS))
@pytest.mark.parametrize("mode", ("off", "detection"))
def test_detection_overhead(bench, kernel: str, n_tasks: int, mode: str):
    result = bench(run_local_kernel, kernel, mode, n_tasks)
    assert result.validated
