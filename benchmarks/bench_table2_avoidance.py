"""Table 2: relative execution overhead in avoidance mode.

Compare ``[kernel-nN-avoidance]`` against ``[kernel-nN-off]``; the
paper's shape: overhead grows with the task count (every task checks
the graph whenever it blocks), CG worst at 50% for 64 threads.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import LOCAL_KERNELS, run_local_kernel

TASK_COUNTS = (2, 4, 8)


@pytest.mark.parametrize("n_tasks", TASK_COUNTS)
@pytest.mark.parametrize("kernel", sorted(LOCAL_KERNELS))
@pytest.mark.parametrize("mode", ("off", "avoidance"))
def test_avoidance_overhead(bench, kernel: str, n_tasks: int, mode: str):
    result = bench(run_local_kernel, kernel, mode, n_tasks)
    assert result.validated
