"""Table 3: average analysis-graph edge count per benchmark per model.

The benchmark's ``extra_info`` records the mean edge count observed by
avoidance-mode checks (every blocked state is analysed, so the average
matches the paper's accounting).  Expected shape:

* PS and BFS: WFG edges orders of magnitude above SG edges;
* FI / FR: SG at least as large as the WFG;
* SE: both models comparable;
* Auto: always tracks the smaller model.
"""

from __future__ import annotations

import pytest

from repro.core.selection import GraphModel
from repro.bench.harness import run_course_kernel
from repro.workloads.course import KERNELS

MODELS = {"auto": GraphModel.AUTO, "sg": GraphModel.SG, "wfg": GraphModel.WFG}


@pytest.mark.parametrize("model_name", list(MODELS))
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_edge_counts(benchmark, kernel: str, model_name: str):
    model = MODELS[model_name]
    edges = []

    def run():
        result, runtime = run_course_kernel(kernel, "avoidance", model)
        edges.append(runtime.stats.mean_edges)
        return result

    result = benchmark.pedantic(run, rounds=2, warmup_rounds=1, iterations=1)
    assert result.validated
    benchmark.extra_info["mean_edges"] = round(sum(edges) / len(edges), 1)
