"""Trace-replay throughput: events/sec for both codecs (DESIGN.md's
trace-subsystem benchmark; no counterpart in the paper, which had no
offline mode).

A ~10k-event corpus trace is generated once (cycle 4 × fan-out 4 ×
160 warm-up rounds), persisted under each codec, and each benchmark
round decodes the file and replays it in detection mode.  ``decode``
benchmarks isolate the codec cost; ``replay`` benchmarks measure the
full pipeline (decode + checker).  ``extra_info`` records the
events/sec figures the acceptance criteria ask for.

The streaming/parallel subsystem adds three more families:
``stream_decode``/``stream_replay`` (iterator-based I/O — same events,
O(frame) memory), ``corpus_replay`` at 1/2/4 processes (the fan-out
speedup), and a memory profile demonstrating that streaming a
≥100k-event framed trace peaks far below eager load.  CI writes the
whole suite to ``BENCH_trace_replay.json``
(``--benchmark-json=BENCH_trace_replay.json``).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.trace.codec import load_trace, save_trace
from repro.trace.corpus import ScenarioSpec, grid_specs, scenario_trace, write_corpus
from repro.trace.parallel import replay_corpus
from repro.trace.replay import replay
from repro.trace.stream import iter_load

CODEC_EXT = {"jsonl": ".jsonl", "binary": ".trace"}

#: ~10k events: 16 tasks x 160 rounds x 3 records + context + knot.
SPEC = ScenarioSpec(cycle_len=4, fan_out=4, sites=1, rounds=160)

#: ≥100k events for the streaming-memory acceptance criterion.
BIG_SPEC = ScenarioSpec(cycle_len=4, fan_out=4, sites=1, rounds=2100)


@pytest.fixture(scope="module")
def corpus_files(tmp_path_factory):
    """The corpus trace written once per codec."""
    tmp = tmp_path_factory.mktemp("trace-corpus")
    trace = scenario_trace(SPEC)
    return {
        codec: (save_trace(trace, tmp / f"corpus{ext}", codec=codec), len(trace))
        for codec, ext in CODEC_EXT.items()
    }


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A multi-file corpus for the fan-out benchmarks."""
    tmp = tmp_path_factory.mktemp("trace-corpus-dir")
    specs = grid_specs((2, 3, 4), (2, 4), (1,), (40,), (True, False))
    paths = write_corpus(tmp, specs, codecs=("binary",))
    events = sum(len(load_trace(p)) for p in paths)
    return tmp, len(paths), events


@pytest.mark.parametrize("codec", sorted(CODEC_EXT))
def test_decode_throughput(bench, benchmark, corpus_files, codec):
    path, n_events = corpus_files[codec]

    def decode():
        return load_trace(path)

    trace = bench(decode)
    assert len(trace) == n_events
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["codec"] = codec
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["decode_events_per_sec"] = round(n_events / elapsed)


@pytest.mark.parametrize("codec", sorted(CODEC_EXT))
def test_replay_throughput(bench, benchmark, corpus_files, codec):
    """Decode + detection replay (check cadence 16 keeps the checker and
    codec costs comparable)."""
    path, n_events = corpus_files[codec]

    def run():
        return replay(load_trace(path), mode="detection", check_every=16)

    result = bench(run)
    assert result.deadlocked  # the corpus's ground truth holds
    assert result.records_processed == n_events
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["codec"] = codec
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["replay_events_per_sec"] = round(n_events / elapsed)


@pytest.mark.parametrize("codec", sorted(CODEC_EXT))
def test_stream_decode_throughput(bench, benchmark, corpus_files, codec):
    """Iterator-based decode: same events, one frame in memory."""
    path, n_events = corpus_files[codec]

    def decode():
        return sum(1 for _ in iter_load(path))

    count = bench(decode)
    assert count == n_events
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["codec"] = codec
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["stream_decode_events_per_sec"] = round(n_events / elapsed)


@pytest.mark.parametrize("codec", sorted(CODEC_EXT))
def test_stream_replay_throughput(bench, benchmark, corpus_files, codec):
    path, n_events = corpus_files[codec]

    def run():
        return replay(path, mode="detection", check_every=16, stream=True)

    result = bench(run)
    assert result.deadlocked
    assert result.records_processed == n_events
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["codec"] = codec
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["stream_replay_events_per_sec"] = round(n_events / elapsed)


@pytest.mark.parametrize("processes", [1, 2, 4])
def test_corpus_replay_fanout(bench, benchmark, corpus_dir, processes):
    """Multi-process corpus replay; extra_info carries the speedup data
    (serial events/sec at processes=1 is the baseline)."""
    path, n_files, n_events = corpus_dir

    def run():
        return replay_corpus(path, check_every=16, processes=processes)

    result = bench(run)
    assert len(result.entries) == n_files
    assert result.records_processed == n_events
    assert not result.mismatches
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["processes"] = processes
    benchmark.extra_info["files"] = n_files
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["corpus_events_per_sec"] = round(n_events / elapsed)


def test_streaming_memory_profile(benchmark, tmp_path_factory):
    """The acceptance criterion: streaming a ≥100k-event framed trace
    peaks well below eager load.  One timed round (the measurement is
    tracemalloc's, not the clock's); peaks land in extra_info."""
    tmp = tmp_path_factory.mktemp("big-trace")
    trace = scenario_trace(BIG_SPEC)
    n_events = len(trace)
    assert n_events >= 100_000
    path = save_trace(trace, tmp / "big.trace", codec="binary")
    del trace

    def profile():
        tracemalloc.start()
        eager = load_trace(path)
        _, eager_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del eager
        tracemalloc.start()
        count = sum(1 for _ in iter_load(path))
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == n_events
        return eager_peak, stream_peak

    eager_peak, stream_peak = benchmark.pedantic(
        profile, rounds=1, warmup_rounds=0, iterations=1
    )
    assert stream_peak * 10 < eager_peak
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["file_bytes"] = path.stat().st_size
    benchmark.extra_info["eager_peak_bytes"] = eager_peak
    benchmark.extra_info["stream_peak_bytes"] = stream_peak
    benchmark.extra_info["peak_ratio"] = round(eager_peak / max(1, stream_peak), 1)
