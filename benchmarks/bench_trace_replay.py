"""Trace-replay throughput: events/sec for both codecs (DESIGN.md's
trace-subsystem benchmark; no counterpart in the paper, which had no
offline mode).

A ~10k-event corpus trace is generated once (cycle 4 × fan-out 4 ×
160 warm-up rounds), persisted under each codec, and each benchmark
round decodes the file and replays it in detection mode.  ``decode``
benchmarks isolate the codec cost; ``replay`` benchmarks measure the
full pipeline (decode + checker).  ``extra_info`` records the
events/sec figures the acceptance criteria ask for.
"""

from __future__ import annotations

import pytest

from repro.trace.codec import load_trace, save_trace
from repro.trace.corpus import ScenarioSpec, scenario_trace
from repro.trace.replay import replay

CODEC_EXT = {"jsonl": ".jsonl", "binary": ".trace"}

#: ~10k events: 16 tasks x 160 rounds x 3 records + context + knot.
SPEC = ScenarioSpec(cycle_len=4, fan_out=4, sites=1, rounds=160)


@pytest.fixture(scope="module")
def corpus_files(tmp_path_factory):
    """The corpus trace written once per codec."""
    tmp = tmp_path_factory.mktemp("trace-corpus")
    trace = scenario_trace(SPEC)
    return {
        codec: (save_trace(trace, tmp / f"corpus{ext}", codec=codec), len(trace))
        for codec, ext in CODEC_EXT.items()
    }


@pytest.mark.parametrize("codec", sorted(CODEC_EXT))
def test_decode_throughput(bench, benchmark, corpus_files, codec):
    path, n_events = corpus_files[codec]

    def decode():
        return load_trace(path)

    trace = bench(decode)
    assert len(trace) == n_events
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["codec"] = codec
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["decode_events_per_sec"] = round(n_events / elapsed)


@pytest.mark.parametrize("codec", sorted(CODEC_EXT))
def test_replay_throughput(bench, benchmark, corpus_files, codec):
    """Decode + detection replay (check cadence 16 keeps the checker and
    codec costs comparable)."""
    path, n_events = corpus_files[codec]

    def run():
        return replay(load_trace(path), mode="detection", check_every=16)

    result = bench(run)
    assert result.deadlocked  # the corpus's ground truth holds
    assert result.records_processed == n_events
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["codec"] = codec
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["replay_events_per_sec"] = round(n_events / elapsed)
