"""Tracing overhead: causal spans and provenance must be nearly free.

Mirrors ``bench_obs.py``'s methodology for the tracing layer:

* **Replay overhead** — the same trace replayed through an engine
  handed a live :class:`~repro.obs.tracing.Tracer` versus one handed
  :data:`~repro.obs.tracing.NULL_TRACER`.  Provenance tracking itself
  (the :class:`~repro.obs.tracing.OriginTracker` fold and report
  enrichment) runs in both — it is part of the replay contract — so
  the difference is exactly the span-buffer cost.  The acceptance
  assert pins it at ≤10% (with a small absolute epsilon so
  micro-second noise on reduced CI sizes cannot flake the job).
* **Span micro** — ``begin``/``end`` pairs driven directly against the
  live and null tracers: the marginal wall-clock cost per span
  (informational, reported in ``extra_info``).

CI runs the suite at a reduced size (``REPRO_TRACING_BENCH_TASKS``)
and uploads ``BENCH_tracing.json``; run locally without the variable
for full-size numbers.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.obs.registry import NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.trace.corpus import AioSpec, build_trace
from repro.trace.replay import ReplayEngine

#: Acceptance size; CI overrides with a reduced count.
N_TASKS = int(os.environ.get("REPRO_TRACING_BENCH_TASKS", "1000"))

#: The acceptance ceiling on tracer-enabled replay overhead.
OVERHEAD_CEILING = 0.10
#: Absolute slack: differences below this are timer noise, not cost.
EPSILON_S = 0.002


@pytest.fixture(scope="module")
def cycle_trace():
    return build_trace(AioSpec(tasks=N_TASKS, shape="cycle", deadlock=True))


def _min_time(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_overhead(benchmark, enabled_s: float, null_s: float) -> None:
    overhead = (enabled_s - null_s) / null_s if null_s > 0 else 0.0
    benchmark.extra_info["enabled_s"] = round(enabled_s, 5)
    benchmark.extra_info["null_s"] = round(null_s, 5)
    benchmark.extra_info["overhead_frac"] = round(overhead, 4)
    benchmark.extra_info["ceiling"] = OVERHEAD_CEILING
    assert (
        overhead <= OVERHEAD_CEILING or (enabled_s - null_s) <= EPSILON_S
    ), f"tracer-enabled replay {overhead:.1%} slower than null-tracer"


def _engines(incremental: bool):
    # NULL_REGISTRY on both sides: metrics cost is bench_obs's point,
    # not this file's — isolate the tracer's marginal cost.
    enabled = ReplayEngine(
        check_every=1, incremental=incremental,
        metrics=NULL_REGISTRY, tracer=Tracer(),
    )
    null = ReplayEngine(
        check_every=1, incremental=incremental,
        metrics=NULL_REGISTRY, tracer=NULL_TRACER,
    )
    return enabled, null


def test_replay_overhead_tracing_incremental(bench, benchmark, cycle_trace):
    """The ≤10% acceptance point on the linear engine (hot path: the
    per-record fold, where span recording would show)."""
    enabled, null = _engines(incremental=True)
    result = bench(lambda: enabled.run(cycle_trace))
    assert result.deadlocked
    assert result.reports[0].provenance  # tracing replay still enriches
    enabled_s = _min_time(lambda: enabled.run(cycle_trace))
    null_s = _min_time(lambda: null.run(cycle_trace))
    benchmark.extra_info["engine"] = "incremental"
    benchmark.extra_info["records"] = len(cycle_trace)
    _assert_overhead(benchmark, enabled_s, null_s)


def test_replay_overhead_tracing_scratch(bench, benchmark, cycle_trace):
    """Same ceiling on the from-scratch engine (check-dominated)."""
    enabled, null = _engines(incremental=False)
    # Rebuild-per-record is quadratic; a coarser cadence keeps the
    # point CI-sized without changing what is being compared.
    enabled.check_every = null.check_every = 16
    result = bench(lambda: enabled.run(cycle_trace))
    assert result.deadlocked
    enabled_s = _min_time(lambda: enabled.run(cycle_trace))
    null_s = _min_time(lambda: null.run(cycle_trace))
    benchmark.extra_info["engine"] = "scratch"
    benchmark.extra_info["records"] = len(cycle_trace)
    _assert_overhead(benchmark, enabled_s, null_s)


def test_span_micro(bench, benchmark):
    """Marginal per-span cost of the ring buffer (informational)."""
    n = 2000
    keys = [f"t{i}" for i in range(8)]

    def drive(tracer) -> None:
        for _ in range(n // len(keys)):
            for key in keys:
                tracer.begin("task.blocked", f"task:{key}", key=key)
            for key in keys:
                tracer.end(key)

    live = Tracer()
    bench(lambda: drive(live))
    null_s = _min_time(lambda: drive(NULL_TRACER))
    live_s = _min_time(lambda: drive(live))
    per_span_ns = (live_s - null_s) / n * 1e9
    benchmark.extra_info["spans"] = n
    benchmark.extra_info["null_s"] = round(null_s, 5)
    benchmark.extra_info["live_s"] = round(live_s, 5)
    benchmark.extra_info["marginal_ns_per_span"] = round(per_span_ns)
