"""Shared configuration for the pytest-benchmark suite.

Each bench file regenerates one of the paper's tables/figures (see
DESIGN.md's per-experiment index).  Benchmarks use ``pedantic`` mode
with a small fixed round count so the full suite stays in the minutes
range; `python -m repro.bench.tables <exp>` runs the same experiments
with the paper's statistical methodology and renders the tables.
"""

from __future__ import annotations

import pytest

#: Rounds per benchmark; bump for tighter confidence at the cost of time.
ROUNDS = 3
WARMUP_ROUNDS = 1


@pytest.fixture
def bench(benchmark):
    """A pedantic-mode wrapper: fixed rounds, one warm-up, one iteration
    per round (the workloads manage their own internal repetition)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn,
            args=args,
            kwargs=kwargs,
            rounds=ROUNDS,
            warmup_rounds=WARMUP_ROUNDS,
            iterations=1,
        )

    return run
