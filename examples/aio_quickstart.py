"""Asyncio-backend quickstart: thousands of verified tasks, one loop.

Two runs:

1. a clean SPMD workload — 500 coroutines x 4 verified barrier rounds
   on one shared phaser;
2. a 2000-task phaser ring that deadlocks — detection finds the
   2000-cycle, cancels it, and every task observes the report — then
   the recorded trace replays offline to the very same report.

Run::

    PYTHONPATH=src python examples/aio_quickstart.py
"""

from __future__ import annotations

import asyncio
import time

from repro.aio import aio_spawn
from repro.aio.scenarios import barrier_rounds, phaser_ring
from repro.core.report import DeadlockError
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import replay


def clean_spmd(n_tasks: int = 500, rounds: int = 4) -> None:
    runtime = ArmusRuntime(mode=VerificationMode.DETECTION).start()

    async def main() -> None:
        tasks = barrier_rounds(runtime, n_tasks, rounds)
        for task in tasks:
            await task.wait(60)

    t0 = time.perf_counter()
    asyncio.run(main())
    runtime.stop()
    print(
        f"clean SPMD: {n_tasks} tasks x {rounds} rounds "
        f"({n_tasks * rounds} verified syncs) in "
        f"{time.perf_counter() - t0:.2f}s — reports: {len(runtime.reports)}"
    )


def ring_deadlock(n_tasks: int = 2000) -> None:
    recorder = TraceRecorder(meta={"scenario": f"aio-ring-{n_tasks}"})
    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION, interval_s=0.05, recorder=recorder
    ).start()

    async def main() -> int:
        tasks = phaser_ring(runtime, n_tasks)
        observed = 0
        for task in tasks:
            try:
                await task.wait(120)
            except DeadlockError:
                observed += 1
        return observed

    t0 = time.perf_counter()
    observed = asyncio.run(main())
    runtime.stop()
    live = runtime.reports[0]
    print(
        f"ring: {n_tasks} tasks deadlocked and terminated in "
        f"{time.perf_counter() - t0:.2f}s; {observed} observed the report"
    )
    print(f"  cycle length: {len(live.tasks)} tasks ({live.model_used} model)")

    outcome = replay(recorder.trace(), mode="detection")
    same = outcome.reports[0].describe() == live.describe()
    print(
        f"  offline replay of the recording: {len(outcome.reports)} report(s), "
        f"identical to live: {same}"
    )


if __name__ == "__main__":
    clean_spmd()
    ring_deadlock()
