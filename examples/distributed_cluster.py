"""Distributed deadlock detection across places (Sections 2.1 and 5.2).

Builds a four-place cluster over a replicated store, runs a real
distributed workload (KMEANS) with every site publishing and checking,
then demonstrates the two fault-tolerance claims:

1. a *cross-site* deadlock (a distributed clock with a non-advancing
   participant) is detected even though no single site's local view
   contains the cycle;
2. detection survives losing a store replica mid-run.

Run::

    python examples/distributed_cluster.py
"""

from repro.distributed import Cluster
from repro.runtime import Clock, DeadlockError, Phaser
from repro.workloads.hpcc import run_kmeans


def cross_site_deadlock(cluster: Cluster) -> None:
    """One worker per place on a shared clock; the driver stays
    registered and never advances — the running example, distributed."""
    clock = Clock(cluster[0].runtime, name="dist-clock")
    join = Phaser(cluster[0].runtime, register_self=True, name="join")

    def worker() -> None:
        clock.advance()  # blocks: the driver never advances
        clock.drop()
        join.arrive_and_deregister()

    for place in cluster.places:
        place.spawn(worker, register=[clock, join], name=f"w@{place.site_id}")
    join.arrive_and_await_advance()  # completes only if workers do


def main() -> None:
    with Cluster(
        4, replicas=2, check_interval_s=0.05, publish_interval_s=0.02
    ) as cluster:
        # A healthy distributed workload under detection.
        result = run_kmeans(cluster, n_points=1500, k=6, iterations=4)
        print(
            f"KMEANS on {len(cluster)} places: valid={result.validated}, "
            f"final inertia={result.details['final_inertia']:.1f}"
        )
        print(f"reports so far: {len(cluster.all_reports())} (expected 0)")

        # Lose a store replica; detection keeps working via the second.
        cluster.store_replicas[0].set_available(False)
        print("\nprimary store replica down; injecting a cross-site bug...")
        try:
            cross_site_deadlock(cluster)
            print("ERROR: the deadlock went undetected")
        except DeadlockError as err:
            print("detected across sites despite the replica loss:")
            print(err.report.describe())
        per_site = [len(p.reports) for p in cluster.places]
        print(f"reports per site: {per_site}")


if __name__ == "__main__":
    main()
