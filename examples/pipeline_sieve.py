"""A clocked-variable pipeline: the Sieve of Eratosthenes (Section 6.3).

Demonstrates the dynamic-barrier-creation regime: one task and one
clocked variable per pipeline stage, created as primes are needed — the
opposite of the SPMD programs, and the reason Armus selects its graph
model per check rather than committing to the WFG.

The example runs the sieve under *avoidance* with the adaptive model and
prints what the verifier saw: how many checks ran, the average graph
size, and which models were used.

Run::

    python examples/pipeline_sieve.py [limit]
"""

import sys

from repro.core.selection import GraphModel
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.workloads.course.se import run_se


def main(limit: int = 60) -> None:
    runtime = ArmusRuntime(
        mode=VerificationMode.AVOIDANCE, model=GraphModel.AUTO
    ).start()
    try:
        result = run_se(runtime, limit=limit)
    finally:
        runtime.stop()

    print(f"primes up to {limit}: {result.details['primes']} stages, all valid")
    stats = runtime.stats
    print(f"verification checks: {stats.checks}")
    print(f"average analysis-graph edges: {stats.mean_edges:.1f}")
    hist = {m.value: n for m, n in stats.model_histogram().items()}
    print(f"graph models used: {hist}")
    print(f"deadlocks found: {stats.cycles_found} (the pipeline is clean)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
