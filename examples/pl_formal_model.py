"""The formal side: PL programs, model checking, and the graph models.

Uses the PL core language (Section 3) to:

1. print the running example as a PL program (Figure 3);
2. *model-check* a small instance — explore every interleaving and show
   that each quiescent state is deadlocked (and the fixed variant always
   terminates);
3. extract the resource-dependency state ``phi(S)`` of the deadlocked
   state and print all three graph representations (Figure 5), plus the
   checker's verdict under each graph-model selection.

Run::

    python examples/pl_formal_model.py
"""

from repro.core.checker import DeadlockChecker
from repro.core.graphs import build_grg, build_sg, build_wfg
from repro.core.selection import GraphModel
from repro.pl.deadlock import deadlocked_subset, to_snapshot
from repro.pl.interpreter import Interpreter, explore
from repro.pl.programs import initial, running_example, running_example_fixed
from repro.pl.syntax import pretty


def main() -> None:
    program = running_example(I=2, J=1)
    print("=== Figure 3: the running example in PL (I=2, J=1) ===")
    print(pretty(program))

    print("\n=== model checking every interleaving ===")
    buggy = explore(initial(program), max_loop_unfolds=0)
    fixed = explore(initial(running_example_fixed(I=2, J=1)), max_loop_unfolds=0)
    print(
        f"buggy:  {buggy.visited} states visited, "
        f"{len(buggy.deadlocked)} deadlocked endpoints, "
        f"{len(buggy.finished)} clean endpoints"
    )
    print(
        f"fixed:  {fixed.visited} states visited, "
        f"{len(fixed.deadlocked)} deadlocked endpoints, "
        f"{len(fixed.finished)} clean endpoints"
    )

    print("\n=== one deadlocked state, three graph models (Figure 5) ===")
    result = Interpreter(seed=0).run(initial(running_example(I=3, J=1)))
    state = result.state
    print(f"deadlocked tasks (Definition 3.2): {sorted(deadlocked_subset(state))}")
    snapshot = to_snapshot(state)
    wfg = build_wfg(snapshot)
    sg = build_sg(snapshot)
    grg = build_grg(snapshot)
    print(f"WFG: {wfg.vertex_count} vertices, {wfg.edge_count} edges")
    print(f"SG:  {sg.vertex_count} vertices, {sg.edge_count} edges")
    print(f"GRG: {grg.vertex_count} vertices, {grg.edge_count} edges")

    print("\n=== the checker's verdict under each selection ===")
    for model in (GraphModel.WFG, GraphModel.SG, GraphModel.AUTO):
        report = DeadlockChecker(model=model).check(snapshot=snapshot)
        assert report is not None
        print(
            f"{model.value:>4}: cycle of {len(report.cycle) - 1} "
            f"{'tasks' if report.model_used is GraphModel.WFG else 'events'}"
            f" in a {report.edge_count}-edge graph"
        )


if __name__ == "__main__":
    main()
