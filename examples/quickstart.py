"""Quickstart: catch and fix a barrier deadlock in one minute.

The paper's running example (Figures 1-2): parallel 1-D iterative
averaging.  ``I`` workers step a cyclic barrier (an X10-style clock)
twice per iteration; the parent joins them through a join phaser.  The
bug: the parent is registered with the clock it never advances, so every
worker blocks forever on its first step.

Run::

    python examples/quickstart.py
"""

from repro.runtime import Clock, DeadlockError, Phaser
from repro.runtime.verifier import ArmusRuntime, VerificationMode


def averaging(runtime: ArmusRuntime, I: int = 4, J: int = 3, fix: bool = False):
    """The running example; ``fix=True`` applies the Section 2.1 fix."""
    a = [float(i) for i in range(I + 2)]
    c = Clock(runtime)  # the parent is implicitly registered
    b = Phaser(runtime, register_self=True, name="join")

    def worker(i: int) -> None:
        for _ in range(J):
            left, right = a[i - 1], a[i + 1]
            c.advance()  # synchronise reads against writes
            a[i] = (left + right) / 2
            c.advance()  # ... and writes against the next reads
        c.drop()
        b.arrive_and_deregister()  # signal the join barrier

    for i in range(I):
        runtime.spawn(worker, i + 1, register=[c, b], name=f"w{i + 1}")
    if fix:
        c.drop()  # the fix: the parent leaves the clock before joining
    b.arrive_and_await_advance()  # the join barrier step
    return a


def main() -> None:
    # 1. Detection mode: run the buggy program; Armus reports the cycle
    #    and aborts the deadlocked tasks instead of hanging forever.
    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION, interval_s=0.05
    ).start()
    try:
        averaging(runtime, fix=False)
    except DeadlockError as err:
        print("--- the bug, caught by detection mode ---")
        print(err.report.describe())
    finally:
        runtime.stop()

    # 2. Avoidance mode: the same bug raises *before* any task blocks
    #    into the deadlock - the program can recover.
    runtime = ArmusRuntime(mode=VerificationMode.AVOIDANCE).start()
    try:
        averaging(runtime, fix=False)
    except DeadlockError as err:
        print("\n--- the same bug, refused by avoidance mode ---")
        print(err.report.describe())
    finally:
        runtime.stop()

    # 3. The fixed program runs cleanly under full verification.
    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION, interval_s=0.05
    ).start()
    try:
        result = averaging(runtime, fix=True)
        print("\n--- fixed: parent drops the clock before joining ---")
        print("averaged array:", [round(x, 3) for x in result])
        print("deadlocks reported:", len(runtime.reports))
    finally:
        runtime.stop()


if __name__ == "__main__":
    main()
