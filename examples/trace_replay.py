"""Record a deadlocking run, replay it offline, explore it under other
graph models — the trace subsystem's record/replay walkthrough.

The live run is the paper's crossed-barrier deadlock: two tasks, two
phasers, each task arrived at its own phaser and waiting for the other.
A :class:`~repro.trace.recorder.TraceRecorder` attached to the runtime
captures every register/advance/block/unblock as the run happens; the
trace is saved in both codecs, replayed deterministically (reproducing
the live report), and finally re-analysed under a *different* graph
model — an offline ablation no live run could offer, because the
execution is long gone.

Run::

    python examples/trace_replay.py
"""

import tempfile
import threading
import time

from repro.runtime import Phaser
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.core.selection import GraphModel
from repro.trace import (
    TraceRecorder,
    grid_specs,
    load_trace,
    replay,
    replay_corpus,
    write_corpus,
)


def crossed_deadlock(runtime: ArmusRuntime) -> None:
    """Two tasks block on each other's phaser, in a deterministic order."""
    ph1 = Phaser(runtime, register_self=False, name="p")
    ph2 = Phaser(runtime, register_self=False, name="q")
    gate = threading.Event()

    def wait_for_blocked(count: int) -> None:
        while runtime.checker.dependency.blocked_count() < count:
            if runtime.reports:
                return
            time.sleep(0.002)

    def first() -> None:
        gate.wait(10)
        ph1.arrive_and_await_advance()

    def second() -> None:
        gate.wait(10)
        wait_for_blocked(1)  # block strictly after the first task
        ph2.arrive_and_await_advance()

    t1 = runtime.spawn(first, register=[ph1, ph2], name="t1")
    t2 = runtime.spawn(second, register=[ph1, ph2], name="t2")
    gate.set()
    wait_for_blocked(2)
    runtime.monitor.poll_once()  # one manual detection pass
    for task in (t1, t2):
        try:
            task.join(10)
        except Exception:
            pass  # the detection report cancels both tasks


def main() -> None:
    # 1. Record the live run: one flag on the runtime.
    recorder = TraceRecorder(meta={"example": "trace_replay"})
    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION, poll_s=0.002, recorder=recorder
    )
    crossed_deadlock(runtime)
    live = runtime.reports[0]
    print("--- live detection report ---")
    print(live.describe())

    # 2. Persist the trace in both codecs.
    with tempfile.TemporaryDirectory() as tmp:
        jsonl = recorder.save(f"{tmp}/run.jsonl")
        binary = recorder.save(f"{tmp}/run.trace")
        print(f"\nrecorded {len(recorder)} events "
              f"({jsonl.stat().st_size} B jsonl, {binary.stat().st_size} B binary)")

        # 3. Offline replay reproduces the live report, deterministically.
        outcome = replay(load_trace(binary), mode="detection")
        print(f"replayed at {outcome.events_per_sec:,.0f} events/sec")
        print("replay == live:", outcome.reports == [live])

        # 4. Offline ablation: re-analyse the same run under fixed WFG.
        wfg = replay(load_trace(jsonl), mode="detection", model=GraphModel.WFG)
        print("\n--- same run, re-analysed as a wait-for graph ---")
        print(wfg.reports[0].describe())

        # 5. The same file again, streamed: one frame in memory at a
        # time — how a million-event recording replays in flat RAM.
        streamed = replay(binary, stream=True)
        print("\nstreamed replay == eager replay:",
              streamed.reports == outcome.reports)

        # 6. Scale out: a generated corpus fanned over worker
        # processes, reports merged deterministically.
        write_corpus(f"{tmp}/corpus", grid_specs((2, 3), (1, 2), (1,)))
        result = replay_corpus(f"{tmp}/corpus", processes=2)
        print(f"corpus: {len(result.entries)} file(s) over "
              f"{result.processes} processes, "
              f"{result.records_processed} records, "
              f"{len(result.reports)} report(s), "
              f"{len(result.mismatches)} verdict mismatch(es)")


if __name__ == "__main__":
    main()
