"""Setup shim; all metadata lives in setup.cfg.

The setup.cfg/setup.py layout (instead of pyproject.toml) is deliberate:
with a pyproject.toml present, pip builds in an isolated environment
that needs network access to fetch setuptools, and this repository must
install with ``pip install -e .`` fully offline.
"""

from setuptools import setup

setup()
