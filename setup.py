"""Setup script for the repro package (plain setup.py, no pyproject.toml).

The bare-setup.py layout is deliberate: with a pyproject.toml present,
pip builds in an isolated environment that needs network access to
fetch setuptools, and this repository must install with
``pip install -e .`` fully offline.

The one piece of logic here is the **optional** compiled core: the
``repro.core._nativescc`` C extension (the DynamicSCC maintenance
kernel — see ``src/repro/core/_nativescc.c``).  A machine with a C
toolchain gets it built automatically; a machine without one gets a
warning and a fully functional pure-Python install — every import and
test passes either way, because ``repro.core._native`` falls back to
the pure-Python structure when the extension is absent.  Build it
explicitly (or rebuild after edits) with::

    python setup.py build_ext --inplace
"""

import sys

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext

NATIVE_EXT = Extension(
    "repro.core._nativescc",
    sources=["src/repro/core/_nativescc.c"],
    optional=True,
)


class optional_build_ext(build_ext):
    """Carry on without the extension when no toolchain is available.

    ``Extension(optional=True)`` already tolerates per-extension build
    failures on modern setuptools; this wrapper also catches the
    environments where the *compiler setup itself* blows up before the
    per-extension handling is reached.
    """

    def run(self):
        try:
            build_ext.run(self)
        except Exception as exc:  # no compiler at all
            self._skip(exc)

    def build_extension(self, ext):
        try:
            build_ext.build_extension(self, ext)
        except Exception as exc:  # compiler present but the build failed
            if not getattr(ext, "optional", False):
                raise
            self._skip(exc)

    def _skip(self, exc):
        sys.stderr.write(
            "warning: skipping optional compiled core "
            f"(repro.core._nativescc): {exc}\n"
            "warning: falling back to the pure-Python kernel; "
            "functionality is unchanged.\n"
        )


setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    ext_modules=[NATIVE_EXT],
    cmdclass={"build_ext": optional_build_ext},
)
