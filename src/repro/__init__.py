"""repro — a complete reproduction of Armus (PPoPP 2015).

Dynamic deadlock verification for general barrier synchronisation:
event-based concurrency constraints, WFG/SG/adaptive graph analysis,
detection and avoidance modes, distributed one-phase detection, the PL
formal model, the paper's benchmark suites, and an event-trace
subsystem for offline record/replay verification.

Typical entry points::

    from repro.runtime import ArmusRuntime, VerificationMode, Clock, Phaser
    from repro.core import DeadlockChecker, GraphModel
    from repro.distributed import Cluster
    from repro.pl import programs, Interpreter
    from repro.trace import TraceRecorder, replay

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
