"""``repro.aio`` — the asyncio verification backend.

The task-observer protocol (:mod:`repro.runtime.observer`) is
runtime-agnostic: a synchronizer describes its wait as a
:class:`~repro.runtime.observer.WaitSpec`, and a driver supplies the
blocking.  This package is the event-loop driver: :func:`aio_spawn`
creates verified :class:`AioTask`\\ s (coroutines with full runtime
identity), the adapters in :mod:`repro.aio.sync` re-drive the existing
synchronizers with ``await``, and :func:`averified_wait` parks
coroutines where :func:`~repro.runtime.observer.verified_wait` parks
threads.

Everything above the driver is shared — the
:class:`~repro.runtime.verifier.ArmusRuntime` (modes, monitor,
reports), the checker, and trace recording — so an asyncio run is
verified, cancelled and recorded exactly like a threaded one, at task
counts (thousands per process) the thread backend cannot reach.

Quick start::

    runtime = ArmusRuntime(mode=VerificationMode.DETECTION).start()

    async def main():
        ph = AioPhaser(runtime, register_self=False, name="bar")
        tasks = [
            aio_spawn(worker, runtime=runtime, register=[ph.phaser])
            for _ in range(2000)
        ]
        for t in tasks:
            await t.wait()

    asyncio.run(main())
"""

from repro.aio.notify import LoopNotifier, notifier_for, wake_running_loop
from repro.aio.observer import averified_wait
from repro.aio.sync import AioBarrier, AioLatch, AioLock, AioPhaser
from repro.aio.tasks import AioTask, aio_spawn

__all__ = [
    "AioBarrier",
    "AioLatch",
    "AioLock",
    "AioPhaser",
    "AioTask",
    "LoopNotifier",
    "aio_spawn",
    "averified_wait",
    "notifier_for",
    "wake_running_loop",
]
