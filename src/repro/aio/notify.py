"""Per-event-loop wakeups for parked verified waits.

The thread driver wakes waiters through ``Condition.notify_all``; an
asyncio task cannot sleep on a :class:`threading.Condition` without
stalling its whole loop.  Instead, every async verified wait *parks* on
its loop's :class:`LoopNotifier` and re-checks its predicate when woken.

Wake sources:

* async synchronizer adapters, after any state change that could
  satisfy a wait (an arrival that advances the observed phase, a
  barrier trip, a release, a deregistration);
* :meth:`repro.aio.tasks.AioTask.cancel` — the detection monitor's
  thread condemns a task, and the wake makes it observe the report at
  once instead of at the next poll;
* task teardown (termination deregisters the task everywhere, which can
  complete events its peers wait on).

Thread-side mutations of a synchronizer *shared* between backends do
not reach the notifier; parked waits therefore carry a timeout (the
poll fallback, a few multiples of the runtime's ``poll_s``), making
mixed-backend progress a bounded-latency affair rather than a hang.
"""

from __future__ import annotations

import asyncio
import weakref
from typing import Optional, Set

#: Parked waits never sleep longer than this without re-checking; keeps
#: the timer load of thousands of parked tasks negligible while bounding
#: mixed-backend wake latency.
MIN_PARK_S = 0.02

_notifiers: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class LoopNotifier:
    """Wakes every parked verified wait of one event loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._parked: Set[asyncio.Future] = set()

    # -- waking (any thread) -------------------------------------------
    def wake(self) -> None:
        """Wake all parked waits; safe from any thread.

        A closed loop has nothing parked worth waking — the RuntimeError
        of scheduling onto it is swallowed.
        """
        try:
            self._loop.call_soon_threadsafe(self.wake_local)
        except RuntimeError:
            pass

    def wake_local(self) -> None:
        """Wake all parked waits; loop thread only."""
        parked, self._parked = self._parked, set()
        for fut in parked:
            if not fut.done():
                fut.set_result(True)

    # -- parking (loop thread) -----------------------------------------
    async def park(self, timeout: float) -> bool:
        """Sleep until the next wake (or ``timeout``); returns whether a
        wake (rather than the timeout) ended the sleep.

        A wake landing between the caller's predicate check and the park
        is only missed for one timeout period — the fallback poll is the
        correctness backstop, the wake the latency optimisation.

        Implemented with a bare future + ``call_later`` rather than
        ``asyncio.wait_for``: a thousand-task unwind re-parks O(n²)
        times, and ``wait_for``'s wrapping is the difference between
        milliseconds and seconds there.
        """
        fut = self._loop.create_future()
        self._parked.add(fut)
        handle = self._loop.call_later(timeout, self._expire, fut)
        try:
            return await fut
        finally:
            handle.cancel()
            self._parked.discard(fut)

    @staticmethod
    def _expire(fut: asyncio.Future) -> None:
        if not fut.done():
            fut.set_result(False)


def notifier_for(loop: Optional[asyncio.AbstractEventLoop] = None) -> LoopNotifier:
    """The (lazily created) notifier of ``loop`` (default: the running
    loop — raises :class:`RuntimeError` outside one)."""
    if loop is None:
        loop = asyncio.get_running_loop()
    notifier = _notifiers.get(loop)
    if notifier is None:
        notifier = LoopNotifier(loop)
        _notifiers[loop] = notifier
    return notifier


def wake_running_loop() -> None:
    """Wake the running loop's parked waits, if any; no-op outside a
    loop (a thread-backend caller touching a shared synchronizer)."""
    try:
        loop = asyncio.get_running_loop()
    except RuntimeError:
        return
    notifier = _notifiers.get(loop)
    if notifier is not None:
        notifier.wake_local()
