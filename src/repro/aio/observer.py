"""The async driver of the task-observer protocol.

:func:`averified_wait` is the coroutine twin of
:func:`repro.runtime.observer.verified_wait`: it consumes the same
:class:`~repro.runtime.observer.WaitSpec` a synchronizer built and runs
the same protocol — fast path, :func:`~repro.runtime.observer.begin_blocked`
(avoidance check + status publication), cancellation-aware waiting,
:func:`~repro.runtime.observer.end_blocked` on every exit path — so the
verifier and any attached recorder see byte-for-byte the same traffic
as a threaded run.

Only the *parking* differs: instead of ``cond.wait(poll_s)`` the
coroutine parks on its loop's
:class:`~repro.aio.notify.LoopNotifier`, woken by adapter mutations,
cancellation and task teardown, with a timeout fallback for progress
signalled from other threads.  The spec's condition lock is still taken
around every predicate evaluation — predicates are written to run under
it — but never held across an ``await``.
"""

from __future__ import annotations

from repro.aio.notify import MIN_PARK_S, notifier_for
from repro.core.report import DeadlockAvoidedError
from repro.runtime.observer import WaitSpec, begin_blocked, end_blocked


def _park_timeout(runtime) -> float:
    """The poll fallback: the runtime's cadence, floored so thousands of
    parked tasks do not degenerate into a timer storm."""
    return max(runtime.poll_s, MIN_PARK_S)


async def averified_wait(spec: WaitSpec) -> None:
    """Park until ``spec.predicate()`` holds, with verification.

    Must run inside an event loop; the calling coroutine's
    :class:`~repro.aio.tasks.AioTask` is ``spec.task``.
    """
    task = spec.task
    runtime = task.runtime
    notifier = notifier_for()
    task.check_cancelled()
    with spec.cond:
        if spec.predicate():
            return
    try:
        begin_blocked(task, spec.status_factory, spec.on_avoided)
    except DeadlockAvoidedError:
        # on_avoided deregistered the doomed task, which may have
        # completed events other parked tasks wait on; its notify_all
        # reached only thread waiters, so wake the loop's too.
        notifier.wake_local()
        raise
    try:
        while True:
            task.check_cancelled()
            with spec.cond:
                if spec.predicate():
                    return
            await notifier.park(_park_timeout(runtime))
    finally:
        end_blocked(task)
