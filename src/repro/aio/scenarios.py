"""Reusable asyncio workloads: the high-task-count scenarios the
backend exists for.

These are the async twins of the CLI's recordable scenarios and the
stress-test shapes: a deterministic two-task crossed knot (the smallest
deadlock, blocks serialised for reproducible traces), an ``n``-task
phaser ring (the classic cycle, at event-loop scale — thousands of
tasks where the thread backend tops out at hundreds), and deadlock-free
SPMD barrier rounds (the throughput workload of
``benchmarks/bench_aio.py``).

Each helper only *spawns*; joining — and whether a deadlock report is
the expected outcome — is the caller's business.
"""

from __future__ import annotations

import asyncio
from typing import List

from repro.aio.sync import AioPhaser
from repro.aio.tasks import AioTask, aio_spawn
from repro.runtime.phaser import Phaser
from repro.runtime.verifier import ArmusRuntime


async def _until_blocked(runtime: ArmusRuntime, count: int, timeout_s: float = 10.0) -> None:
    """Poll until ``count`` tasks are blocked — or a report already
    resolved the deadlock (avoidance/detection can win the race)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while runtime.checker.dependency.blocked_count() < count:
        if runtime.reports:
            return
        if loop.time() > deadline:
            raise TimeoutError(f"never saw {count} blocked task(s)")
        await asyncio.sleep(0.001)


def crossed_pair(runtime: ArmusRuntime) -> List[AioTask]:
    """The smallest knot: two tasks, two phasers, crossed arrivals.

    The second task enters its wait only after the first is published,
    so the recorded block order — and with it the whole trace — is
    deterministic.
    """
    ph1 = Phaser(runtime, register_self=False, name="p")
    ph2 = Phaser(runtime, register_self=False, name="q")

    async def first() -> None:
        await AioPhaser(phaser=ph1).arrive_and_wait()

    async def second() -> None:
        await _until_blocked(runtime, 1)
        await AioPhaser(phaser=ph2).arrive_and_wait()

    t1 = aio_spawn(first, runtime=runtime, register=[ph1, ph2], name="t1")
    t2 = aio_spawn(second, runtime=runtime, register=[ph1, ph2], name="t2")
    return [t1, t2]


def phaser_ring(runtime: ArmusRuntime, n_tasks: int) -> List[AioTask]:
    """An ``n``-task ring of phasers: task ``i`` arrives at its own
    phaser ``c_i`` and waits on it, but ``c_i``'s other member — task
    ``i+1`` — never arrives: every task blocks, closing an ``n``-cycle.

    Tasks are scheduled in spawn order and each runs straight to its
    park, so blocks land in the trace as ``a0..a{n-1}`` — an
    ``n``-thousand-task deadlock with a deterministic recording.
    """
    if n_tasks < 2:
        raise ValueError("a ring needs at least 2 tasks")
    phasers = [
        Phaser(runtime, register_self=False, name=f"c{i}") for i in range(n_tasks)
    ]

    async def body(i: int) -> None:
        ph = AioPhaser(phaser=phasers[i])
        await ph.arrive()
        await ph.wait(1)

    return [
        aio_spawn(
            body,
            i,
            runtime=runtime,
            register=[phasers[i], phasers[(i - 1) % n_tasks]],
            name=f"a{i}",
        )
        for i in range(n_tasks)
    ]


def barrier_rounds(
    runtime: ArmusRuntime, n_tasks: int, rounds: int
) -> List[AioTask]:
    """Deadlock-free SPMD rounds on one shared phaser (the throughput
    shape: ``n_tasks * rounds`` verified synchronisations)."""
    ph = Phaser(runtime, register_self=False, name="bar")

    async def body() -> None:
        mine = AioPhaser(phaser=ph)
        for _ in range(rounds):
            await mine.arrive_and_wait()

    return [
        aio_spawn(body, runtime=runtime, register=[ph], name=f"w{i}")
        for i in range(n_tasks)
    ]
