"""Async adapters for the verified synchronizers.

Each adapter wraps a *plain* runtime synchronizer — the very same
object threads use — and swaps only the blocking driver: waits go
through :func:`~repro.aio.observer.averified_wait` (parking the
coroutine) instead of :func:`~repro.runtime.observer.verified_wait`
(parking the thread).  Membership, phase bookkeeping, verification
hooks and trace records are the wrapped object's own; a phaser can even
be shared between the two backends, with threads on
``ph.await_advance()`` and coroutines on ``await AioPhaser(phaser=ph).wait()``.

After any mutation that can satisfy a parked wait, the adapter wakes
the loop's notifier.  Wakes are filtered to actual progress — an
arrival that does not advance the observed phase wakes nobody — so a
thousand tasks blocking one by one into a deadlock costs zero spurious
wakeups.
"""

from __future__ import annotations

from typing import Optional

from repro.aio.notify import wake_running_loop
from repro.aio.observer import averified_wait
from repro.runtime.barriers import CountDownLatch, CyclicBarrier
from repro.runtime.locks import ArmusLock
from repro.runtime.modes import RegistrationMode
from repro.runtime.phaser import Phaser
from repro.runtime.tasks import Task
from repro.runtime.verifier import ArmusRuntime


class AioPhaser:
    """Async driver for a :class:`~repro.runtime.phaser.Phaser`.

    Construct fresh (same parameters as ``Phaser``) or wrap an existing
    one with ``AioPhaser(phaser=ph)``.
    """

    def __init__(
        self,
        runtime: Optional[ArmusRuntime] = None,
        register_self: bool = True,
        name: Optional[str] = None,
        bound: Optional[int] = None,
        *,
        phaser: Optional[Phaser] = None,
    ) -> None:
        if phaser is not None:
            self.phaser = phaser
        else:
            self.phaser = Phaser(
                runtime, register_self=register_self, name=name, bound=bound
            )

    # -- membership (non-blocking: plain delegation + wake) ------------
    def register(
        self,
        task: Optional[Task] = None,
        mode: RegistrationMode = RegistrationMode.SIG_WAIT,
    ) -> int:
        return self.phaser.register(task, mode)

    def register_child(
        self,
        child: Task,
        parent: Optional[Task] = None,
        mode: RegistrationMode = RegistrationMode.SIG_WAIT,
    ) -> int:
        return self.phaser.register_child(child, parent, mode)

    def in_mode(self, mode: RegistrationMode):
        return self.phaser.in_mode(mode)

    def deregister(self, task: Optional[Task] = None) -> None:
        self.phaser.deregister(task)
        wake_running_loop()  # leaving can complete a pending event

    def arrive_and_deregister(self) -> None:
        self.phaser.arrive_and_deregister()
        wake_running_loop()

    # -- synchronisation -----------------------------------------------
    async def arrive(self) -> int:
        """Async ``Phaser.arrive``; on a bounded phaser the producer
        parks (observably) instead of blocking its thread."""
        phaser = self.phaser
        task, target, bound_spec = phaser._arrive_begin()
        if bound_spec is not None:
            await averified_wait(bound_spec)
        before = phaser.phase
        result = phaser._arrive_commit(task, target)
        if phaser.phase != before or phaser.bound is not None:
            wake_running_loop()
        return result

    async def wait(self, phase: Optional[int] = None) -> None:
        """Async ``Phaser.await_advance`` — the ``await p.wait()`` of the
        asyncio backend."""
        phaser = self.phaser
        spec = phaser._await_spec(phase)
        await averified_wait(spec)
        phaser._await_finish(spec)
        if phaser.bound is not None:
            wake_running_loop()  # consumer progress frees bounded producers

    async def arrive_and_wait(self) -> int:
        """Async ``arrive_and_await_advance`` (the barrier step)."""
        phase = await self.arrive()
        await self.wait(phase)
        return phase

    # -- observation ---------------------------------------------------
    @property
    def phase(self) -> int:
        return self.phaser.phase

    @property
    def registered_parties(self) -> int:
        return self.phaser.registered_parties

    def local_phase(self, task: Optional[Task] = None) -> Optional[int]:
        return self.phaser.local_phase(task)

    def is_registered(self, task: Optional[Task] = None) -> bool:
        return self.phaser.is_registered(task)

    def __repr__(self) -> str:
        return f"<AioPhaser {self.phaser!r}>"


class AioBarrier:
    """Async driver for a :class:`~repro.runtime.barriers.CyclicBarrier`."""

    def __init__(
        self,
        parties: Optional[int] = None,
        runtime: Optional[ArmusRuntime] = None,
        name: Optional[str] = None,
        *,
        barrier: Optional[CyclicBarrier] = None,
    ) -> None:
        if barrier is not None:
            self.barrier = barrier
        else:
            if parties is None:
                raise ValueError("parties is required without a barrier")
            self.barrier = CyclicBarrier(parties, runtime, name=name)

    def register(self, task: Optional[Task] = None) -> None:
        self.barrier.register(task)

    def register_child(self, child: Task, parent: Optional[Task] = None) -> None:
        self.barrier.register_child(child, parent)

    def deregister(self, task: Optional[Task] = None) -> None:
        self.barrier.deregister(task)

    async def wait(self) -> int:
        """Async ``await_barrier``: park until the generation trips."""
        generation, spec = self.barrier._arrive_begin()
        if spec is None:
            wake_running_loop()  # we tripped it: release parked siblings
            return generation
        await averified_wait(spec)
        return generation

    @property
    def parties(self) -> int:
        return self.barrier.parties

    @property
    def registered_parties(self) -> int:
        return self.barrier.registered_parties

    def __repr__(self) -> str:
        return f"<AioBarrier {self.barrier!r}>"


class AioLatch:
    """Async driver for a :class:`~repro.runtime.barriers.CountDownLatch`."""

    def __init__(
        self,
        count: Optional[int] = None,
        runtime: Optional[ArmusRuntime] = None,
        name: Optional[str] = None,
        *,
        latch: Optional[CountDownLatch] = None,
    ) -> None:
        if latch is not None:
            self.latch = latch
        else:
            if count is None:
                raise ValueError("count is required without a latch")
            self.latch = CountDownLatch(count, runtime, name=name)

    def register(self, task: Optional[Task] = None) -> None:
        self.latch.register(task)

    def register_child(self, child: Task, parent: Optional[Task] = None) -> None:
        self.latch.register_child(child, parent)

    def count_down(self) -> None:
        self.latch.count_down()
        if self.latch.count == 0:
            wake_running_loop()

    async def wait(self) -> None:
        """Async ``await_latch``: park until the count reaches zero."""
        await averified_wait(self.latch._await_spec())

    @property
    def count(self) -> int:
        return self.latch.count

    def __repr__(self) -> str:
        return f"<AioLatch {self.latch!r}>"


class AioLock:
    """Async driver for an :class:`~repro.runtime.locks.ArmusLock`;
    an async context manager (``async with lock:``)."""

    def __init__(
        self,
        runtime: Optional[ArmusRuntime] = None,
        name: Optional[str] = None,
        *,
        lock: Optional[ArmusLock] = None,
    ) -> None:
        self.lock = lock if lock is not None else ArmusLock(runtime, name=name)

    async def acquire(self) -> None:
        """Park (with verification) until the lock is taken.  Reentrant
        for the owner; the retry loop mirrors the thread driver (another
        task may win the wake-up race)."""
        while True:
            spec = self.lock._acquire_attempt()
            if spec is None:
                return
            await averified_wait(spec)

    def release(self) -> None:
        self.lock.release()
        wake_running_loop()

    async def __aenter__(self) -> "AioLock":
        await self.acquire()
        return self

    async def __aexit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self.lock.locked()

    def __repr__(self) -> str:
        return f"<AioLock {self.lock!r}>"
