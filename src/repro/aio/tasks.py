"""Verified asyncio tasks: the event-loop unit of concurrency.

An :class:`AioTask` is a :class:`~repro.runtime.tasks.Task` whose body
is a coroutine instead of a thread — same identity in reports, same
registration bookkeeping, same cancellation flag, same
terminate-and-deregister teardown.  The whole runtime layer (verifier
hooks, synchronizer membership, trace recording) operates on the shared
``Task`` surface and cannot tell the backends apart.

What differs is *resolution*: every asyncio task of a runtime shares
one thread, so the thread-ident map cannot answer "which task is
calling?".  Importing this module installs a task resolver
(:func:`repro.runtime.tasks.register_task_resolver`) that binds
:func:`asyncio.current_task` to its :class:`AioTask`, letting
``runtime.current_task()`` — and through it every synchronizer —
resolve coroutine callers transparently.
"""

from __future__ import annotations

import asyncio
import weakref
from typing import Any, Callable, Iterable, Optional

from repro.aio.notify import LoopNotifier, notifier_for
from repro.core.report import DeadlockReport
from repro.runtime.tasks import Task, register_task_resolver
from repro.runtime.verifier import ArmusRuntime, get_default_runtime

#: asyncio.Task -> AioTask binding for the context resolver.
_bound: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Raise-free running-loop probe (C accelerated, returns None outside a
#: loop).  The resolver runs on *every* current_task() call once this
#: module is imported — including the thread backend's hot path — so
#: the no-loop case must not pay for a raised-and-caught RuntimeError.
_running_loop = getattr(asyncio, "_get_running_loop", None)


def _resolve_current() -> Optional["AioTask"]:
    """The resolver: the AioTask of the running coroutine, if any."""
    if _running_loop is not None and _running_loop() is None:
        return None
    try:
        current = asyncio.current_task()
    except RuntimeError:  # no running loop in this thread
        return None
    if current is None:
        return None
    return _bound.get(current)


register_task_resolver(_resolve_current)


class AioTask(Task):
    """A runtime task backed by an asyncio coroutine.

    Created through :func:`aio_spawn`; user code ``await``\\ s
    :meth:`wait` (or calls the inherited, thread-blocking :meth:`join`
    from *another* thread).
    """

    def __init__(self, runtime: ArmusRuntime, name: Optional[str] = None) -> None:
        super().__init__(runtime, name=name)
        # Not a foreign adopted thread: a spawned task with a body, just
        # not a threaded one.
        self.is_adopted = False
        self._aio_task: Optional[asyncio.Task] = None
        self._notifier: Optional[LoopNotifier] = None

    def start(self) -> "Task":
        raise RuntimeError("AioTasks are started by aio_spawn")

    def cancel(self, report: DeadlockReport) -> None:
        """Condemn the task *and* wake its loop's parked waits, so the
        report is observed now, not at the next poll."""
        super().cancel(report)
        if self._notifier is not None:
            self._notifier.wake()

    async def wait(self, timeout: Optional[float] = None) -> Any:
        """Await completion; the async :meth:`~Task.join`.

        Deadlock errors raised inside the task propagate as-is; other
        failures are wrapped in
        :class:`~repro.runtime.tasks.TaskFailedError`.
        """
        assert self._aio_task is not None, "task was never spawned"
        try:
            await asyncio.wait_for(asyncio.shield(self._aio_task), timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(f"task {self.name} still running") from None
        return self._resolve_join()


async def _run_aio(task: AioTask, fn, args, kwargs) -> None:
    """The coroutine runner: the async twin of ``Task._run``."""
    try:
        task.result = await fn(*args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - reported via wait/join
        task.exception = exc
    finally:
        try:
            # Terminate-and-deregister (X10/HJ): leaving synchronizers
            # can complete events siblings wait on — wake them.
            task._teardown()
        finally:
            task._done.set()
            if task._notifier is not None:
                task._notifier.wake_local()


def aio_spawn(
    fn: Callable[..., Any],
    *args: Any,
    runtime: Optional[ArmusRuntime] = None,
    name: Optional[str] = None,
    register: Iterable[object] = (),
    **kwargs: Any,
) -> AioTask:
    """Create and start a verified asyncio task (the async
    ``runtime.spawn``); must be called from a running event loop.

    ``register`` accepts the same synchronizer handles as
    :meth:`~repro.runtime.verifier.ArmusRuntime.spawn` (sync objects,
    their async adapters, modal registrars): registration happens
    *before* the coroutine is scheduled, inheriting the spawning task's
    phase — a child can never miss the phase it was spawned in
    (Section 2.2's registration race).
    """
    loop = asyncio.get_running_loop()
    if runtime is None:
        runtime = get_default_runtime()
    task = AioTask(runtime, name=name)
    runtime.adopt_spawn_context(task, runtime.current_task(), register)
    task._started = True
    task._notifier = notifier_for(loop)
    task._aio_task = loop.create_task(
        _run_aio(task, fn, args, kwargs), name=task.name
    )
    # Bind before the coroutine first runs (create_task only schedules
    # it), so current_task() resolves from its very first statement.
    _bound[task._aio_task] = task
    return task
