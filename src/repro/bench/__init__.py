"""Benchmark harness (Section 6).

* :mod:`repro.bench.stats` — the measurement methodology: start-up
  performance per Georges et al. (discard the first sample, mean of the
  rest with a 95% confidence interval using the standard normal
  z-statistic), plus relative-overhead arithmetic;
* :mod:`repro.bench.harness` — experiment runners producing the data
  behind every table and figure of the paper's evaluation;
* :mod:`repro.bench.tables` — renderers that print the paper-style rows
  (``python -m repro.bench.tables <experiment>``).

`benchmarks/` at the repository root holds the pytest-benchmark entry
points; EXPERIMENTS.md records paper-vs-measured for each experiment.
"""

from repro.bench.stats import Measurement, measure, relative_overhead
from repro.bench.harness import (
    LOCAL_KERNELS,
    run_local_kernel,
    overhead_table,
    scaling_series,
    distributed_comparison,
    model_choice_comparison,
    edge_count_table,
)

__all__ = [
    "Measurement",
    "measure",
    "relative_overhead",
    "LOCAL_KERNELS",
    "run_local_kernel",
    "overhead_table",
    "scaling_series",
    "distributed_comparison",
    "model_choice_comparison",
    "edge_count_table",
]
