"""Experiment runners for every table and figure of the evaluation.

Each function reproduces the *data* behind one experiment; the renderers
in :mod:`repro.bench.tables` print them in the paper's layout.  The
mapping (see DESIGN.md's per-experiment index):

====================  =====================================
paper artefact        runner
====================  =====================================
Table 1               ``overhead_table(mode="detection")``
Table 2               ``overhead_table(mode="avoidance")``
Figure 6 (a-f)        ``scaling_series``
Figure 7              ``distributed_comparison``
Figures 8 and 9       ``model_choice_comparison``
Table 3               ``edge_count_table``
ablation D1           ``representation_ablation``
ablation D2           ``threshold_ablation``
====================  =====================================

Sizes are laptop-scale; the **shape** of the results (who wins, where
overheads grow, which model each benchmark favours) is the reproduction
target, not the absolute numbers — see EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.stats import Measurement, measure, relative_overhead
from repro.core.selection import GraphModel
from repro.distributed.places import Cluster
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.workloads.common import WorkloadResult, make_runtime
from repro.workloads.course import KERNELS as COURSE_KERNELS
from repro.workloads.hpcc import KERNELS as HPCC_KERNELS
from repro.workloads.jgf import run_rt
from repro.workloads.npb import run_bt, run_cg, run_ft, run_mg, run_sp

# ---------------------------------------------------------------------------
# local kernels (Tables 1-2, Figure 6): fixed problem class, task sweep
# ---------------------------------------------------------------------------
LOCAL_KERNELS: Dict[str, Callable[[ArmusRuntime, int], WorkloadResult]] = {
    "BT": lambda rt, n: run_bt(rt, n_tasks=n, size=16, steps=4),
    "CG": lambda rt, n: run_cg(rt, n_tasks=n, side=10, iterations=40),
    "FT": lambda rt, n: run_ft(rt, n_tasks=n, size=32, steps=3),
    "MG": lambda rt, n: run_mg(rt, n_tasks=n, levels=4, cycles=2),
    "RT": lambda rt, n: run_rt(rt, n_tasks=n, width=32, height=24, frames=1),
    "SP": lambda rt, n: run_sp(rt, n_tasks=n, size=16, steps=4),
}

#: Paper thread sweep is 2..64; the quick profile stops at 8.
QUICK_TASKS: Tuple[int, ...] = (2, 4, 8)
FULL_TASKS: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)


def run_local_kernel(
    name: str,
    mode: str = "off",
    n_tasks: int = 4,
    model: GraphModel = GraphModel.AUTO,
    interval_s: float = 0.1,
) -> WorkloadResult:
    """One validated run of a local kernel under a verification mode."""
    runtime = make_runtime(mode, model=model, interval_s=interval_s)
    try:
        return LOCAL_KERNELS[name](runtime, n_tasks)
    finally:
        runtime.stop()


def overhead_table(
    mode: str,
    task_counts: Sequence[int] = QUICK_TASKS,
    samples: int = 5,
    kernels: Optional[Sequence[str]] = None,
    model: GraphModel = GraphModel.AUTO,
) -> Dict[str, Dict[int, float]]:
    """Tables 1 and 2: relative overhead (%) per kernel per task count."""
    names = list(kernels) if kernels else list(LOCAL_KERNELS)
    out: Dict[str, Dict[int, float]] = {}
    for name in names:
        row: Dict[int, float] = {}
        for n in task_counts:
            base = measure(
                lambda: run_local_kernel(name, "off", n),
                samples=samples,
                label=f"{name}/off/{n}",
            )
            checked = measure(
                lambda: run_local_kernel(name, mode, n, model=model),
                samples=samples,
                label=f"{name}/{mode}/{n}",
            )
            row[n] = relative_overhead(base, checked)
        out[name] = row
    return out


def scaling_series(
    task_counts: Sequence[int] = QUICK_TASKS,
    samples: int = 5,
    kernels: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[int, Measurement]]]:
    """Figure 6: execution time per kernel x mode x task count."""
    names = list(kernels) if kernels else list(LOCAL_KERNELS)
    out: Dict[str, Dict[str, Dict[int, Measurement]]] = {}
    for name in names:
        out[name] = {}
        for mode in ("off", "detection", "avoidance"):
            series: Dict[int, Measurement] = {}
            for n in task_counts:
                series[n] = measure(
                    lambda: run_local_kernel(name, mode, n),
                    samples=samples,
                    label=f"{name}/{mode}/{n}",
                )
            out[name][mode] = series
    return out


# ---------------------------------------------------------------------------
# distributed (Figure 7)
# ---------------------------------------------------------------------------
def make_cluster(n_places: int, checked: bool) -> Cluster:
    """A cluster configured like the paper's deployment: detection every
    200 ms, publishing every 50 ms; ``checked=False`` leaves the site
    loops stopped (the unchecked baseline)."""
    cluster = Cluster(
        n_places,
        check_interval_s=0.2,  # the paper's distributed detection period
        publish_interval_s=0.05,
    )
    if checked:
        cluster.start()
    return cluster


def _run_distributed(
    name: str, n_places: int, checked: bool, cluster: Optional[Cluster] = None
) -> WorkloadResult:
    """One validated distributed-kernel run.

    When ``cluster`` is given it must already be configured; otherwise a
    throwaway one is built (tests).  Timing-sensitive callers pass a
    long-lived cluster so that site start/stop never lands in the timed
    region — the tool runs *alongside* the application, as deployed.
    """
    kernel = HPCC_KERNELS[name]
    if cluster is not None:
        return kernel(cluster)
    cluster = make_cluster(n_places, checked)
    try:
        return kernel(cluster)
    finally:
        if checked:
            cluster.stop()


def distributed_comparison(
    n_places: int = 4,
    samples: int = 5,
    kernels: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, object]]:
    """Figure 7: unchecked vs distributed-detection execution time.

    The paper's claim is the *absence of statistical evidence* of
    overhead: the result records whether the two confidence intervals
    overlap.  The checked cluster's publishing/checking loops run for
    the whole measurement (start/stop excluded from the timed region).
    """
    names = list(kernels) if kernels else list(HPCC_KERNELS)
    out: Dict[str, Dict[str, object]] = {}
    plain = make_cluster(n_places, checked=False)
    monitored = make_cluster(n_places, checked=True)
    try:
        for name in names:
            base = measure(
                lambda: _run_distributed(name, n_places, False, plain),
                samples=samples,
                label=f"{name}/unchecked",
            )
            checked = measure(
                lambda: _run_distributed(name, n_places, True, monitored),
                samples=samples,
                label=f"{name}/checked",
            )
            out[name] = {
                "unchecked": base,
                "checked": checked,
                "overhead_pct": relative_overhead(base, checked),
                "ci_overlap": base.overlaps(checked),
            }
    finally:
        monitored.stop()
    return out


# ---------------------------------------------------------------------------
# graph-model choice (Figures 8-9, Table 3)
# ---------------------------------------------------------------------------
COURSE_SIZES: Dict[str, dict] = {
    "SE": {"limit": 50},
    "FI": {"n": 16},
    "FR": {"n": 9},
    "BFS": {"n_nodes": 48},
    "PS": {"n_tasks": 32},
    # Beyond the paper's five: point-to-point phaser synchronisation
    # (Shirako et al.), the cited WFG-favourable regime.
    "PT2PT": {"n_tasks": 16},
}

#: The selection modes compared in Figures 8-9 and Table 3.
SELECTIONS: Dict[str, Optional[GraphModel]] = {
    "Unchecked": None,
    "Auto": GraphModel.AUTO,
    "SG": GraphModel.SG,
    "WFG": GraphModel.WFG,
}


def run_course_kernel(
    name: str,
    mode: str = "off",
    model: GraphModel = GraphModel.AUTO,
    interval_s: float = 0.02,
) -> Tuple[WorkloadResult, ArmusRuntime]:
    """One run of a course program; returns the runtime for its stats.

    The detection interval is shortened so the short-running course
    programs still receive several detection passes per run (the paper's
    programs run for seconds; ours for tens of milliseconds).
    """
    runtime = make_runtime(mode, model=model, interval_s=interval_s)
    try:
        result = COURSE_KERNELS[name](runtime, **COURSE_SIZES[name])
    finally:
        runtime.stop()
    return result, runtime


def model_choice_comparison(
    mode: str,
    samples: int = 5,
    kernels: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Measurement]]:
    """Figures 8 (mode="avoidance") and 9 (mode="detection")."""
    names = list(kernels) if kernels else list(COURSE_KERNELS)
    out: Dict[str, Dict[str, Measurement]] = {}
    for name in names:
        out[name] = {}
        for label, model in SELECTIONS.items():
            if model is None:
                fn = lambda: run_course_kernel(name, "off")
            else:
                fn = lambda m=model: run_course_kernel(name, mode, model=m)
            out[name][label] = measure(
                fn, samples=samples, label=f"{name}/{label}/{mode}"
            )
    return out


def edge_count_table(
    samples: int = 3,
    kernels: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table 3: per benchmark per selection mode — average edge count
    (from avoidance-mode checks, which see every blocked state) and the
    relative overheads of avoidance and detection."""
    names = list(kernels) if kernels else list(COURSE_KERNELS)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in names:
        base = measure(
            lambda: run_course_kernel(name, "off"),
            samples=samples,
            label=f"{name}/off",
        )
        out[name] = {}
        for label, model in SELECTIONS.items():
            if model is None:
                continue
            _result, runtime = run_course_kernel(name, "avoidance", model=model)
            edges = runtime.stats.mean_edges
            avoid = measure(
                lambda m=model: run_course_kernel(name, "avoidance", model=m),
                samples=samples,
                label=f"{name}/{label}/avoid",
            )
            detect = measure(
                lambda m=model: run_course_kernel(name, "detection", model=m),
                samples=samples,
                label=f"{name}/{label}/detect",
            )
            out[name][label] = {
                "edges": edges,
                "avoidance_pct": relative_overhead(base, avoid),
                "detection_pct": relative_overhead(base, detect),
            }
    return out


# ---------------------------------------------------------------------------
# ablations (DESIGN.md D1-D2)
# ---------------------------------------------------------------------------
def representation_ablation(n_tasks: int = 8, steps: int = 50) -> Dict[str, int]:
    """D1: bookkeeping traffic of the event-based representation versus
    the membership-tracking baseline, on the SYNC microbenchmark shape.

    The membership tracker pays one global operation per register,
    arrive, block and unblock; the event-based representation pays only
    per block/unblock.  Returns the operation counts.
    """
    from repro.core.baseline import MembershipTracker

    tracker = MembershipTracker()
    tracker.create("bar")
    for t in range(n_tasks):
        tracker.register("bar", f"t{t}")
    for _step in range(steps):
        for t in range(n_tasks):
            tracker.block(f"t{t}", "bar")
            tracker.arrive("bar", f"t{t}")
        # The barrier released everyone (the tracker unblocked them in
        # _maybe_release), but instrumented tasks still emit the unblock
        # notification on wake-up.
        for t in range(n_tasks):
            tracker.unblock(f"t{t}")
    membership_ops = tracker.ops

    # Event-based: one set_blocked + one clear per task per step.
    event_ops = 2 * n_tasks * steps
    return {
        "membership_ops": membership_ops,
        "event_ops": event_ops,
        "ratio": membership_ops / event_ops if event_ops else 0.0,
    }


def threshold_ablation(
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    kernels: Sequence[str] = ("PS", "FI"),
    samples: int = 3,
) -> Dict[str, Dict[float, Dict[str, float]]]:
    """D2: sweep the adaptive SG-abort threshold factor.

    PS (SG-friendly) should be insensitive; FI (WFG-friendly) should pay
    with growing SG edge counts as the threshold loosens.
    """
    out: Dict[str, Dict[float, Dict[str, float]]] = {}
    for name in kernels:
        out[name] = {}
        for factor in factors:
            def run() -> None:
                runtime = ArmusRuntime(
                    mode=VerificationMode.AVOIDANCE,
                    model=GraphModel.AUTO,
                    threshold_factor=factor,
                )
                runtime.start()
                try:
                    COURSE_KERNELS[name](runtime, **COURSE_SIZES[name])
                finally:
                    runtime.stop()
                run.edges = runtime.stats.mean_edges  # type: ignore[attr-defined]

            timing = measure(run, samples=samples, label=f"{name}/f={factor}")
            out[name][factor] = {
                "mean_s": timing.mean,
                "edges": getattr(run, "edges", 0.0),
            }
    return out
