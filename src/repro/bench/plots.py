"""ASCII bar charts for the figure renderers.

The paper presents Figures 6-9 as bar charts; terminals get the same
visual through :func:`bar_chart`, e.g.::

    SE | Unchecked #########################  310.5ms
       | Auto      #######################    288.1ms
       | SG        ######################     284.7ms
       | WFG       #######################    294.9ms

Used by ``python -m repro.bench.tables fig8 --chart`` (and fig6/7/9).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.bench.stats import Measurement

#: Width of the widest bar, in characters.
BAR_WIDTH = 46


def bar_chart(
    groups: Mapping[str, Mapping[str, Measurement]],
    series_order: Sequence[str],
    unit_scale: float = 1e3,
    unit: str = "ms",
) -> str:
    """Render grouped measurements as an ASCII bar chart.

    ``groups`` maps group label (e.g. benchmark name) to a mapping of
    series label (e.g. "Auto") to measurement; bars are normalised to
    the global maximum so groups are visually comparable, as in the
    paper's per-figure shared axes.
    """
    peak = max(
        (m.mean for series in groups.values() for m in series.values()),
        default=0.0,
    )
    if peak <= 0.0:
        return "(no data)"
    label_width = max((len(s) for s in series_order), default=0)
    lines = []
    for group, series in groups.items():
        prefix = f"{group:>6} | "
        for name in series_order:
            meas = series.get(name)
            if meas is None:
                continue
            bar = "#" * max(1, round(meas.mean / peak * BAR_WIDTH))
            value = f"{meas.mean * unit_scale:.1f}{unit}"
            ci = f" ±{meas.ci95 * unit_scale:.1f}"
            lines.append(
                f"{prefix}{name:<{label_width}} "
                f"{bar:<{BAR_WIDTH + 1}} {value}{ci}"
            )
            prefix = " " * 6 + " | "
        lines.append("")
    return "\n".join(lines).rstrip()
