"""Measurement methodology (Section 6, "start-up performance").

The paper follows Georges, Buytaert & Eeckhout (OOPSLA'07): take 31
samples of the execution time, discard the first (JIT/warm-up), report
the mean of the remaining 30 with a 95% confidence interval computed
with the standard normal z-statistic.  We keep the method and make the
sample count a parameter (the quick profiles use fewer samples; the
full profile restores 31).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

#: z-value for a two-sided 95% confidence interval.
Z_95 = 1.959963984540054


@dataclass
class Measurement:
    """Mean execution time with a 95% confidence interval."""

    label: str
    samples: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def std(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    @property
    def ci95(self) -> float:
        """Half-width of the 95% CI (z-statistic, as in the paper)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        return Z_95 * self.std / math.sqrt(n)

    def overlaps(self, other: "Measurement") -> bool:
        """Whether the two CIs overlap — the paper's criterion for "no
        statistical evidence of an execution overhead" (Figure 7)."""
        lo1, hi1 = self.mean - self.ci95, self.mean + self.ci95
        lo2, hi2 = other.mean - other.ci95, other.mean + other.ci95
        return hi1 >= lo2 and hi2 >= lo1

    def __str__(self) -> str:
        return f"{self.label}: {self.mean * 1e3:.1f}ms ±{self.ci95 * 1e3:.1f}"


def measure(
    fn: Callable[[], object],
    samples: int = 31,
    discard_first: bool = True,
    label: str = "",
) -> Measurement:
    """Time ``fn`` per the start-up methodology.

    ``samples`` counts *collected* runs; with ``discard_first`` (the
    default, as in the paper) one extra run happens first and is thrown
    away.
    """
    if discard_first:
        fn()
    out = Measurement(label=label)
    for _ in range(samples):
        t0 = time.perf_counter()
        fn()
        out.samples.append(time.perf_counter() - t0)
    return out


def relative_overhead(base: Measurement, checked: Measurement) -> float:
    """Relative runtime overhead in percent (Tables 1-3 report these;
    negative values are measurement noise, which the paper also shows)."""
    if base.mean == 0.0:
        return 0.0
    return (checked.mean - base.mean) / base.mean * 100.0


def mean_of(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
