"""Paper-style table/figure renderers.

Usage::

    python -m repro.bench.tables table1 [--full]
    python -m repro.bench.tables table2 [--full]
    python -m repro.bench.tables fig6   [--full]
    python -m repro.bench.tables fig7
    python -m repro.bench.tables fig8
    python -m repro.bench.tables fig9
    python -m repro.bench.tables table3
    python -m repro.bench.tables ablations
    python -m repro.bench.tables all    [--full]

Quick profiles run in minutes; ``--full`` restores the paper's sweeps
(31 samples, task counts up to 64) and can take an hour.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Sequence

from repro.bench import harness
from repro.bench.stats import Measurement


def _fmt_pct(value: float) -> str:
    return f"{value:+.0f}%"


def _print_overhead_table(
    title: str, data: Dict[str, Dict[int, float]], task_counts: Sequence[int]
) -> None:
    print(f"\n== {title} ==")
    header = "Kernel " + "".join(f"{n:>8}" for n in task_counts)
    print(header)
    for kernel, row in data.items():
        cells = "".join(f"{_fmt_pct(row[n]):>8}" for n in task_counts if n in row)
        print(f"{kernel:<7}{cells}")


def table1(args) -> None:
    counts = harness.FULL_TASKS if args.full else harness.QUICK_TASKS
    data = harness.overhead_table(
        "detection", task_counts=counts, samples=args.samples
    )
    _print_overhead_table(
        "Table 1: relative execution overhead in detection mode", data, counts
    )


def table2(args) -> None:
    counts = harness.FULL_TASKS if args.full else harness.QUICK_TASKS
    data = harness.overhead_table(
        "avoidance", task_counts=counts, samples=args.samples
    )
    _print_overhead_table(
        "Table 2: relative execution overhead in avoidance mode", data, counts
    )


def fig6(args) -> None:
    counts = harness.FULL_TASKS if args.full else harness.QUICK_TASKS
    data = harness.scaling_series(task_counts=counts, samples=args.samples)
    print("\n== Figure 6: execution time vs task count (ms, mean ±95% CI) ==")
    for kernel, modes in data.items():
        print(f"-- {kernel} --")
        print("tasks  " + "".join(f"{m:>22}" for m in modes))
        for n in counts:
            row = f"{n:<7}"
            for mode in modes:
                meas: Measurement = modes[mode][n]
                row += f"{meas.mean * 1e3:>14.1f} ±{meas.ci95 * 1e3:<6.1f}"
            print(row)


def fig7(args) -> None:
    data = harness.distributed_comparison(
        n_places=args.places, samples=args.samples
    )
    print("\n== Figure 7: distributed deadlock detection ==")
    print(f"{'Kernel':<8}{'Unchecked':>14}{'Checked':>14}{'Overhead':>10}  CI overlap")
    for kernel, row in data.items():
        base: Measurement = row["unchecked"]  # type: ignore[assignment]
        checked: Measurement = row["checked"]  # type: ignore[assignment]
        print(
            f"{kernel:<8}{base.mean * 1e3:>12.1f}ms{checked.mean * 1e3:>12.1f}ms"
            f"{row['overhead_pct']:>+9.0f}%  {row['ci_overlap']}"
        )
    print(
        "(the paper reports no statistical evidence of overhead: expect"
        " CI overlap = True for most rows)"
    )


def _fig_models(mode: str, args) -> None:
    number = "8" if mode == "avoidance" else "9"
    data = harness.model_choice_comparison(mode, samples=args.samples)
    print(
        f"\n== Figure {number}: graph-model choice, {mode} mode"
        " (ms, mean ±95% CI) =="
    )
    selections = list(harness.SELECTIONS)
    if getattr(args, "chart", False):
        from repro.bench.plots import bar_chart

        print(bar_chart(data, selections))
        return
    print("Bench  " + "".join(f"{s:>20}" for s in selections))
    for kernel, row in data.items():
        cells = ""
        for sel in selections:
            meas = row[sel]
            cells += f"{meas.mean * 1e3:>13.1f} ±{meas.ci95 * 1e3:<5.1f}"
        print(f"{kernel:<7}{cells}")


def fig8(args) -> None:
    _fig_models("avoidance", args)


def fig9(args) -> None:
    _fig_models("detection", args)


def table3(args) -> None:
    data = harness.edge_count_table(samples=args.samples)
    print("\n== Table 3: edge count and verification overhead per graph mode ==")
    kernels = list(data)
    print(f"{'':<18}" + "".join(f"{k:>8}" for k in kernels))
    for sel in ("Auto", "SG", "WFG"):
        edges = "".join(f"{data[k][sel]['edges']:>8.0f}" for k in kernels)
        avoid = "".join(
            f"{_fmt_pct(data[k][sel]['avoidance_pct']):>8}" for k in kernels
        )
        detect = "".join(
            f"{_fmt_pct(data[k][sel]['detection_pct']):>8}" for k in kernels
        )
        print(f"{sel:<6}{'Edges':<12}{edges}")
        print(f"{'':<6}{'Avoidance':<12}{avoid}")
        print(f"{'':<6}{'Detection':<12}{detect}")


def ablations(args) -> None:
    rep = harness.representation_ablation()
    print("\n== Ablation D1: constraint representation bookkeeping ==")
    print(
        f"membership-tracking ops: {rep['membership_ops']}, "
        f"event-based ops: {rep['event_ops']} "
        f"(ratio {rep['ratio']:.2f}x)"
    )
    thr = harness.threshold_ablation(samples=args.samples)
    print("\n== Ablation D2: adaptive SG-abort threshold factor ==")
    for kernel, rows in thr.items():
        print(f"-- {kernel} --")
        for factor, row in rows.items():
            print(
                f"  factor {factor:>4}: {row['mean_s'] * 1e3:8.1f}ms, "
                f"avg edges {row['edges']:.0f}"
            )


EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "table3": table3,
    "ablations": ablations,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    parser.add_argument("--full", action="store_true", help="paper-size sweeps")
    parser.add_argument("--samples", type=int, default=None)
    parser.add_argument("--places", type=int, default=4)
    parser.add_argument(
        "--chart", action="store_true", help="ASCII bar charts for figures"
    )
    args = parser.parse_args(argv)
    if args.samples is None:
        args.samples = 31 if args.full else 3
    if args.experiment == "all":
        for fn in EXPERIMENTS.values():
            fn(args)
    else:
        EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
