"""Armus core verification library.

This package implements the paper's primary contribution: the event-based
representation of concurrency constraints (Section 4.1), the three graph
models built from a resource-dependency state (Wait-For Graph, State Graph
and General Resource Graph, Definitions 4.2-4.4), cycle detection, the
adaptive graph-model selection of Section 5.1, and the deadlock checker
used by both the detection and avoidance verification modes (Section 5).

The core package is deliberately free of threading: it operates on
immutable :class:`~repro.core.events.BlockedStatus` values supplied by an
application layer (the :mod:`repro.runtime` substrate, the
:mod:`repro.distributed` sites, or the :mod:`repro.pl` interpreter).
"""

from repro.core.events import Event, BlockedStatus, TaskId, PhaserId
from repro.core.dependency import ResourceDependency, DependencySnapshot
from repro.core.graphs import DiGraph, build_wfg, build_sg, build_grg
from repro.core.cycles import has_cycle, find_cycle, strongly_connected_components
from repro.core.selection import GraphModel, GraphBuildResult, build_graph
from repro.core.checker import DeadlockChecker, CheckStats
from repro.core.scc import DynamicSCC
from repro.core.incremental import IncrementalChecker
from repro.core.report import (
    DeadlockReport,
    DeadlockError,
    DeadlockDetectedError,
    DeadlockAvoidedError,
)
from repro.core.monitor import DetectionMonitor

__all__ = [
    "Event",
    "BlockedStatus",
    "TaskId",
    "PhaserId",
    "ResourceDependency",
    "DependencySnapshot",
    "DiGraph",
    "build_wfg",
    "build_sg",
    "build_grg",
    "has_cycle",
    "find_cycle",
    "strongly_connected_components",
    "GraphModel",
    "GraphBuildResult",
    "build_graph",
    "DeadlockChecker",
    "CheckStats",
    "DynamicSCC",
    "IncrementalChecker",
    "DeadlockReport",
    "DeadlockError",
    "DeadlockDetectedError",
    "DeadlockAvoidedError",
    "DetectionMonitor",
]
