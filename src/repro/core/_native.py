"""Opt-in compiled core: the fallback shim and kernel-backed DynamicSCC.

The hot structural half of :class:`~repro.core.scc.DynamicSCC` —
adjacency, the Pearce-Kelly order, component labels with epochs, and
the scoped Tarjan recompute — has an optional C twin,
``repro.core._nativescc`` (built by ``setup.py`` when a C toolchain is
present; plain ``pip install -e .`` without one proceeds unchanged).
This module is the seam between the two worlds:

* :func:`native_scc_class` returns :class:`NativeDynamicSCC` when the
  extension is importable and not disabled, else ``None`` — the
  :func:`~repro.core.scc.make_dynamic_scc` factory falls back to the
  pure-Python structure.
* :class:`NativeDynamicSCC` wraps the kernel behind the exact
  ``DynamicSCC`` API.  The kernel speaks dense integer vertex ids, so
  the wrapper interns vertices (ids are stable for the lifetime of the
  structure — a task that unblocks and re-blocks reuses its id);
  witness-cycle extraction runs through the *shared* Python code in
  :class:`~repro.core.scc._ExtractionBase`, so reports are
  byte-identical to the pure-Python structure by construction.

Selection is governed by the ``REPRO_NATIVE`` environment variable:

* ``auto`` (default / unset): use the kernel when built.
* ``0``/``off``/``no``/``false``: force the pure-Python structure.
* ``1``/``on``/``yes``/``true``/``require``: require the kernel and
  raise :class:`RuntimeError` when it is missing — what the CI
  compiled-core job sets so a silently-unbuilt extension cannot pass
  as tested.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.core.scc import Vertex, _ExtractionBase

try:  # pragma: no cover - exercised via both CI legs
    from repro.core import _nativescc as _kernel_mod
except ImportError:  # the extension was never built: pure Python only
    _kernel_mod = None

#: Environment variable governing kernel selection (see module doc).
NATIVE_ENV = "REPRO_NATIVE"

_OFF = ("0", "off", "no", "false")
_REQUIRE = ("1", "on", "yes", "true", "require")


def native_available() -> bool:
    """Whether the compiled kernel extension is importable."""
    return _kernel_mod is not None


def native_enabled() -> bool:
    """Whether the kernel should be used, per ``REPRO_NATIVE``.

    Raises :class:`RuntimeError` when the variable *requires* the
    kernel but the extension is not built.
    """
    flag = os.environ.get(NATIVE_ENV, "auto").strip().lower()
    if flag in _OFF:
        return False
    if flag in _REQUIRE:
        if _kernel_mod is None:
            raise RuntimeError(
                f"{NATIVE_ENV}={flag!r} requires the compiled kernel, but "
                "repro.core._nativescc is not importable — build it with "
                "`python setup.py build_ext --inplace` (needs a C toolchain)"
            )
        return True
    return _kernel_mod is not None


def native_scc_class():
    """:class:`NativeDynamicSCC` when enabled, else ``None``."""
    return NativeDynamicSCC if native_enabled() else None


class NativeDynamicSCC(_ExtractionBase):
    """The compiled-kernel implementation of the ``DynamicSCC`` API.

    Mutations and verdict queries go straight to the C kernel over
    interned integer ids; extraction (and everything report-shaped)
    runs through the shared Python code against the kernel's
    structural queries.  Interning entries are never released — memory
    is bounded by the number of *distinct* vertices ever seen, not by
    the operation count.
    """

    def __init__(self) -> None:
        if _kernel_mod is None:  # defensive: factory should prevent this
            raise RuntimeError("repro.core._nativescc is not importable")
        self._k = _kernel_mod.SCCKernel()
        self._ids: Dict[Vertex, int] = {}
        self._verts: List[Vertex] = []
        self._cycle_cache: Dict[int, tuple] = {}
        #: Scoped extractions actually computed (cache misses).
        self.extractions = 0

    def _intern(self, v: Vertex) -> int:
        i = self._ids.get(v)
        if i is None:
            i = len(self._verts)
            self._ids[v] = i
            self._verts.append(v)
        return i

    # -- introspection -------------------------------------------------
    @property
    def edge_count(self) -> int:
        return self._k.edge_count

    @property
    def vertex_count(self) -> int:
        return self._k.vertex_count

    @property
    def mutation_epoch(self) -> int:
        return self._k.mutation_epoch

    @property
    def pk_visits(self) -> int:
        return self._k.pk_visits

    @property
    def resolves(self) -> int:
        return self._k.resolves

    def __contains__(self, v: Vertex) -> bool:
        i = self._ids.get(v)
        return i is not None and self._k.contains(i)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        iu = self._ids.get(u)
        iv = self._ids.get(v)
        if iu is None or iv is None:
            return False
        return self._k.has_edge(iu, iv)

    def epoch_of(self, v: Vertex) -> int:
        i = self._ids.get(v)
        if i is None:
            raise KeyError(v)
        return self._k.epoch_of_label(self._k.label_of(i))

    def component_of(self, v: Vertex) -> frozenset:
        i = self._ids.get(v)
        if i is None:
            raise KeyError(v)
        verts = self._verts
        return frozenset(
            verts[j] for j in self._k.members_of(self._k.label_of(i))
        )

    # -- mutation ------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        self._k.add_vertex(self._intern(v))

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        self._k.add_edge(self._intern(u), self._intern(v))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        iu = self._ids.get(u)
        iv = self._ids.get(v)
        if iu is not None and iv is not None:
            self._k.remove_edge(iu, iv)

    def remove_vertex(self, v: Vertex) -> None:
        i = self._ids.get(v)
        if i is not None:
            self._k.remove_vertex(i)

    def begin_batch(self) -> None:
        """See :meth:`repro.core.scc.DynamicSCC.begin_batch`."""
        self._k.begin_batch()

    def end_batch(self) -> None:
        """See :meth:`repro.core.scc.DynamicSCC.end_batch`."""
        self._k.end_batch()

    # -- queries -------------------------------------------------------
    def has_cycle(self) -> bool:
        return self._k.has_cycle()

    def edges_within(self, vertices) -> int:
        ids = {self._ids[v] for v in vertices if v in self._ids}
        return self._k.edges_within(list(ids))

    # -- adapter surface for the shared extraction code ----------------
    def _vertices(self):
        verts = self._verts
        return [verts[i] for i in self._k.vertices()]

    def _out_of(self, v: Vertex):
        i = self._ids.get(v)
        if i is None:
            return ()
        verts = self._verts
        return [verts[j] for j in self._k.out_neighbors(i)]

    def _cyclic_labels(self):
        return self._k.cyclic_labels()

    def _label_members(self, label: int):
        verts = self._verts
        return [verts[i] for i in self._k.members_of(label)]

    def _label_epoch(self, label: int) -> int:
        return self._k.epoch_of_label(label)
