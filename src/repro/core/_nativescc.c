/* Compiled kernel for repro.core.scc.DynamicSCC's maintenance hot path.
 *
 * The kernel owns the mutable graph over dense integer vertex ids —
 * adjacency, the Pearce-Kelly pseudo-topological order, the
 * union-by-size component labels with their cyclic/dirty flags and
 * mutation epochs, and the scoped Tarjan recompute.  Everything
 * *semantic* matches src/repro/core/scc.py operation for operation:
 * the same mutations bump the same counters, the same edges defer
 * under batch mode, and the same labels resolve at the same queries,
 * so verdicts, component partitions and epochs are identical to the
 * pure-Python structure for any op/query sequence.  Witness-cycle
 * extraction deliberately stays in shared Python code (repro.core.scc
 * / repro.core._native): the kernel only answers "which labels are
 * cyclic, who are their members, what are their edges", which keeps
 * reports byte-identical across implementations by construction.
 *
 * Build is optional (setup.py builds it when a C toolchain exists and
 * shrugs when one does not); repro.core._native falls back to the
 * pure-Python structure when this module is absent.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* small dynamic int vector                                            */
/* ------------------------------------------------------------------ */

typedef struct {
    int32_t *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} IntVec;

static int
vec_reserve(IntVec *v, Py_ssize_t need)
{
    if (need <= v->cap)
        return 0;
    Py_ssize_t cap = v->cap ? v->cap : 4;
    while (cap < need)
        cap *= 2;
    int32_t *data = (int32_t *)PyMem_Realloc(v->data, cap * sizeof(int32_t));
    if (data == NULL)
        return -1;
    v->data = data;
    v->cap = cap;
    return 0;
}

static int
vec_push(IntVec *v, int32_t x)
{
    if (vec_reserve(v, v->len + 1) < 0)
        return -1;
    v->data[v->len++] = x;
    return 0;
}

static void
vec_clear(IntVec *v)
{
    v->len = 0;
}

static void
vec_free(IntVec *v)
{
    PyMem_Free(v->data);
    v->data = NULL;
    v->len = v->cap = 0;
}

/* remove one occurrence of x (linear scan); returns 1 if found */
static int
vec_remove(IntVec *v, int32_t x)
{
    for (Py_ssize_t i = 0; i < v->len; i++) {
        if (v->data[i] == x) {
            memmove(v->data + i, v->data + i + 1,
                    (v->len - i - 1) * sizeof(int32_t));
            v->len--;
            return 1;
        }
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* open-addressed hash set of (u, v) edge keys                         */
/* ------------------------------------------------------------------ */

#define EDGE_EMPTY UINT64_MAX
#define EDGE_TOMB (UINT64_MAX - 1)

typedef struct {
    uint64_t *slots;
    Py_ssize_t cap;  /* power of two */
    Py_ssize_t used; /* live keys */
    Py_ssize_t fill; /* live + tombstones */
} EdgeSet;

static uint64_t
edge_key(int32_t u, int32_t v)
{
    return ((uint64_t)(uint32_t)u << 32) | (uint32_t)v;
}

static uint64_t
edge_hash(uint64_t k)
{
    /* splitmix64 finalizer: cheap, well-mixed */
    k ^= k >> 30;
    k *= UINT64_C(0xbf58476d1ce4e5b9);
    k ^= k >> 27;
    k *= UINT64_C(0x94d049bb133111eb);
    k ^= k >> 31;
    return k;
}

static int
edgeset_init(EdgeSet *s, Py_ssize_t cap)
{
    s->slots = (uint64_t *)PyMem_Malloc(cap * sizeof(uint64_t));
    if (s->slots == NULL)
        return -1;
    for (Py_ssize_t i = 0; i < cap; i++)
        s->slots[i] = EDGE_EMPTY;
    s->cap = cap;
    s->used = 0;
    s->fill = 0;
    return 0;
}

static int edgeset_add(EdgeSet *s, uint64_t key);

static int
edgeset_grow(EdgeSet *s)
{
    EdgeSet bigger;
    Py_ssize_t cap = s->cap;
    if (s->used * 4 >= s->cap)
        cap = s->cap * 2;
    if (edgeset_init(&bigger, cap) < 0)
        return -1;
    for (Py_ssize_t i = 0; i < s->cap; i++) {
        uint64_t k = s->slots[i];
        if (k != EDGE_EMPTY && k != EDGE_TOMB)
            edgeset_add(&bigger, k); /* cannot fail: no growth needed */
    }
    PyMem_Free(s->slots);
    *s = bigger;
    return 0;
}

static int
edgeset_contains(const EdgeSet *s, uint64_t key)
{
    Py_ssize_t mask = s->cap - 1;
    Py_ssize_t i = (Py_ssize_t)(edge_hash(key) & (uint64_t)mask);
    while (1) {
        uint64_t k = s->slots[i];
        if (k == key)
            return 1;
        if (k == EDGE_EMPTY)
            return 0;
        i = (i + 1) & mask;
    }
}

static int
edgeset_add(EdgeSet *s, uint64_t key)
{
    if ((s->fill + 1) * 3 >= s->cap * 2) {
        if (edgeset_grow(s) < 0)
            return -1;
    }
    Py_ssize_t mask = s->cap - 1;
    Py_ssize_t i = (Py_ssize_t)(edge_hash(key) & (uint64_t)mask);
    Py_ssize_t tomb = -1;
    while (1) {
        uint64_t k = s->slots[i];
        if (k == key)
            return 0; /* already present */
        if (k == EDGE_TOMB) {
            if (tomb < 0)
                tomb = i;
        }
        else if (k == EDGE_EMPTY) {
            if (tomb >= 0) {
                s->slots[tomb] = key;
            }
            else {
                s->slots[i] = key;
                s->fill++;
            }
            s->used++;
            return 1;
        }
        i = (i + 1) & mask;
    }
}

static int
edgeset_discard(EdgeSet *s, uint64_t key)
{
    Py_ssize_t mask = s->cap - 1;
    Py_ssize_t i = (Py_ssize_t)(edge_hash(key) & (uint64_t)mask);
    while (1) {
        uint64_t k = s->slots[i];
        if (k == key) {
            s->slots[i] = EDGE_TOMB;
            s->used--;
            return 1;
        }
        if (k == EDGE_EMPTY)
            return 0;
        i = (i + 1) & mask;
    }
}

/* ------------------------------------------------------------------ */
/* the kernel object                                                   */
/* ------------------------------------------------------------------ */

#define LF_CYCLIC 1
#define LF_DIRTY 2

typedef struct {
    PyObject_HEAD

    /* per-vertex state, indexed by vertex id (0..vnext) */
    Py_ssize_t vcap;
    Py_ssize_t vnext;  /* one past the highest id ever seen */
    char *alive;
    int64_t *ord;
    int32_t *vlabel;
    int32_t *mpos; /* index of the vertex inside its label's member vec */
    IntVec *out;
    IntVec *in;

    /* per-label state, indexed by label id (0..lnext) */
    Py_ssize_t lcap;
    Py_ssize_t lnext;
    IntVec *members; /* members[l].data == NULL  <=>  label dead */
    int64_t *lepoch;
    unsigned char *lflags;

    IntVec cyclic_list; /* labels that gained LF_CYCLIC (lazily compacted) */
    IntVec dirty_list;  /* labels that gained LF_DIRTY (flag is the truth) */
    Py_ssize_t ncyclic;

    EdgeSet edges;
    Py_ssize_t nalive;
    Py_ssize_t edge_count;
    int64_t mutations;
    int64_t next_ord;
    int64_t pk_visits;
    int64_t resolves;
    int batch_depth;

    /* reusable scratch (sized vcap): DFS/Tarjan/marking */
    int64_t *stamp;
    int64_t stamp_gen;
    int32_t *tindex;
    int32_t *tlow;
    char *onstack;
    IntVec scratch_a;
    IntVec scratch_b;
    IntVec scratch_c;
} SCCKernel;

static int
kernel_grow_vertices(SCCKernel *k, Py_ssize_t need)
{
    if (need <= k->vcap)
        return 0;
    Py_ssize_t cap = k->vcap ? k->vcap : 16;
    while (cap < need)
        cap *= 2;
#define GROW(field, type)                                                    \
    do {                                                                     \
        type *p = (type *)PyMem_Realloc(k->field, cap * sizeof(type));       \
        if (p == NULL)                                                       \
            return -1;                                                       \
        k->field = p;                                                        \
    } while (0)
    GROW(alive, char);
    GROW(ord, int64_t);
    GROW(vlabel, int32_t);
    GROW(mpos, int32_t);
    GROW(out, IntVec);
    GROW(in, IntVec);
    GROW(stamp, int64_t);
    GROW(tindex, int32_t);
    GROW(tlow, int32_t);
    GROW(onstack, char);
#undef GROW
    memset(k->alive + k->vcap, 0, (cap - k->vcap) * sizeof(char));
    memset(k->out + k->vcap, 0, (cap - k->vcap) * sizeof(IntVec));
    memset(k->in + k->vcap, 0, (cap - k->vcap) * sizeof(IntVec));
    memset(k->stamp + k->vcap, 0, (cap - k->vcap) * sizeof(int64_t));
    k->vcap = cap;
    return 0;
}

static int
kernel_grow_labels(SCCKernel *k, Py_ssize_t need)
{
    if (need <= k->lcap)
        return 0;
    Py_ssize_t cap = k->lcap ? k->lcap : 16;
    while (cap < need)
        cap *= 2;
    IntVec *m = (IntVec *)PyMem_Realloc(k->members, cap * sizeof(IntVec));
    if (m == NULL)
        return -1;
    k->members = m;
    int64_t *e = (int64_t *)PyMem_Realloc(k->lepoch, cap * sizeof(int64_t));
    if (e == NULL)
        return -1;
    k->lepoch = e;
    unsigned char *f =
        (unsigned char *)PyMem_Realloc(k->lflags, cap * sizeof(unsigned char));
    if (f == NULL)
        return -1;
    k->lflags = f;
    memset(k->members + k->lcap, 0, (cap - k->lcap) * sizeof(IntVec));
    memset(k->lflags + k->lcap, 0, (cap - k->lcap) * sizeof(unsigned char));
    k->lcap = cap;
    return 0;
}

static int
label_alive(SCCKernel *k, Py_ssize_t l)
{
    return l >= 0 && l < k->lnext && k->members[l].data != NULL;
}

static int
mark_cyclic(SCCKernel *k, int32_t l)
{
    if (!(k->lflags[l] & LF_CYCLIC)) {
        k->lflags[l] |= LF_CYCLIC;
        k->ncyclic++;
        if (vec_push(&k->cyclic_list, l) < 0)
            return -1;
    }
    return 0;
}

static void
unmark_cyclic(SCCKernel *k, int32_t l)
{
    if (k->lflags[l] & LF_CYCLIC) {
        k->lflags[l] &= (unsigned char)~LF_CYCLIC;
        k->ncyclic--;
    }
}

static int
mark_dirty(SCCKernel *k, int32_t l)
{
    if (!(k->lflags[l] & LF_DIRTY)) {
        k->lflags[l] |= LF_DIRTY;
        if (vec_push(&k->dirty_list, l) < 0)
            return -1;
    }
    return 0;
}

/* fresh label for vertex v, epoch = current mutation counter */
static int32_t
fresh_label(SCCKernel *k, int32_t v)
{
    if (kernel_grow_labels(k, k->lnext + 1) < 0)
        return -1;
    int32_t l = (int32_t)k->lnext++;
    IntVec *mv = &k->members[l];
    mv->len = mv->cap = 0;
    mv->data = NULL;
    if (vec_push(mv, v) < 0)
        return -1;
    k->lepoch[l] = k->mutations;
    k->lflags[l] = 0;
    k->vlabel[v] = l;
    k->mpos[v] = 0;
    return l;
}

static void
kill_label(SCCKernel *k, int32_t l)
{
    vec_free(&k->members[l]);
    unmark_cyclic(k, l);
    k->lflags[l] = 0; /* also drops DIRTY; stale dirty_list entry skipped */
}

/* merge lb into la or vice versa; larger member set keeps its label.
 * Mirrors DynamicSCC._union: flags and the max epoch carry over. */
static int32_t
do_union(SCCKernel *k, int32_t la, int32_t lb)
{
    if (la == lb)
        return la;
    if (k->members[la].len < k->members[lb].len) {
        int32_t t = la;
        la = lb;
        lb = t;
    }
    IntVec *big = &k->members[la];
    IntVec *small = &k->members[lb];
    for (Py_ssize_t i = 0; i < small->len; i++) {
        int32_t w = small->data[i];
        k->vlabel[w] = la;
        k->mpos[w] = (int32_t)big->len;
        if (vec_push(big, w) < 0)
            return -1;
    }
    if (k->lflags[lb] & LF_CYCLIC) {
        unmark_cyclic(k, lb);
        if (mark_cyclic(k, la) < 0)
            return -1;
    }
    if (k->lflags[lb] & LF_DIRTY) {
        if (mark_dirty(k, la) < 0)
            return -1;
    }
    if (k->lepoch[lb] > k->lepoch[la])
        k->lepoch[la] = k->lepoch[lb];
    vec_free(small);
    k->lflags[lb] = 0;
    return la;
}

/* ------------------------------------------------------------------ */
/* Pearce-Kelly insert (order-violating edge)                          */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t ord;
    int32_t v;
} OrdPair;

static int
cmp_ordpair(const void *a, const void *b)
{
    int64_t x = ((const OrdPair *)a)->ord;
    int64_t y = ((const OrdPair *)b)->ord;
    return (x > y) - (x < y);
}

static int
cmp_int64(const void *a, const void *b)
{
    int64_t x = *(const int64_t *)a;
    int64_t y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

static int
pk_insert(SCCKernel *k, int32_t u, int32_t v, int64_t lb, int64_t ub,
          int32_t label)
{
    IntVec *fwd = &k->scratch_a;
    IntVec *bwd = &k->scratch_b;
    IntVec *stack = &k->scratch_c;
    vec_clear(fwd);
    vec_clear(bwd);
    vec_clear(stack);

    /* forward from v, bounded to ord < ord(u); reaching u is a cycle */
    int64_t gen = ++k->stamp_gen;
    if (vec_push(stack, v) < 0)
        return -1;
    k->stamp[v] = gen;
    while (stack->len) {
        int32_t w = stack->data[--stack->len];
        if (vec_push(fwd, w) < 0)
            return -1;
        IntVec *nbrs = &k->out[w];
        for (Py_ssize_t i = 0; i < nbrs->len; i++) {
            int32_t x = nbrs->data[i];
            if (x == u) {
                if (mark_cyclic(k, label) < 0)
                    return -1;
                k->pk_visits += fwd->len;
                return 0;
            }
            if (k->stamp[x] != gen && k->ord[x] < ub) {
                k->stamp[x] = gen;
                if (vec_push(stack, x) < 0)
                    return -1;
            }
        }
    }

    /* backward from u, bounded to ord > ord(v) */
    gen = ++k->stamp_gen;
    if (vec_push(stack, u) < 0)
        return -1;
    k->stamp[u] = gen;
    while (stack->len) {
        int32_t w = stack->data[--stack->len];
        if (vec_push(bwd, w) < 0)
            return -1;
        IntVec *nbrs = &k->in[w];
        for (Py_ssize_t i = 0; i < nbrs->len; i++) {
            int32_t x = nbrs->data[i];
            if (k->stamp[x] != gen && k->ord[x] > lb) {
                k->stamp[x] = gen;
                if (vec_push(stack, x) < 0)
                    return -1;
            }
        }
    }

    /* reorder the affected region: bwd (by ord), then fwd (by ord),
     * reusing the same order slots in ascending order */
    Py_ssize_t n = fwd->len + bwd->len;
    OrdPair *region = (OrdPair *)PyMem_Malloc(n * sizeof(OrdPair));
    int64_t *slots = (int64_t *)PyMem_Malloc(n * sizeof(int64_t));
    if (region == NULL || slots == NULL) {
        PyMem_Free(region);
        PyMem_Free(slots);
        return -1;
    }
    for (Py_ssize_t i = 0; i < bwd->len; i++) {
        region[i].v = bwd->data[i];
        region[i].ord = k->ord[bwd->data[i]];
    }
    for (Py_ssize_t i = 0; i < fwd->len; i++) {
        region[bwd->len + i].v = fwd->data[i];
        region[bwd->len + i].ord = k->ord[fwd->data[i]];
    }
    qsort(region, bwd->len, sizeof(OrdPair), cmp_ordpair);
    qsort(region + bwd->len, fwd->len, sizeof(OrdPair), cmp_ordpair);
    for (Py_ssize_t i = 0; i < n; i++)
        slots[i] = region[i].ord;
    qsort(slots, n, sizeof(int64_t), cmp_int64);
    for (Py_ssize_t i = 0; i < n; i++)
        k->ord[region[i].v] = slots[i];
    PyMem_Free(region);
    PyMem_Free(slots);
    k->pk_visits += n;
    return 0;
}

/* ------------------------------------------------------------------ */
/* scoped recompute (dirty label -> fresh partition + verdicts)        */
/* ------------------------------------------------------------------ */

static int
resolve_label(SCCKernel *k, int32_t label)
{
    /* detach the member list; the label dies here */
    IntVec members = k->members[label];
    k->members[label].data = NULL;
    k->members[label].len = k->members[label].cap = 0;
    unmark_cyclic(k, label);
    k->lflags[label] = 0;
    if (members.len == 0) {
        vec_free(&members);
        return 0;
    }
    k->resolves++;

    /* fresh singleton labels, then re-union along out-edges */
    for (Py_ssize_t i = 0; i < members.len; i++) {
        if (fresh_label(k, members.data[i]) < 0)
            goto fail;
    }
    for (Py_ssize_t i = 0; i < members.len; i++) {
        int32_t w = members.data[i];
        IntVec *nbrs = &k->out[w];
        for (Py_ssize_t j = 0; j < nbrs->len; j++) {
            if (do_union(k, k->vlabel[w], k->vlabel[nbrs->data[j]]) < 0)
                goto fail;
        }
    }

    /* iterative Tarjan over the members' induced subgraph (every edge
     * endpoint shares a label, so neighbours are always members) */
    {
        int64_t gen = ++k->stamp_gen;
        IntVec *vstack = &k->scratch_a;  /* Tarjan vertex stack */
        IntVec *frames = &k->scratch_b;  /* DFS frames: (vertex, nbr idx) */
        IntVec *sccs = &k->scratch_c;    /* emitted vertices + offsets */
        vec_clear(vstack);
        vec_clear(frames);
        vec_clear(sccs);
        IntVec offsets = {NULL, 0, 0};
        int32_t counter = 0;

        for (Py_ssize_t s = 0; s < members.len; s++) {
            int32_t root = members.data[s];
            if (k->stamp[root] == gen)
                continue;
            /* push frame(root) */
            k->stamp[root] = gen;
            k->tindex[root] = counter;
            k->tlow[root] = counter;
            counter++;
            k->onstack[root] = 1;
            if (vec_push(vstack, root) < 0 || vec_push(frames, root) < 0 ||
                vec_push(frames, 0) < 0)
                goto tarjan_fail;
            while (frames->len) {
                int32_t w = frames->data[frames->len - 2];
                int32_t ni = frames->data[frames->len - 1];
                IntVec *nbrs = &k->out[w];
                if (ni < nbrs->len) {
                    frames->data[frames->len - 1] = ni + 1;
                    int32_t x = nbrs->data[ni];
                    if (k->stamp[x] != gen) {
                        k->stamp[x] = gen;
                        k->tindex[x] = counter;
                        k->tlow[x] = counter;
                        counter++;
                        k->onstack[x] = 1;
                        if (vec_push(vstack, x) < 0 ||
                            vec_push(frames, x) < 0 || vec_push(frames, 0) < 0)
                            goto tarjan_fail;
                    }
                    else if (k->onstack[x]) {
                        if (k->tindex[x] < k->tlow[w])
                            k->tlow[w] = k->tindex[x];
                    }
                }
                else {
                    frames->len -= 2;
                    if (frames->len) {
                        int32_t parent = frames->data[frames->len - 2];
                        if (k->tlow[w] < k->tlow[parent])
                            k->tlow[parent] = k->tlow[w];
                    }
                    if (k->tlow[w] == k->tindex[w]) {
                        /* pop one SCC off the vertex stack */
                        Py_ssize_t start = sccs->len;
                        while (1) {
                            int32_t x = vstack->data[--vstack->len];
                            k->onstack[x] = 0;
                            if (vec_push(sccs, x) < 0)
                                goto tarjan_fail;
                            if (x == w)
                                break;
                        }
                        if (vec_push(&offsets, (int32_t)start) < 0)
                            goto tarjan_fail;
                    }
                }
            }
        }
        if (vec_push(&offsets, (int32_t)sccs->len) < 0)
            goto tarjan_fail;

        /* Tarjan emits SCCs in reverse topological order; walk the
         * list backwards assigning fresh ords (a valid topo order) and
         * flag cyclic SCCs on their (post-union) label */
        for (Py_ssize_t c = offsets.len - 2; c >= 0; c--) {
            Py_ssize_t start = offsets.data[c];
            Py_ssize_t stop = offsets.data[c + 1];
            int32_t head = sccs->data[start];
            int cyc = (stop - start) > 1;
            if (!cyc) {
                /* self-loop check */
                cyc = edgeset_contains(&k->edges, edge_key(head, head));
            }
            if (cyc) {
                if (mark_cyclic(k, k->vlabel[head]) < 0)
                    goto tarjan_fail;
            }
            for (Py_ssize_t i = start; i < stop; i++)
                k->ord[sccs->data[i]] = k->next_ord++;
        }
        vec_free(&offsets);
        vec_free(&members);
        return 0;

    tarjan_fail:
        vec_free(&offsets);
        goto fail;
    }

fail:
    vec_free(&members);
    return -1;
}

static int
ensure_resolved(SCCKernel *k)
{
    while (k->dirty_list.len) {
        int32_t l = k->dirty_list.data[--k->dirty_list.len];
        if (label_alive(k, l) && (k->lflags[l] & LF_DIRTY)) {
            if (resolve_label(k, l) < 0)
                return -1;
        }
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* mutations                                                           */
/* ------------------------------------------------------------------ */

static int
add_vertex_impl(SCCKernel *k, int32_t v)
{
    if (kernel_grow_vertices(k, (Py_ssize_t)v + 1) < 0)
        return -1;
    if ((Py_ssize_t)v >= k->vnext)
        k->vnext = (Py_ssize_t)v + 1;
    if (k->alive[v])
        return 0;
    k->mutations++;
    k->alive[v] = 1;
    k->nalive++;
    vec_clear(&k->out[v]);
    vec_clear(&k->in[v]);
    k->ord[v] = k->next_ord++;
    if (fresh_label(k, v) < 0)
        return -1;
    return 0;
}

static int
add_edge_impl(SCCKernel *k, int32_t u, int32_t v)
{
    if (add_vertex_impl(k, u) < 0 || add_vertex_impl(k, v) < 0)
        return -1;
    uint64_t key = edge_key(u, v);
    if (edgeset_contains(&k->edges, key))
        return 0;
    k->mutations++;
    if (edgeset_add(&k->edges, key) < 0)
        return -1;
    if (vec_push(&k->out[u], v) < 0 || vec_push(&k->in[v], u) < 0)
        return -1;
    k->edge_count++;
    int32_t label = do_union(k, k->vlabel[u], k->vlabel[v]);
    if (label < 0)
        return -1;
    k->lepoch[label] = k->mutations;
    if (k->lflags[label] & (LF_CYCLIC | LF_DIRTY))
        return 0; /* known cyclic stays cyclic; unknown stays unknown */
    if (u == v)
        return mark_cyclic(k, label);
    int64_t lb = k->ord[v], ub = k->ord[u];
    if (ub < lb)
        return 0; /* order-respecting edge: provably no new cycle */
    if (k->batch_depth) {
        /* deferred maintenance: inside a batch an order-violating edge
         * only marks its component unknown (see DynamicSCC.add_edge) */
        return mark_dirty(k, label);
    }
    return pk_insert(k, u, v, lb, ub, label);
}

static int
remove_edge_impl(SCCKernel *k, int32_t u, int32_t v)
{
    if (u < 0 || v < 0 || (Py_ssize_t)u >= k->vnext || !k->alive[u])
        return 0;
    uint64_t key = edge_key(u, v);
    if (!edgeset_discard(&k->edges, key))
        return 0;
    k->mutations++;
    vec_remove(&k->out[u], v);
    vec_remove(&k->in[v], u);
    k->edge_count--;
    int32_t label = k->vlabel[u];
    k->lepoch[label] = k->mutations;
    if (k->lflags[label] & (LF_CYCLIC | LF_DIRTY)) {
        /* the deleted edge may have carried the cycle: verdict becomes
         * unknown; the next query recomputes, scoped */
        unmark_cyclic(k, label);
        if (mark_dirty(k, label) < 0)
            return -1;
    }
    return 0;
}

static int
remove_vertex_impl(SCCKernel *k, int32_t v)
{
    if (v < 0 || (Py_ssize_t)v >= k->vnext || !k->alive[v])
        return 0;
    /* snapshot-and-remove both adjacency lists, mirroring the Python
     * structure's per-edge removals (each bumps mutations/epochs) */
    IntVec snap = {NULL, 0, 0};
    for (Py_ssize_t i = 0; i < k->out[v].len; i++)
        if (vec_push(&snap, k->out[v].data[i]) < 0)
            goto fail;
    for (Py_ssize_t i = 0; i < snap.len; i++)
        if (remove_edge_impl(k, v, snap.data[i]) < 0)
            goto fail;
    vec_clear(&snap);
    for (Py_ssize_t i = 0; i < k->in[v].len; i++)
        if (vec_push(&snap, k->in[v].data[i]) < 0)
            goto fail;
    for (Py_ssize_t i = 0; i < snap.len; i++)
        if (remove_edge_impl(k, snap.data[i], v) < 0)
            goto fail;
    vec_free(&snap);

    k->mutations++;
    {
        int32_t label = k->vlabel[v];
        IntVec *mv = &k->members[label];
        /* swap-remove v from the member list, fixing the moved slot */
        int32_t pos = k->mpos[v];
        int32_t last = mv->data[mv->len - 1];
        mv->data[pos] = last;
        k->mpos[last] = pos;
        mv->len--;
        k->lepoch[label] = k->mutations;
        k->alive[v] = 0;
        k->nalive--;
        vec_free(&k->out[v]);
        vec_free(&k->in[v]);
        if (mv->len == 0)
            kill_label(k, label);
    }
    return 0;

fail:
    vec_free(&snap);
    return -1;
}

/* ------------------------------------------------------------------ */
/* Python method surface                                               */
/* ------------------------------------------------------------------ */

static int
parse_vertex(PyObject *arg, int32_t *out)
{
    long v = PyLong_AsLong(arg);
    if (v == -1 && PyErr_Occurred())
        return -1;
    if (v < 0 || v > INT32_MAX - 1) {
        PyErr_SetString(PyExc_ValueError, "vertex id out of range");
        return -1;
    }
    *out = (int32_t)v;
    return 0;
}

static PyObject *
SCCKernel_add_vertex(SCCKernel *k, PyObject *arg)
{
    int32_t v;
    if (parse_vertex(arg, &v) < 0)
        return NULL;
    if (add_vertex_impl(k, v) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

static PyObject *
SCCKernel_add_edge(SCCKernel *k, PyObject *const *args, Py_ssize_t nargs)
{
    int32_t u, v;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "add_edge expects (u, v)");
        return NULL;
    }
    if (parse_vertex(args[0], &u) < 0 || parse_vertex(args[1], &v) < 0)
        return NULL;
    if (add_edge_impl(k, u, v) < 0) {
        if (!PyErr_Occurred())
            PyErr_NoMemory();
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
SCCKernel_remove_edge(SCCKernel *k, PyObject *const *args, Py_ssize_t nargs)
{
    int32_t u, v;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "remove_edge expects (u, v)");
        return NULL;
    }
    if (parse_vertex(args[0], &u) < 0 || parse_vertex(args[1], &v) < 0)
        return NULL;
    if (remove_edge_impl(k, u, v) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

static PyObject *
SCCKernel_remove_vertex(SCCKernel *k, PyObject *arg)
{
    int32_t v;
    if (parse_vertex(arg, &v) < 0)
        return NULL;
    if (remove_vertex_impl(k, v) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

static PyObject *
SCCKernel_has_edge(SCCKernel *k, PyObject *const *args, Py_ssize_t nargs)
{
    int32_t u, v;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "has_edge expects (u, v)");
        return NULL;
    }
    if (parse_vertex(args[0], &u) < 0 || parse_vertex(args[1], &v) < 0)
        return NULL;
    if ((Py_ssize_t)u >= k->vnext || !k->alive[u])
        Py_RETURN_FALSE;
    return PyBool_FromLong(edgeset_contains(&k->edges, edge_key(u, v)));
}

static PyObject *
SCCKernel_contains(SCCKernel *k, PyObject *arg)
{
    int32_t v;
    if (parse_vertex(arg, &v) < 0)
        return NULL;
    return PyBool_FromLong((Py_ssize_t)v < k->vnext && k->alive[v]);
}

static PyObject *
SCCKernel_has_cycle(SCCKernel *k, PyObject *Py_UNUSED(ignored))
{
    if (ensure_resolved(k) < 0)
        return PyErr_NoMemory();
    return PyBool_FromLong(k->ncyclic > 0);
}

static PyObject *
SCCKernel_begin_batch(SCCKernel *k, PyObject *Py_UNUSED(ignored))
{
    k->batch_depth++;
    Py_RETURN_NONE;
}

static PyObject *
SCCKernel_end_batch(SCCKernel *k, PyObject *Py_UNUSED(ignored))
{
    if (k->batch_depth <= 0) {
        PyErr_SetString(PyExc_RuntimeError, "end_batch without begin_batch");
        return NULL;
    }
    k->batch_depth--;
    Py_RETURN_NONE;
}

static PyObject *
SCCKernel_cyclic_labels(SCCKernel *k, PyObject *Py_UNUSED(ignored))
{
    if (ensure_resolved(k) < 0)
        return PyErr_NoMemory();
    /* compact the lazy list: keep labels still alive and cyclic */
    Py_ssize_t w = 0;
    for (Py_ssize_t i = 0; i < k->cyclic_list.len; i++) {
        int32_t l = k->cyclic_list.data[i];
        if (label_alive(k, l) && (k->lflags[l] & LF_CYCLIC))
            k->cyclic_list.data[w++] = l;
    }
    k->cyclic_list.len = w;
    PyObject *res = PyList_New(w);
    if (res == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < w; i++) {
        PyObject *num = PyLong_FromLong(k->cyclic_list.data[i]);
        if (num == NULL) {
            Py_DECREF(res);
            return NULL;
        }
        PyList_SET_ITEM(res, i, num);
    }
    return res;
}

static PyObject *
SCCKernel_label_of(SCCKernel *k, PyObject *arg)
{
    int32_t v;
    if (parse_vertex(arg, &v) < 0)
        return NULL;
    if ((Py_ssize_t)v >= k->vnext || !k->alive[v]) {
        PyErr_SetString(PyExc_KeyError, "vertex not in graph");
        return NULL;
    }
    return PyLong_FromLong(k->vlabel[v]);
}

static PyObject *
SCCKernel_members_of(SCCKernel *k, PyObject *arg)
{
    long l = PyLong_AsLong(arg);
    if (l == -1 && PyErr_Occurred())
        return NULL;
    if (!label_alive(k, (Py_ssize_t)l)) {
        PyErr_SetString(PyExc_KeyError, "label not alive");
        return NULL;
    }
    IntVec *mv = &k->members[l];
    PyObject *res = PyList_New(mv->len);
    if (res == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < mv->len; i++) {
        PyObject *num = PyLong_FromLong(mv->data[i]);
        if (num == NULL) {
            Py_DECREF(res);
            return NULL;
        }
        PyList_SET_ITEM(res, i, num);
    }
    return res;
}

static PyObject *
SCCKernel_epoch_of_label(SCCKernel *k, PyObject *arg)
{
    long l = PyLong_AsLong(arg);
    if (l == -1 && PyErr_Occurred())
        return NULL;
    if (!label_alive(k, (Py_ssize_t)l)) {
        PyErr_SetString(PyExc_KeyError, "label not alive");
        return NULL;
    }
    return PyLong_FromLongLong(k->lepoch[l]);
}

static PyObject *
SCCKernel_out_neighbors(SCCKernel *k, PyObject *arg)
{
    int32_t v;
    if (parse_vertex(arg, &v) < 0)
        return NULL;
    if ((Py_ssize_t)v >= k->vnext || !k->alive[v])
        return PyList_New(0);
    IntVec *nbrs = &k->out[v];
    PyObject *res = PyList_New(nbrs->len);
    if (res == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < nbrs->len; i++) {
        PyObject *num = PyLong_FromLong(nbrs->data[i]);
        if (num == NULL) {
            Py_DECREF(res);
            return NULL;
        }
        PyList_SET_ITEM(res, i, num);
    }
    return res;
}

static PyObject *
SCCKernel_vertices(SCCKernel *k, PyObject *Py_UNUSED(ignored))
{
    PyObject *res = PyList_New(k->nalive);
    if (res == NULL)
        return NULL;
    Py_ssize_t j = 0;
    for (Py_ssize_t v = 0; v < k->vnext; v++) {
        if (!k->alive[v])
            continue;
        PyObject *num = PyLong_FromSsize_t(v);
        if (num == NULL) {
            Py_DECREF(res);
            return NULL;
        }
        PyList_SET_ITEM(res, j++, num);
    }
    return res;
}

static PyObject *
SCCKernel_edges_within(SCCKernel *k, PyObject *arg)
{
    PyObject *seq = PySequence_Fast(arg, "edges_within expects a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    int64_t gen = ++k->stamp_gen;
    for (Py_ssize_t i = 0; i < n; i++) {
        int32_t v;
        if (parse_vertex(items[i], &v) < 0) {
            Py_DECREF(seq);
            return NULL;
        }
        if ((Py_ssize_t)v < k->vnext)
            k->stamp[v] = gen;
    }
    Py_ssize_t count = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        int32_t v = (int32_t)PyLong_AsLong(items[i]);
        if ((Py_ssize_t)v >= k->vnext || !k->alive[v])
            continue;
        IntVec *nbrs = &k->out[v];
        for (Py_ssize_t j = 0; j < nbrs->len; j++)
            if (k->stamp[nbrs->data[j]] == gen)
                count++;
    }
    Py_DECREF(seq);
    return PyLong_FromSsize_t(count);
}

/* -- getters ------------------------------------------------------- */

static PyObject *
SCCKernel_get_edge_count(SCCKernel *k, void *Py_UNUSED(c))
{
    return PyLong_FromSsize_t(k->edge_count);
}

static PyObject *
SCCKernel_get_vertex_count(SCCKernel *k, void *Py_UNUSED(c))
{
    return PyLong_FromSsize_t(k->nalive);
}

static PyObject *
SCCKernel_get_mutations(SCCKernel *k, void *Py_UNUSED(c))
{
    return PyLong_FromLongLong(k->mutations);
}

static PyObject *
SCCKernel_get_pk_visits(SCCKernel *k, void *Py_UNUSED(c))
{
    return PyLong_FromLongLong(k->pk_visits);
}

static PyObject *
SCCKernel_get_resolves(SCCKernel *k, void *Py_UNUSED(c))
{
    return PyLong_FromLongLong(k->resolves);
}

static PyObject *
SCCKernel_get_batch_depth(SCCKernel *k, void *Py_UNUSED(c))
{
    return PyLong_FromLong(k->batch_depth);
}

/* ------------------------------------------------------------------ */
/* type plumbing                                                       */
/* ------------------------------------------------------------------ */

static PyObject *
SCCKernel_new(PyTypeObject *type, PyObject *Py_UNUSED(args),
              PyObject *Py_UNUSED(kwds))
{
    SCCKernel *k = (SCCKernel *)type->tp_alloc(type, 0);
    if (k == NULL)
        return NULL;
    if (edgeset_init(&k->edges, 64) < 0) {
        Py_DECREF(k);
        return PyErr_NoMemory();
    }
    return (PyObject *)k;
}

static void
SCCKernel_dealloc(SCCKernel *k)
{
    for (Py_ssize_t v = 0; v < k->vcap; v++) {
        vec_free(&k->out[v]);
        vec_free(&k->in[v]);
    }
    for (Py_ssize_t l = 0; l < k->lcap; l++)
        vec_free(&k->members[l]);
    PyMem_Free(k->alive);
    PyMem_Free(k->ord);
    PyMem_Free(k->vlabel);
    PyMem_Free(k->mpos);
    PyMem_Free(k->out);
    PyMem_Free(k->in);
    PyMem_Free(k->members);
    PyMem_Free(k->lepoch);
    PyMem_Free(k->lflags);
    PyMem_Free(k->stamp);
    PyMem_Free(k->tindex);
    PyMem_Free(k->tlow);
    PyMem_Free(k->onstack);
    PyMem_Free(k->edges.slots);
    vec_free(&k->cyclic_list);
    vec_free(&k->dirty_list);
    vec_free(&k->scratch_a);
    vec_free(&k->scratch_b);
    vec_free(&k->scratch_c);
    Py_TYPE(k)->tp_free((PyObject *)k);
}

static PyMethodDef SCCKernel_methods[] = {
    {"add_vertex", (PyCFunction)SCCKernel_add_vertex, METH_O, NULL},
    {"add_edge", (PyCFunction)(void (*)(void))SCCKernel_add_edge,
     METH_FASTCALL, NULL},
    {"remove_edge", (PyCFunction)(void (*)(void))SCCKernel_remove_edge,
     METH_FASTCALL, NULL},
    {"remove_vertex", (PyCFunction)SCCKernel_remove_vertex, METH_O, NULL},
    {"has_edge", (PyCFunction)(void (*)(void))SCCKernel_has_edge,
     METH_FASTCALL, NULL},
    {"contains", (PyCFunction)SCCKernel_contains, METH_O, NULL},
    {"has_cycle", (PyCFunction)SCCKernel_has_cycle, METH_NOARGS, NULL},
    {"begin_batch", (PyCFunction)SCCKernel_begin_batch, METH_NOARGS, NULL},
    {"end_batch", (PyCFunction)SCCKernel_end_batch, METH_NOARGS, NULL},
    {"cyclic_labels", (PyCFunction)SCCKernel_cyclic_labels, METH_NOARGS, NULL},
    {"label_of", (PyCFunction)SCCKernel_label_of, METH_O, NULL},
    {"members_of", (PyCFunction)SCCKernel_members_of, METH_O, NULL},
    {"epoch_of_label", (PyCFunction)SCCKernel_epoch_of_label, METH_O, NULL},
    {"out_neighbors", (PyCFunction)SCCKernel_out_neighbors, METH_O, NULL},
    {"vertices", (PyCFunction)SCCKernel_vertices, METH_NOARGS, NULL},
    {"edges_within", (PyCFunction)SCCKernel_edges_within, METH_O, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef SCCKernel_getset[] = {
    {"edge_count", (getter)SCCKernel_get_edge_count, NULL, NULL, NULL},
    {"vertex_count", (getter)SCCKernel_get_vertex_count, NULL, NULL, NULL},
    {"mutation_epoch", (getter)SCCKernel_get_mutations, NULL, NULL, NULL},
    {"pk_visits", (getter)SCCKernel_get_pk_visits, NULL, NULL, NULL},
    {"resolves", (getter)SCCKernel_get_resolves, NULL, NULL, NULL},
    {"batch_depth", (getter)SCCKernel_get_batch_depth, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject SCCKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.core._nativescc.SCCKernel",
    .tp_basicsize = sizeof(SCCKernel),
    .tp_dealloc = (destructor)SCCKernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Dense-int DynamicSCC maintenance kernel (see module doc).",
    .tp_methods = SCCKernel_methods,
    .tp_getset = SCCKernel_getset,
    .tp_new = SCCKernel_new,
};

static struct PyModuleDef nativescc_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.core._nativescc",
    .m_doc = "Compiled DynamicSCC maintenance kernel.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__nativescc(void)
{
    if (PyType_Ready(&SCCKernelType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&nativescc_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&SCCKernelType);
    if (PyModule_AddObject(m, "SCCKernel", (PyObject *)&SCCKernelType) < 0) {
        Py_DECREF(&SCCKernelType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "KERNEL_VERSION", 1) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
