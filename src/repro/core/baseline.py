"""Membership-based constraint tracking — the pre-Armus baseline (ablation D1).

State-of-the-art tools before Armus (Umpire/MUST lineage, Section 7) track
the *status of each blocked operation* to derive dependencies: for every
barrier they maintain the participant set and the arrival status of each
participant, and a blocked task waits for the participants that have not
arrived.  This requires bookkeeping on **every** registration change and
arrival — a global property that is expensive to maintain, and the reason
those tools do not support dynamic membership well (Section 2.1).

Armus' event-based representation only publishes *local* information at
block time.  This module implements the membership baseline so the
difference in bookkeeping traffic can be measured
(``benchmarks/bench_ablation_representation.py``); its WFG agrees with the
event-based WFG on barrier-structured workloads, which the test suite
checks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.core.events import PhaserId, TaskId
from repro.core.graphs import DiGraph


@dataclass
class _BarrierRecord:
    """Global bookkeeping for one barrier: members and arrival status."""

    members: Set[TaskId] = field(default_factory=set)
    arrived: Set[TaskId] = field(default_factory=set)
    phase: int = 0


class MembershipTracker:
    """Global membership/arrival bookkeeping (the baseline representation).

    Every mutation method counts one bookkeeping operation; the event-based
    representation performs work only in ``block``/``unblock``.  The
    ``ops`` counter is the quantity compared in the ablation bench.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._barriers: Dict[PhaserId, _BarrierRecord] = {}
        self._blocked: Dict[TaskId, PhaserId] = {}
        self.ops = 0

    # -- membership maintenance (the expensive global bookkeeping) -------
    def create(self, barrier: PhaserId) -> None:
        with self._lock:
            self.ops += 1
            self._barriers[barrier] = _BarrierRecord()

    def register(self, barrier: PhaserId, task: TaskId) -> None:
        with self._lock:
            self.ops += 1
            self._barriers[barrier].members.add(task)

    def deregister(self, barrier: PhaserId, task: TaskId) -> None:
        with self._lock:
            self.ops += 1
            rec = self._barriers[barrier]
            rec.members.discard(task)
            rec.arrived.discard(task)
            self._maybe_release(barrier, rec)

    def arrive(self, barrier: PhaserId, task: TaskId) -> None:
        with self._lock:
            self.ops += 1
            rec = self._barriers[barrier]
            if task not in rec.members:
                raise ValueError(f"{task!r} not a member of {barrier!r}")
            rec.arrived.add(task)
            self._maybe_release(barrier, rec)

    def _maybe_release(self, barrier: PhaserId, rec: _BarrierRecord) -> None:
        """Complete the synchronisation when every member has arrived.

        This is exactly the 'recreating a significant part of the actual
        synchronisation protocol' the paper criticises (Section 2.1).
        """
        if rec.members and rec.arrived >= rec.members:
            rec.arrived.clear()
            rec.phase += 1
            for t, b in list(self._blocked.items()):
                if b == barrier:
                    del self._blocked[t]

    # -- blocked-task tracking -------------------------------------------
    def block(self, task: TaskId, barrier: PhaserId) -> None:
        with self._lock:
            self.ops += 1
            self._blocked[task] = barrier

    def unblock(self, task: TaskId) -> None:
        with self._lock:
            self.ops += 1
            self._blocked.pop(task, None)

    # -- analysis ----------------------------------------------------------
    def wfg(self) -> DiGraph:
        """Wait-For Graph: blocked task -> member that has not arrived."""
        with self._lock:
            g = DiGraph()
            for t, barrier in self._blocked.items():
                g.add_vertex(t)
                rec = self._barriers.get(barrier)
                if rec is None:
                    continue
                for member in rec.members:
                    if member != t and member not in rec.arrived:
                        g.add_edge(t, member)
            return g

    def blocked_count(self) -> int:
        with self._lock:
            return len(self._blocked)
