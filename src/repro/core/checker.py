"""The deadlock checker: Armus' verification-layer entry point (Section 5.1).

The checker owns a :class:`~repro.core.dependency.ResourceDependency`
(updated by the application layer on every block/unblock), builds the
analysis graph under the configured model selection, runs cycle detection,
and assembles :class:`~repro.core.report.DeadlockReport` evidence.

Two usage patterns map to the paper's two verification modes:

* **detection** — a monitor periodically calls :meth:`DeadlockChecker.check`
  on a snapshot; found cycles are re-validated against the live statuses to
  discard unblock races, then reported;
* **avoidance** — a task about to block calls
  :meth:`DeadlockChecker.check_before_block`, which tentatively publishes
  the status and reports whether blocking would complete a cycle; on a hit
  the status is withdrawn and the caller raises
  :class:`~repro.core.report.DeadlockAvoidedError` instead of blocking.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.cycles import cycle_through, find_cycle
from repro.core.dependency import DependencySnapshot, ResourceDependency
from repro.core.events import BlockedStatus, Event, TaskId
from repro.core.report import DeadlockReport
from repro.core.selection import (
    DEFAULT_THRESHOLD_FACTOR,
    GraphBuildResult,
    GraphModel,
    build_graph,
    select_shard_model,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)


class CheckStats:
    """Accounting across checks — the source of Table 3's edge counts.

    Since the ``repro.obs`` layer, this is a *view* over obs
    instruments rather than a bag of plain fields: the counts live in a
    :class:`~repro.obs.registry.MetricsRegistry` (the enabled registry
    passed as ``metrics``, else a private one — stats always work), and
    the classic API (``checks``/``cycles_found``/``edges_total``/
    ``mean_edges``/``model_histogram``/``merge``) reads through to
    them.  The histogram backing also fixes the old lossy mean-only
    latency aggregation: p50/p95/max are derived from bucket counts.

    All aggregates remain *streaming* (count / sum / max plus per-model
    and bucket counts): memory stays O(1) no matter how long the run,
    which is what lets a detection monitor — or a million-event trace
    replay — run indefinitely without the stats object growing.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        if metrics is not None and metrics.enabled:
            self.metrics = metrics
        else:
            # Stats must always function (they predate repro.obs), so a
            # disabled/absent registry falls back to a private one.
            self.metrics = MetricsRegistry()
        reg = self.metrics
        self._checks = reg.counter(
            "repro_checks_total",
            "Deadlock checks run, by graph model analysed.",
            labels=("model",),
        )
        self._cycles = reg.counter(
            "repro_check_cycles_found_total", "Checks that found a cycle."
        )
        self._sg_aborts = reg.counter(
            "repro_check_sg_aborts_total",
            "Adaptive-mode checks whose SG build aborted past the "
            "threshold and fell back to the WFG.",
        )
        self._edges = reg.histogram(
            "repro_check_edges",
            "Analysis-graph edges per check.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._latency = reg.histogram(
            "repro_check_duration_seconds",
            "Wall-clock duration of one deadlock check.",
            buckets=DEFAULT_LATENCY_BUCKETS_S,
            volatile=True,
        )
        # Pre-bound children keep the per-check cost to a few bound
        # calls — this runs on the incremental checker's O(1) path.
        self._checks_by_model = {
            m: self._checks.labels(model=m.value) for m in GraphModel
        }
        self._edges_bound = self._edges.labels()
        self._latency_bound = self._latency.labels()

    def record(self, model_used: GraphModel, edge_count: int, dt_s: float,
               found_cycle: bool, sg_aborted: bool = False) -> None:
        """Fold one check into the aggregates."""
        self._checks_by_model[model_used].inc()
        self._latency_bound.observe(dt_s)
        self._edges_bound.observe(edge_count)
        if found_cycle:
            self._cycles.inc()
        if sg_aborted:
            self._sg_aborts.inc()

    # -- the classic field API, read through the instruments -----------
    @property
    def checks(self) -> int:
        return self._checks.total()

    @property
    def cycles_found(self) -> int:
        return self._cycles.value()

    @property
    def sg_aborts(self) -> int:
        return self._sg_aborts.value()

    @property
    def edges_total(self) -> int:
        return self._edges.sum_of()

    @property
    def edges_max(self) -> int:
        return self._edges.max_of()

    @property
    def model_counts(self) -> Dict[GraphModel, int]:
        return {
            GraphModel(values[0]): count
            for values, count in self._checks.per_label().items()
        }

    @property
    def total_time_s(self) -> float:
        return self._latency.sum_of()

    @property
    def mean_edges(self) -> float:
        """Average number of edges per check (Table 3's "Edges" row)."""
        checks = self._edges.count_of()
        if not checks:
            return 0.0
        return self._edges.sum_of() / checks

    @property
    def max_edges(self) -> int:
        """Largest analysis graph seen across all checks."""
        return self.edges_max

    # -- latency quantiles (bucket resolution; max is exact) -----------
    def latency_quantile(self, q: float) -> float:
        """Check-latency quantile from the histogram buckets."""
        return self._latency.quantile(q)

    @property
    def p50_latency_s(self) -> float:
        return self._latency.quantile(0.50)

    @property
    def p95_latency_s(self) -> float:
        return self._latency.quantile(0.95)

    @property
    def max_latency_s(self) -> float:
        return self._latency.max_of()

    def model_histogram(self) -> dict:
        """How often each concrete graph model was analysed."""
        return self.model_counts

    def merge(self, other: "CheckStats") -> None:
        """Fold ``other``'s aggregates into this one (cluster totals).

        A no-op when both views share one registry — the counts are
        already the same storage, and folding them would double."""
        if other.metrics is self.metrics:
            return
        self._checks.merge_from(other._checks)
        self._cycles.merge_from(other._cycles)
        self._sg_aborts.merge_from(other._sg_aborts)
        self._edges.merge_from(other._edges)
        self._latency.merge_from(other._latency)

    def clear(self) -> None:
        """Zero this view's instruments (``reset_stats`` support)."""
        for instrument in (self._checks, self._cycles, self._sg_aborts,
                           self._edges, self._latency):
            instrument.clear()


def snapshot_components(snapshot: DependencySnapshot) -> List[DependencySnapshot]:
    """Partition ``snapshot`` into independently checkable shards.

    Two tasks land in the same shard when they touch a common phaser
    (one waits on or is registered with a phaser the other touches).
    Any WFG edge ``t1 -> t2`` needs ``t2`` registered on the phaser of
    an event ``t1`` waits on, and any SG edge ``e1 -> e2`` needs one
    task touching both phasers — so every cycle, under either graph
    model, lies entirely inside one shard.  The partition is therefore
    a *sound* decomposition: checking shards independently finds every
    deadlock the whole-snapshot check finds.

    Shards are ordered by their minimal task id (string order) and each
    shard preserves the snapshot's task insertion order, so shard output
    is deterministic across processes.
    """
    parent: Dict[TaskId, TaskId] = {}

    def find(x: TaskId) -> TaskId:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a: TaskId, b: TaskId) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    anchor: Dict[str, TaskId] = {}
    for task, status in snapshot.statuses.items():
        parent[task] = task
        phasers = {str(e.phaser) for e in status.waits}
        phasers.update(str(p) for p in status.registered)
        for phaser in phasers:
            if phaser in anchor:
                union(anchor[phaser], task)
            else:
                anchor[phaser] = task

    groups: Dict[TaskId, Dict[TaskId, BlockedStatus]] = {}
    for task, status in snapshot.statuses.items():
        groups.setdefault(find(task), {})[task] = status
    ordered = sorted(groups.values(), key=lambda g: min(str(t) for t in g))
    return [DependencySnapshot(statuses=g) for g in ordered]


class DeadlockChecker:
    """Builds graphs from blocked statuses and finds deadlock cycles.

    Parameters
    ----------
    model:
        Graph-model selection mode (fixed WFG, fixed SG, or adaptive).
    threshold_factor:
        SG-abort threshold for adaptive mode (Section 5.1; default 2).
    dependency:
        The blocked-status store; a fresh one is created when omitted.
        Sharing one store among several checkers is how distributed sites
        analyse a global view.
    metrics:
        An enabled :class:`~repro.obs.registry.MetricsRegistry` binds
        the checker's instruments (and its :class:`CheckStats` view)
        into that registry, making them visible to live exporters.
        Omitted or disabled, the stats view keeps a private registry —
        behaviour and stats are identical either way.
    """

    def __init__(
        self,
        model: GraphModel = GraphModel.AUTO,
        threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
        dependency: Optional[ResourceDependency] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.model = model
        self.threshold_factor = threshold_factor
        self.dependency = dependency if dependency is not None else ResourceDependency()
        self.stats = CheckStats(metrics=metrics)
        #: Where this checker's instruments live: the registry passed as
        #: ``metrics`` when enabled, else the stats view's private one —
        #: so everything a checker emits travels with ``stats.merge``.
        self.metrics = self.stats.metrics
        # Serialises avoidance checks: two tasks blocking concurrently must
        # not both conclude "no cycle yet" for a cycle they jointly create.
        self._avoidance_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # blocked-status bookkeeping (delegated to the dependency store)
    # ------------------------------------------------------------------
    def set_blocked(self, task: TaskId, status: BlockedStatus) -> BlockedStatus:
        """Publish ``task``'s blocked status (detection-mode block entry)."""
        return self.dependency.set_blocked(task, status)

    def clear(self, task: TaskId) -> None:
        """Withdraw ``task``'s blocked status (the task unblocked)."""
        self.dependency.clear(task)

    def restore(self, task: TaskId, status: BlockedStatus) -> None:
        """Put back a previously stamped status verbatim (the avoidance
        undo path; see :meth:`ResourceDependency.restore`)."""
        self.dependency.restore(task, status)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check(
        self,
        snapshot: Optional[DependencySnapshot] = None,
        revalidate: bool = False,
        model: Optional[GraphModel] = None,
    ) -> Optional[DeadlockReport]:
        """Analyse ``snapshot`` (or a fresh one) for a deadlock cycle.

        With ``revalidate=True`` (detection mode), a found cycle is only
        reported if every involved task is still blocked with the very
        status that produced the cycle — eliminating false positives from
        tasks that unblocked after the snapshot was taken.

        ``model`` overrides the checker's configured selection for this
        one check — the hook sharded checking uses to pick a model per
        component without reconfiguring the checker.
        """
        effective = self.model if model is None else model
        t0 = time.perf_counter()
        if snapshot is None:
            snapshot = self.dependency.snapshot()
        if snapshot.is_empty():
            self._record(t0, None, GraphModel.SG if effective is not GraphModel.WFG else GraphModel.WFG, 0)
            return None
        built = build_graph(snapshot, effective, self.threshold_factor)
        cycle = find_cycle(built.graph)
        report = None
        if cycle is not None:
            report = self._report_from_cycle(snapshot, built, cycle, avoided=False)
            if revalidate and not self._still_current(snapshot, report):
                report = None
        self._record(t0, report, built.model_used, built.edge_count,
                     sg_aborted=built.sg_aborted)
        return report

    def check_sharded(
        self,
        snapshot: Optional[DependencySnapshot] = None,
        revalidate: bool = False,
    ) -> List[DeadlockReport]:
        """Detection over connected components, one check per shard.

        The snapshot is split with :func:`snapshot_components` and each
        shard is analysed independently — smaller graphs per check, an
        obvious parallelisation unit, and (unlike :meth:`check`, which
        stops at the first cycle) one report *per* deadlocked component.
        Reports come back in shard order, which is deterministic.

        The graph model is selected *per shard*
        (:func:`~repro.core.selection.select_shard_model`): components of
        a few tasks are checked directly in the WFG, larger ones under
        the configured selection — a fragmented snapshot no longer pays
        the SG attempt on every tiny knot.
        """
        if snapshot is None:
            snapshot = self.dependency.snapshot()
        if snapshot.is_empty():
            self.check(snapshot=snapshot)
            return []
        reports: List[DeadlockReport] = []
        for shard in snapshot_components(snapshot):
            report = self.check(
                snapshot=shard,
                revalidate=revalidate,
                model=select_shard_model(len(shard), self.model),
            )
            if report is not None:
                reports.append(report)
        return reports

    def check_before_block(
        self, task: TaskId, status: BlockedStatus
    ) -> Tuple[Optional[DeadlockReport], Optional[BlockedStatus]]:
        """Avoidance-mode check at block entry.

        Tentatively publishes ``status`` for ``task`` and analyses the
        resulting state.  Returns ``(report, None)`` when blocking would
        deadlock — the status has been withdrawn and the caller must raise
        instead of blocking.  Returns ``(None, stamped_status)`` when it is
        safe to block — the status stays published and the caller proceeds
        to wait (clearing it on wake-up).
        """
        with self._avoidance_lock:
            t0 = time.perf_counter()
            prior = self.dependency.get(task)
            stamped = self.dependency.set_blocked(task, status)
            return self._finish_avoidance(t0, task, status, prior, stamped)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _finish_avoidance(
        self,
        t0: float,
        task: TaskId,
        status: BlockedStatus,
        prior: Optional[BlockedStatus],
        stamped: BlockedStatus,
    ) -> Tuple[Optional[DeadlockReport], Optional[BlockedStatus]]:
        """The vet-after-publication half of :meth:`check_before_block`.

        Split out so subclasses can interpose a cheaper verdict between
        publication and this full analysis (the incremental checker's
        O(1) accept path) while sharing the refusal path verbatim.
        Caller holds ``_avoidance_lock`` and has already published
        ``stamped``.
        """
        snapshot = self.dependency.snapshot()
        built = build_graph(snapshot, self.model, self.threshold_factor)
        cycle = self._cycle_for_avoidance(task, status, built)
        if cycle is None:
            self._record(t0, None, built.model_used, built.edge_count,
                         sg_aborted=built.sg_aborted)
            return None, stamped
        # Withdraw the doomed status; if the caller was already
        # blocked elsewhere (re-entrant or multi-wait usage), its
        # previous status must survive the refusal untouched.
        if prior is not None:
            self.restore(task, prior)
        else:
            self.clear(task)
        report = self._report_from_cycle(snapshot, built, cycle, avoided=True)
        self._record(t0, report, built.model_used, built.edge_count,
                     sg_aborted=built.sg_aborted)
        return report, None

    def _cycle_for_avoidance(
        self, task: TaskId, status: BlockedStatus, built: GraphBuildResult
    ):
        """Find the cycle the new block would create.

        Since every block is vetted, a cycle can only appear through the
        blocking task's own vertex (WFG) or one of its waited events (SG);
        falling back to a whole-graph search keeps the check conservative
        even if earlier statuses were published without vetting (mixed
        detection/avoidance deployments).
        """
        if built.model_used is GraphModel.WFG:
            cycle = cycle_through(built.graph, task)
        else:
            # Canonical order, not frozenset order: which waited event
            # anchors the cycle must not depend on the hash seed, or
            # parallel avoidance replay diverges from serial.
            cycle = None
            for event in sorted(status.waits, key=lambda e: (str(e.phaser), e.phase)):
                cycle = cycle_through(built.graph, event)
                if cycle is not None:
                    break
        if cycle is None:
            cycle = find_cycle(built.graph)
        return cycle

    @staticmethod
    def _wfg_report(
        statuses: Mapping[TaskId, BlockedStatus],
        cycle: list,
        edge_count: int,
        avoided: bool,
    ) -> DeadlockReport:
        """Assemble a WFG-model report from a task cycle.

        The one assembly rule for WFG evidence — shared by the classic
        built-graph path and the incremental checker's maintained-state
        extraction, so the two can never drift apart field by field.
        """
        tasks = tuple(dict.fromkeys(cycle[:-1]))
        events: list[Event] = []
        for t in tasks:
            events.extend(sorted(statuses[t].waits))
        return DeadlockReport(
            tasks=tasks,
            events=tuple(dict.fromkeys(events)),
            cycle=tuple(cycle),
            model_used=GraphModel.WFG,
            edge_count=edge_count,
            avoided=avoided,
        )

    def _report_from_cycle(
        self,
        snapshot: DependencySnapshot,
        built: GraphBuildResult,
        cycle: list,
        avoided: bool,
    ) -> DeadlockReport:
        """Translate a graph cycle into task/event evidence."""
        if built.model_used is GraphModel.WFG:
            return self._wfg_report(
                snapshot.statuses, cycle, built.edge_count, avoided
            )
        events_t = tuple(dict.fromkeys(cycle[:-1]))
        event_set = set(events_t)
        tasks = tuple(
            t
            for t, s in snapshot.statuses.items()
            if s.waits & event_set
        )
        return DeadlockReport(
            tasks=tasks,
            events=events_t,
            cycle=tuple(cycle),
            model_used=built.model_used,
            edge_count=built.edge_count,
            avoided=avoided,
        )

    def _still_current(
        self, snapshot: DependencySnapshot, report: DeadlockReport
    ) -> bool:
        """Re-validate that every task in the report is still blocked."""
        for t in report.tasks:
            status = snapshot.statuses.get(t)
            if status is None or not self.dependency.is_current(t, status):
                return False
        return True

    def _record(
        self,
        t0: float,
        report: Optional[DeadlockReport],
        model_used: GraphModel,
        edge_count: int,
        sg_aborted: bool = False,
    ) -> None:
        dt = time.perf_counter() - t0
        with self._stats_lock:
            self.stats.record(
                model_used, edge_count, dt, report is not None,
                sg_aborted=sg_aborted,
            )

    def reset_stats(self) -> CheckStats:
        """Return a detached copy of the accumulated stats and zero the
        live view (the instruments keep their identity — a bound live
        registry sees the reset as cleared children)."""
        with self._stats_lock:
            old = CheckStats()
            old.merge(self.stats)
            self.stats.clear()
            return old
