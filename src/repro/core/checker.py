"""The deadlock checker: Armus' verification-layer entry point (Section 5.1).

The checker owns a :class:`~repro.core.dependency.ResourceDependency`
(updated by the application layer on every block/unblock), builds the
analysis graph under the configured model selection, runs cycle detection,
and assembles :class:`~repro.core.report.DeadlockReport` evidence.

Two usage patterns map to the paper's two verification modes:

* **detection** — a monitor periodically calls :meth:`DeadlockChecker.check`
  on a snapshot; found cycles are re-validated against the live statuses to
  discard unblock races, then reported;
* **avoidance** — a task about to block calls
  :meth:`DeadlockChecker.check_before_block`, which tentatively publishes
  the status and reports whether blocking would complete a cycle; on a hit
  the status is withdrawn and the caller raises
  :class:`~repro.core.report.DeadlockAvoidedError` instead of blocking.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.cycles import cycle_through, find_cycle
from repro.core.dependency import DependencySnapshot, ResourceDependency
from repro.core.events import BlockedStatus, Event, TaskId
from repro.core.report import DeadlockReport
from repro.core.selection import (
    DEFAULT_THRESHOLD_FACTOR,
    GraphBuildResult,
    GraphModel,
    build_graph,
    select_shard_model,
)


@dataclass
class CheckStats:
    """Accounting across checks — the source of Table 3's edge counts.

    All aggregates are *streaming* (count / sum / max plus a per-model
    histogram): memory stays O(1) no matter how long the run, which is
    what lets a detection monitor — or a million-event trace replay —
    run indefinitely without the stats object growing.
    """

    checks: int = 0
    cycles_found: int = 0
    edges_total: int = 0
    edges_max: int = 0
    model_counts: Dict[GraphModel, int] = field(default_factory=dict)
    total_time_s: float = 0.0

    def record(self, model_used: GraphModel, edge_count: int, dt_s: float,
               found_cycle: bool) -> None:
        """Fold one check into the aggregates."""
        self.checks += 1
        self.total_time_s += dt_s
        self.edges_total += edge_count
        if edge_count > self.edges_max:
            self.edges_max = edge_count
        self.model_counts[model_used] = self.model_counts.get(model_used, 0) + 1
        if found_cycle:
            self.cycles_found += 1

    @property
    def mean_edges(self) -> float:
        """Average number of edges per check (Table 3's "Edges" row)."""
        if not self.checks:
            return 0.0
        return self.edges_total / self.checks

    @property
    def max_edges(self) -> int:
        """Largest analysis graph seen across all checks."""
        return self.edges_max

    def model_histogram(self) -> dict:
        """How often each concrete graph model was analysed."""
        return dict(self.model_counts)

    def merge(self, other: "CheckStats") -> None:
        """Fold ``other``'s aggregates into this one (cluster totals)."""
        self.checks += other.checks
        self.cycles_found += other.cycles_found
        self.edges_total += other.edges_total
        self.edges_max = max(self.edges_max, other.edges_max)
        for model, count in other.model_counts.items():
            self.model_counts[model] = self.model_counts.get(model, 0) + count
        self.total_time_s += other.total_time_s


def snapshot_components(snapshot: DependencySnapshot) -> List[DependencySnapshot]:
    """Partition ``snapshot`` into independently checkable shards.

    Two tasks land in the same shard when they touch a common phaser
    (one waits on or is registered with a phaser the other touches).
    Any WFG edge ``t1 -> t2`` needs ``t2`` registered on the phaser of
    an event ``t1`` waits on, and any SG edge ``e1 -> e2`` needs one
    task touching both phasers — so every cycle, under either graph
    model, lies entirely inside one shard.  The partition is therefore
    a *sound* decomposition: checking shards independently finds every
    deadlock the whole-snapshot check finds.

    Shards are ordered by their minimal task id (string order) and each
    shard preserves the snapshot's task insertion order, so shard output
    is deterministic across processes.
    """
    parent: Dict[TaskId, TaskId] = {}

    def find(x: TaskId) -> TaskId:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a: TaskId, b: TaskId) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    anchor: Dict[str, TaskId] = {}
    for task, status in snapshot.statuses.items():
        parent[task] = task
        phasers = {str(e.phaser) for e in status.waits}
        phasers.update(str(p) for p in status.registered)
        for phaser in phasers:
            if phaser in anchor:
                union(anchor[phaser], task)
            else:
                anchor[phaser] = task

    groups: Dict[TaskId, Dict[TaskId, BlockedStatus]] = {}
    for task, status in snapshot.statuses.items():
        groups.setdefault(find(task), {})[task] = status
    ordered = sorted(groups.values(), key=lambda g: min(str(t) for t in g))
    return [DependencySnapshot(statuses=g) for g in ordered]


class DeadlockChecker:
    """Builds graphs from blocked statuses and finds deadlock cycles.

    Parameters
    ----------
    model:
        Graph-model selection mode (fixed WFG, fixed SG, or adaptive).
    threshold_factor:
        SG-abort threshold for adaptive mode (Section 5.1; default 2).
    dependency:
        The blocked-status store; a fresh one is created when omitted.
        Sharing one store among several checkers is how distributed sites
        analyse a global view.
    """

    def __init__(
        self,
        model: GraphModel = GraphModel.AUTO,
        threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
        dependency: Optional[ResourceDependency] = None,
    ) -> None:
        self.model = model
        self.threshold_factor = threshold_factor
        self.dependency = dependency if dependency is not None else ResourceDependency()
        self.stats = CheckStats()
        # Serialises avoidance checks: two tasks blocking concurrently must
        # not both conclude "no cycle yet" for a cycle they jointly create.
        self._avoidance_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # blocked-status bookkeeping (delegated to the dependency store)
    # ------------------------------------------------------------------
    def set_blocked(self, task: TaskId, status: BlockedStatus) -> BlockedStatus:
        """Publish ``task``'s blocked status (detection-mode block entry)."""
        return self.dependency.set_blocked(task, status)

    def clear(self, task: TaskId) -> None:
        """Withdraw ``task``'s blocked status (the task unblocked)."""
        self.dependency.clear(task)

    def restore(self, task: TaskId, status: BlockedStatus) -> None:
        """Put back a previously stamped status verbatim (the avoidance
        undo path; see :meth:`ResourceDependency.restore`)."""
        self.dependency.restore(task, status)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check(
        self,
        snapshot: Optional[DependencySnapshot] = None,
        revalidate: bool = False,
        model: Optional[GraphModel] = None,
    ) -> Optional[DeadlockReport]:
        """Analyse ``snapshot`` (or a fresh one) for a deadlock cycle.

        With ``revalidate=True`` (detection mode), a found cycle is only
        reported if every involved task is still blocked with the very
        status that produced the cycle — eliminating false positives from
        tasks that unblocked after the snapshot was taken.

        ``model`` overrides the checker's configured selection for this
        one check — the hook sharded checking uses to pick a model per
        component without reconfiguring the checker.
        """
        effective = self.model if model is None else model
        t0 = time.perf_counter()
        if snapshot is None:
            snapshot = self.dependency.snapshot()
        if snapshot.is_empty():
            self._record(t0, None, GraphModel.SG if effective is not GraphModel.WFG else GraphModel.WFG, 0)
            return None
        built = build_graph(snapshot, effective, self.threshold_factor)
        cycle = find_cycle(built.graph)
        report = None
        if cycle is not None:
            report = self._report_from_cycle(snapshot, built, cycle, avoided=False)
            if revalidate and not self._still_current(snapshot, report):
                report = None
        self._record(t0, report, built.model_used, built.edge_count)
        return report

    def check_sharded(
        self,
        snapshot: Optional[DependencySnapshot] = None,
        revalidate: bool = False,
    ) -> List[DeadlockReport]:
        """Detection over connected components, one check per shard.

        The snapshot is split with :func:`snapshot_components` and each
        shard is analysed independently — smaller graphs per check, an
        obvious parallelisation unit, and (unlike :meth:`check`, which
        stops at the first cycle) one report *per* deadlocked component.
        Reports come back in shard order, which is deterministic.

        The graph model is selected *per shard*
        (:func:`~repro.core.selection.select_shard_model`): components of
        a few tasks are checked directly in the WFG, larger ones under
        the configured selection — a fragmented snapshot no longer pays
        the SG attempt on every tiny knot.
        """
        if snapshot is None:
            snapshot = self.dependency.snapshot()
        if snapshot.is_empty():
            self.check(snapshot=snapshot)
            return []
        reports: List[DeadlockReport] = []
        for shard in snapshot_components(snapshot):
            report = self.check(
                snapshot=shard,
                revalidate=revalidate,
                model=select_shard_model(len(shard), self.model),
            )
            if report is not None:
                reports.append(report)
        return reports

    def check_before_block(
        self, task: TaskId, status: BlockedStatus
    ) -> Tuple[Optional[DeadlockReport], Optional[BlockedStatus]]:
        """Avoidance-mode check at block entry.

        Tentatively publishes ``status`` for ``task`` and analyses the
        resulting state.  Returns ``(report, None)`` when blocking would
        deadlock — the status has been withdrawn and the caller must raise
        instead of blocking.  Returns ``(None, stamped_status)`` when it is
        safe to block — the status stays published and the caller proceeds
        to wait (clearing it on wake-up).
        """
        with self._avoidance_lock:
            t0 = time.perf_counter()
            prior = self.dependency.get(task)
            stamped = self.dependency.set_blocked(task, status)
            return self._finish_avoidance(t0, task, status, prior, stamped)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _finish_avoidance(
        self,
        t0: float,
        task: TaskId,
        status: BlockedStatus,
        prior: Optional[BlockedStatus],
        stamped: BlockedStatus,
    ) -> Tuple[Optional[DeadlockReport], Optional[BlockedStatus]]:
        """The vet-after-publication half of :meth:`check_before_block`.

        Split out so subclasses can interpose a cheaper verdict between
        publication and this full analysis (the incremental checker's
        O(1) accept path) while sharing the refusal path verbatim.
        Caller holds ``_avoidance_lock`` and has already published
        ``stamped``.
        """
        snapshot = self.dependency.snapshot()
        built = build_graph(snapshot, self.model, self.threshold_factor)
        cycle = self._cycle_for_avoidance(task, status, built)
        if cycle is None:
            self._record(t0, None, built.model_used, built.edge_count)
            return None, stamped
        # Withdraw the doomed status; if the caller was already
        # blocked elsewhere (re-entrant or multi-wait usage), its
        # previous status must survive the refusal untouched.
        if prior is not None:
            self.restore(task, prior)
        else:
            self.clear(task)
        report = self._report_from_cycle(snapshot, built, cycle, avoided=True)
        self._record(t0, report, built.model_used, built.edge_count)
        return report, None

    def _cycle_for_avoidance(
        self, task: TaskId, status: BlockedStatus, built: GraphBuildResult
    ):
        """Find the cycle the new block would create.

        Since every block is vetted, a cycle can only appear through the
        blocking task's own vertex (WFG) or one of its waited events (SG);
        falling back to a whole-graph search keeps the check conservative
        even if earlier statuses were published without vetting (mixed
        detection/avoidance deployments).
        """
        if built.model_used is GraphModel.WFG:
            cycle = cycle_through(built.graph, task)
        else:
            # Canonical order, not frozenset order: which waited event
            # anchors the cycle must not depend on the hash seed, or
            # parallel avoidance replay diverges from serial.
            cycle = None
            for event in sorted(status.waits, key=lambda e: (str(e.phaser), e.phase)):
                cycle = cycle_through(built.graph, event)
                if cycle is not None:
                    break
        if cycle is None:
            cycle = find_cycle(built.graph)
        return cycle

    @staticmethod
    def _wfg_report(
        statuses: Mapping[TaskId, BlockedStatus],
        cycle: list,
        edge_count: int,
        avoided: bool,
    ) -> DeadlockReport:
        """Assemble a WFG-model report from a task cycle.

        The one assembly rule for WFG evidence — shared by the classic
        built-graph path and the incremental checker's maintained-state
        extraction, so the two can never drift apart field by field.
        """
        tasks = tuple(dict.fromkeys(cycle[:-1]))
        events: list[Event] = []
        for t in tasks:
            events.extend(sorted(statuses[t].waits))
        return DeadlockReport(
            tasks=tasks,
            events=tuple(dict.fromkeys(events)),
            cycle=tuple(cycle),
            model_used=GraphModel.WFG,
            edge_count=edge_count,
            avoided=avoided,
        )

    def _report_from_cycle(
        self,
        snapshot: DependencySnapshot,
        built: GraphBuildResult,
        cycle: list,
        avoided: bool,
    ) -> DeadlockReport:
        """Translate a graph cycle into task/event evidence."""
        if built.model_used is GraphModel.WFG:
            return self._wfg_report(
                snapshot.statuses, cycle, built.edge_count, avoided
            )
        events_t = tuple(dict.fromkeys(cycle[:-1]))
        event_set = set(events_t)
        tasks = tuple(
            t
            for t, s in snapshot.statuses.items()
            if s.waits & event_set
        )
        return DeadlockReport(
            tasks=tasks,
            events=events_t,
            cycle=tuple(cycle),
            model_used=built.model_used,
            edge_count=built.edge_count,
            avoided=avoided,
        )

    def _still_current(
        self, snapshot: DependencySnapshot, report: DeadlockReport
    ) -> bool:
        """Re-validate that every task in the report is still blocked."""
        for t in report.tasks:
            status = snapshot.statuses.get(t)
            if status is None or not self.dependency.is_current(t, status):
                return False
        return True

    def _record(
        self,
        t0: float,
        report: Optional[DeadlockReport],
        model_used: GraphModel,
        edge_count: int,
    ) -> None:
        dt = time.perf_counter() - t0
        with self._stats_lock:
            self.stats.record(model_used, edge_count, dt, report is not None)

    def reset_stats(self) -> CheckStats:
        """Swap in a fresh stats object; return the old one."""
        with self._stats_lock:
            old = self.stats
            self.stats = CheckStats()
            return old
