"""Cycle detection on concurrency-constraint graphs.

Deadlock analysis reduces to cycle detection (Section 4): a cycle in the
WFG (equivalently the SG, Theorem 4.8) of a resource-dependency state
witnesses a deadlocked task set.  We use an iterative Tarjan strongly-
connected-components algorithm — O(V + E), Proposition 4.2 — and extract a
concrete cycle from any non-trivial SCC for reporting.

All algorithms are iterative (explicit stacks): verification runs inside
user programs whose graphs can be deep, and CPython's recursion limit must
not constrain them.

Cycle *extraction* is canonical: among all cyclic SCCs the one holding
the globally minimal vertex (by string key) is chosen, the witness cycle
is grown by BFS over string-sorted successors, and the closed walk is
rotated to start at its minimal vertex.  The SCC partition itself is
order-independent, so two processes — regardless of hash seed, set
iteration order or Python version — extract the *same* cycle from the
same graph.  That is what lets sharded and multi-process replay merge
reports byte-identically (see ``repro.trace.parallel``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Set

from repro.core.graphs import DiGraph

Vertex = Hashable


def strongly_connected_components(graph: DiGraph) -> List[List[Vertex]]:
    """Tarjan's SCC algorithm, iterative formulation.

    Returns the components in reverse topological order (Tarjan's natural
    output order).  Each component is a list of vertices.
    """
    index_of: Dict[Vertex, int] = {}
    lowlink: Dict[Vertex, int] = {}
    on_stack: Dict[Vertex, bool] = {}
    stack: List[Vertex] = []
    components: List[List[Vertex]] = []
    counter = 0

    for root in list(graph.vertices):
        if root in index_of:
            continue
        # Each frame is (vertex, iterator over successors).
        work: List[tuple] = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index_of:
                    index_of[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(graph.successors(w))))
                    advanced = True
                    break
                if on_stack.get(w):
                    lowlink[v] = min(lowlink[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index_of[v]:
                component: List[Vertex] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return components


def has_cycle(graph: DiGraph) -> bool:
    """Whether the graph contains any directed cycle.

    A graph is cyclic iff it has an SCC with more than one vertex, or a
    vertex with a self-loop.
    """
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            return True
        v = component[0]
        if graph.has_edge(v, v):
            return True
    return False


def _vertex_key(v: Vertex) -> str:
    """The canonical vertex sort key (``str`` is stable across processes
    for both task-id and ``Event`` vertices, unlike ``hash``)."""
    return str(v)


def canonical_rotation(cycle: List[Vertex]) -> List[Vertex]:
    """Rotate the closed walk ``[v1, ..., vk, v1]`` to start (and close)
    at its minimal vertex by :func:`_vertex_key`.

    Rotation preserves the walk's edges and direction, so the result is
    the same cycle — just in the one representative form every process
    agrees on.
    """
    if len(cycle) < 2:
        return list(cycle)
    body = cycle[:-1]
    pivot = min(range(len(body)), key=lambda i: _vertex_key(body[i]))
    rotated = body[pivot:] + body[:pivot]
    rotated.append(rotated[0])
    return rotated


def canonical_cyclic_scc(graph: DiGraph):
    """The canonical cyclic SCC choice: ``(entry, members)`` for the
    cyclic SCC holding the globally minimal vertex, or ``None``.

    The one selection rule behind every canonical extraction — the
    from-scratch :func:`find_cycle` and the maintained-partition
    :meth:`~repro.core.scc.DynamicSCC.extract_cycle` both call it, so
    the two paths cannot drift (the byte-identical-reports guarantee
    rests on them choosing the same SCC by the same rule).
    """
    entry: Optional[Vertex] = None
    members: Optional[Set[Vertex]] = None
    for component in strongly_connected_components(graph):
        v = min(component, key=_vertex_key)
        if len(component) == 1 and not graph.has_edge(v, v):
            continue
        if entry is None or _vertex_key(v) < _vertex_key(entry):
            entry = v
            members = set(component)
    if entry is None or members is None:
        return None
    return entry, members


def find_cycle(graph: DiGraph) -> Optional[List[Vertex]]:
    """A concrete cycle ``[v1, ..., vk, v1]`` if one exists, else ``None``.

    Canonical: the cyclic SCC containing the globally minimal vertex is
    selected (the SCC partition is unique, so this choice is independent
    of traversal order), and the returned walk starts at that vertex.
    """
    chosen = canonical_cyclic_scc(graph)
    if chosen is None:
        return None
    entry, members = chosen
    return canonical_rotation(_cycle_containing(graph, members, entry))


def cycle_through(graph: DiGraph, vertex: Vertex) -> Optional[List[Vertex]]:
    """A cycle containing ``vertex`` if one exists, else ``None``.

    Used by avoidance mode to confirm the blocking task itself is on the
    cycle it is about to complete.  Within a cyclic SCC, strong
    connectivity guarantees every member lies on some cycle.
    """
    if vertex not in graph.adj:
        return None
    for component in strongly_connected_components(graph):
        if vertex not in component:
            continue
        if len(component) == 1 and not graph.has_edge(vertex, vertex):
            return None
        return canonical_rotation(_cycle_containing(graph, set(component), vertex))
    return None


def cycle_reachable_from(
    graph: DiGraph, vertex: Vertex
) -> Optional[List[Vertex]]:
    """A cycle reachable from ``vertex`` (possibly not through it).

    This is the exact shape of Theorem 4.15 (completeness): a deadlocked
    task reaches a ``t'``-cycle in the WFG, but need not lie on it.
    """
    if vertex not in graph.adj:
        return None
    reachable = graph.subgraph_reachable_from(vertex)
    return find_cycle(reachable)


def _cycle_containing(
    graph: DiGraph, members: Set[Vertex], v: Vertex
) -> List[Vertex]:
    """A cycle through ``v`` inside the cyclic SCC ``members``.

    BFS from the successors of ``v`` (restricted to the SCC) back to ``v``;
    strong connectivity guarantees the search succeeds.  Successors are
    visited in canonical (string-key) order so the breadth-first parent
    tree — hence the extracted cycle — does not depend on set iteration
    order.
    """
    if graph.has_edge(v, v):
        return [v, v]
    parent: Dict[Vertex, Vertex] = {}
    queue: deque[Vertex] = deque()
    for w in sorted(graph.successors(v), key=_vertex_key):
        if w in members and w not in parent:
            parent[w] = v
            queue.append(w)
    while queue:
        u = queue.popleft()
        for w in sorted(graph.successors(u), key=_vertex_key):
            if w == v:
                # Reconstruct v ... u, then close the cycle at v.
                path = [u]
                while path[-1] != v:
                    path.append(parent[path[-1]])
                path.reverse()
                path.append(v)
                return path
            if w in members and w not in parent:
                parent[w] = u
                queue.append(w)
    raise AssertionError(
        "cyclic SCC must contain a cycle through each member"
    )  # pragma: no cover


def is_walk(graph: DiGraph, walk: Sequence[Vertex]) -> bool:
    """Whether ``walk`` is a walk on ``graph`` (used by theorem tests)."""
    if len(walk) < 2:
        return False
    return all(graph.has_edge(u, v) for u, v in zip(walk, walk[1:]))


def is_cycle(graph: DiGraph, walk: Sequence[Vertex]) -> bool:
    """Whether ``walk`` is a cycle on ``graph`` (closed walk)."""
    return is_walk(graph, walk) and walk[0] == walk[-1]
