"""Resource-dependency state (Definition 4.1) and its mutable container.

A resource-dependency state ``D = (I, W)`` pairs the *impeding tasks* map
``I`` (event -> tasks that have not arrived at that event) with the
*waiting resources* map ``W`` (task -> events it is blocked on).

Section 5.1 of the paper notes that maintaining the blocked status is far
more frequent than checking for deadlocks, "so the resource-dependencies
are rearranged per task to optimise updates".  :class:`ResourceDependency`
follows that design: it stores one :class:`~repro.core.events.BlockedStatus`
per blocked task, O(1) to set and clear, and materialises the ``(I, W)``
view only when a check runs (:meth:`ResourceDependency.snapshot`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.events import BlockedStatus, Event, PhaserId, TaskId


@dataclass(frozen=True)
class DependencySnapshot:
    """An immutable point-in-time view of the blocked statuses.

    This is the input to graph construction.  ``statuses`` maps each
    blocked task to the status it reported; the classical ``W`` map is
    ``{t: statuses[t].waits}`` and ``I`` is derived by comparing local
    phases against awaited events (see :meth:`impeders_of`).
    """

    statuses: Mapping[TaskId, BlockedStatus]

    @property
    def tasks(self) -> Tuple[TaskId, ...]:
        return tuple(self.statuses)

    @property
    def waits(self) -> Dict[TaskId, frozenset[Event]]:
        """The ``W`` map of Definition 4.1 restricted to blocked tasks."""
        return {t: s.waits for t, s in self.statuses.items()}

    @property
    def awaited_events(self) -> frozenset[Event]:
        """All events some blocked task is waiting on (the resources)."""
        out: set[Event] = set()
        for status in self.statuses.values():
            out.update(status.waits)
        return frozenset(out)

    def impeders_of(self, event: Event) -> frozenset[TaskId]:
        """The ``I(event)`` set restricted to blocked tasks.

        Restricting ``I`` to blocked tasks preserves both soundness and
        completeness of cycle detection: every vertex on a WFG cycle has an
        outgoing edge, hence waits, hence is blocked (Lemma 4.9/4.11).
        """
        return frozenset(
            t for t, s in self.statuses.items() if s.impedes(event)
        )

    def impeding_map(self) -> Dict[Event, frozenset[TaskId]]:
        """The full ``I`` map over all awaited events."""
        return {e: self.impeders_of(e) for e in self.awaited_events}

    def phaser_index(self) -> Dict[PhaserId, list[Tuple[TaskId, int]]]:
        """Index ``phaser -> [(task, local phase)]`` over blocked tasks.

        Used by graph builders to find impeders of ``(p, n)`` without
        scanning all tasks per event.
        """
        index: Dict[PhaserId, list[Tuple[TaskId, int]]] = {}
        for t, s in self.statuses.items():
            for p, n in s.registered.items():
                index.setdefault(p, []).append((t, n))
        return index

    def awaited_index(self) -> Dict[PhaserId, list[Event]]:
        """Index ``phaser -> [awaited events on it]``.

        The SG builders use it to find the events a task impedes from
        its registrations alone — O(registrations) per task instead of
        a scan over every awaited event, which turns per-check SG
        construction from O(tasks × events) into O(registrations).
        """
        index: Dict[PhaserId, list[Event]] = {}
        for e in self.awaited_events:
            index.setdefault(e.phaser, []).append(e)
        return index

    def __len__(self) -> int:
        return len(self.statuses)

    def __iter__(self) -> Iterator[TaskId]:
        return iter(self.statuses)

    def is_empty(self) -> bool:
        return not self.statuses


class ResourceDependency:
    """Thread-safe per-task store of blocked statuses.

    The application layer calls :meth:`set_blocked` when a task is about to
    block and :meth:`clear` when it unblocks.  The deadlock checker calls
    :meth:`snapshot` to obtain a consistent immutable view.

    A per-task ``generation`` counter is stamped on each status so that a
    checker can later verify a status is unchanged (``is_current``) before
    reporting — this closes the race in detection mode where a task
    unblocks between the snapshot and the analysis.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._statuses: Dict[TaskId, BlockedStatus] = {}
        self._generation = 0

    def set_blocked(self, task: TaskId, status: BlockedStatus) -> BlockedStatus:
        """Record that ``task`` is blocked with ``status``.

        Returns the stamped status (with a fresh generation number).
        """
        with self._lock:
            self._generation += 1
            stamped = BlockedStatus(
                waits=status.waits,
                registered=status.registered,
                generation=self._generation,
            )
            self._statuses[task] = stamped
            return stamped

    def clear(self, task: TaskId) -> None:
        """Remove ``task``'s blocked status (the task unblocked or died)."""
        with self._lock:
            self._statuses.pop(task, None)

    def get(self, task: TaskId) -> Optional[BlockedStatus]:
        """The currently published status of ``task``, if any."""
        with self._lock:
            return self._statuses.get(task)

    def restore(self, task: TaskId, status: BlockedStatus) -> None:
        """Put back a previously stamped status verbatim.

        Used by the avoidance path to undo a tentative publication: the
        original generation is preserved so in-flight revalidations of
        the restored status remain valid.
        """
        with self._lock:
            self._statuses[task] = status

    def snapshot(self) -> DependencySnapshot:
        """An immutable, consistent copy of all current blocked statuses."""
        with self._lock:
            return DependencySnapshot(statuses=dict(self._statuses))

    @property
    def generation(self) -> int:
        """The last stamped generation number.

        Together with :meth:`blocked_count` this fingerprints the store
        state: any ``set_blocked`` bumps it, any ``clear`` changes the
        count.  The incremental checker uses the pair to detect writes
        that bypassed its delta surface and resynchronise.
        """
        with self._lock:
            return self._generation

    def is_current(self, task: TaskId, status: BlockedStatus) -> bool:
        """Whether ``task`` is still blocked with exactly ``status``."""
        with self._lock:
            cur = self._statuses.get(task)
            return cur is not None and cur.generation == status.generation

    def blocked_count(self) -> int:
        with self._lock:
            return len(self._statuses)

    def clear_all(self) -> None:
        with self._lock:
            self._statuses.clear()
