"""Synchronisation events and per-task blocked statuses (Section 4.1).

Armus represents concurrency constraints through *synchronisation events*
in the sense of Lamport logical clocks: when the members of phaser ``p``
synchronise on phase ``n``, each of them observes the event ``(p, n)``.
A blocked task *waits* for one (or more) such events, and *impedes* every
future event of each phaser it is registered with, because a blocked task
cannot arrive anywhere else.

A resource in the sense of the classical deadlock literature (Holt 1972)
is exactly one event; the paper's bijection ``res(p, n)`` is the identity
on :class:`Event`.

The blocked status of a task is purely local information: the events the
task waits for, and the task's local phase on every phaser it is
registered with.  No global membership bookkeeping is required, which is
the key enabler for dynamic membership and distributed detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

# Task and phaser names.  Any hashable value works; the runtime uses small
# integers, the PL interpreter uses strings such as ``"t1"`` and ``"p"``.
TaskId = Hashable
PhaserId = Hashable


@dataclass(frozen=True, order=True)
class Event:
    """A synchronisation event: phase ``phase`` of phaser ``phaser``.

    Events are the *resources* of the deadlock analysis.  They are totally
    ordered per phaser by their phase number (the logical-clock timestamp).
    """

    phaser: PhaserId
    phase: int

    def __post_init__(self) -> None:
        if self.phase < 0:
            raise ValueError(f"phase must be non-negative, got {self.phase}")

    def __repr__(self) -> str:  # compact form used in reports
        return f"{self.phaser}@{self.phase}"


@dataclass(frozen=True)
class BlockedStatus:
    """The locally-observable state of one blocked task.

    Attributes
    ----------
    waits:
        The events the task is blocked on.  In PL a task awaits a single
        phaser, so this is a singleton; the representation supports sets so
        that richer runtimes (e.g. a task joining several futures) reuse the
        same checker.
    registered:
        Local phases of *all* phasers the task is registered with, as a
        mapping ``phaser -> local phase``.  The task impedes every event
        ``(q, k)`` with ``k > registered[q]``: it has not arrived at ``q``
        for phase ``k`` and, being blocked, cannot do so.
    generation:
        Monotonic counter stamped by the producer.  Used by the detection
        monitor to re-validate that a status is still current before
        reporting a deadlock (guards against unblock races).
    """

    waits: frozenset[Event]
    registered: Mapping[PhaserId, int] = field(default_factory=dict)
    generation: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.waits, frozenset):
            object.__setattr__(self, "waits", frozenset(self.waits))
        # Freeze the registered mapping so statuses are safely shareable
        # across threads and usable as snapshot members.
        if not isinstance(self.registered, _FrozenPhases):
            object.__setattr__(self, "registered", _FrozenPhases(self.registered))
        if not self.waits:
            raise ValueError("a blocked status must wait on at least one event")

    def impedes(self, event: Event) -> bool:
        """Whether this task impedes ``event``.

        A task impedes ``(p, n)`` when it is registered with ``p`` at a
        local phase strictly below ``n`` (Definition 4.1's ``I`` map,
        evaluated locally).
        """
        phase = self.registered.get(event.phaser)
        return phase is not None and phase < event.phase

    def impeded_events(self, awaited: Iterable[Event]) -> frozenset[Event]:
        """The subset of ``awaited`` events this task impedes."""
        return frozenset(e for e in awaited if self.impedes(e))


class _FrozenPhases(dict):
    """An immutable ``phaser -> phase`` mapping (hashable, mutation-raising)."""

    def __hash__(self) -> int:  # type: ignore[override]
        return hash(frozenset(self.items()))

    def _readonly(self, *args, **kwargs):  # pragma: no cover - guard path
        raise TypeError("BlockedStatus.registered is immutable")

    def __reduce__(self):
        # Default dict-subclass pickling rebuilds item-by-item through
        # __setitem__, which the guards above reject; rebuild through
        # the constructor instead (statuses cross process boundaries in
        # the corpus-prediction fan-out).
        return (type(self), (dict(self),))

    __setitem__ = _readonly
    __delitem__ = _readonly
    clear = _readonly
    pop = _readonly
    popitem = _readonly
    setdefault = _readonly
    update = _readonly


def waiting_on(phaser: PhaserId, phase: int, **registered: int) -> BlockedStatus:
    """Convenience constructor used pervasively in tests.

    ``waiting_on("p", 1, p=1, q=0)`` builds the status of a task blocked
    on event ``p@1`` while registered with ``p`` at phase 1 and ``q`` at
    phase 0.
    """
    return BlockedStatus(
        waits=frozenset({Event(phaser, phase)}),
        registered=dict(registered),
    )
