"""Graph models of concurrency constraints (Definitions 4.2-4.4).

Three directed graphs can be read out of a resource-dependency state:

* the **General Resource Graph** (GRG, Holt 1972): bipartite over tasks and
  events; ``t -> e`` when task ``t`` waits on event ``e`` and ``e -> t``
  when ``t`` impedes ``e``;
* the **Wait-For Graph** (WFG, Knapp 1987): tasks only; ``t1 -> t2`` when
  ``t1`` waits on an event impeded by ``t2`` — the edge contraction of the
  GRG over events;
* the **State Graph** (SG, Coffman et al. 1971): events only;
  ``e1 -> e2`` when some task impeded *by* ``e1``'s non-arrival ... more
  precisely, when there is a task ``t`` with ``t in I(e1)`` and
  ``e2 in W(t)`` — the edge contraction of the GRG over tasks.

Theorem 4.8 proves the WFG has a cycle iff the SG has one, so either model
may be used for detection; they differ (dramatically, Section 6.3) in size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from repro.core.dependency import DependencySnapshot
from repro.core.events import Event, TaskId

Vertex = Hashable


@dataclass
class DiGraph:
    """A minimal directed graph: adjacency sets over hashable vertices.

    Deliberately tiny — the paper uses JGraphT; everything the checker
    needs is vertex/edge insertion, iteration, and successor lookup.
    """

    adj: Dict[Vertex, Set[Vertex]] = field(default_factory=dict)

    def add_vertex(self, v: Vertex) -> None:
        self.adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        self.adj.setdefault(u, set()).add(v)
        self.adj.setdefault(v, set())

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self.adj.get(u, ())

    def successors(self, v: Vertex) -> Set[Vertex]:
        return self.adj.get(v, set())

    @property
    def vertices(self) -> Iterable[Vertex]:
        return self.adj.keys()

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        for u, targets in self.adj.items():
            for v in targets:
                yield (u, v)

    @property
    def vertex_count(self) -> int:
        return len(self.adj)

    @property
    def edge_count(self) -> int:
        return sum(len(t) for t in self.adj.values())

    def out_degree(self, v: Vertex) -> int:
        return len(self.adj.get(v, ()))

    def in_degree(self, v: Vertex) -> int:
        return sum(1 for t in self.adj.values() if v in t)

    def subgraph_reachable_from(self, source: Vertex) -> "DiGraph":
        """The sub-digraph induced by vertices reachable from ``source``."""
        if source not in self.adj:
            return DiGraph()
        seen: Set[Vertex] = {source}
        stack = [source]
        while stack:
            u = stack.pop()
            for v in self.adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        out = DiGraph()
        for u in seen:
            out.add_vertex(u)
            for v in self.adj[u]:
                if v in seen:
                    out.add_edge(u, v)
        return out

    def is_subgraph_of(self, other: "DiGraph") -> bool:
        """Subgraph relation used by the completeness proof (Lemma 4.14)."""
        for u in self.adj:
            if u not in other.adj:
                return False
            if not self.adj[u] <= other.adj[u]:
                return False
        return True


def build_wfg(snapshot: DependencySnapshot) -> DiGraph:
    """Wait-For Graph (Definition 4.2): ``(t1, t2)`` iff ``t1`` waits on
    some event that ``t2`` impedes.

    Complexity is O(B + E_wfg) where B is the total number of (phaser,
    blocked-task) registrations — the phaser index avoids rescanning all
    tasks per awaited event.
    """
    g = DiGraph()
    index = snapshot.phaser_index()
    for t1, status in snapshot.statuses.items():
        g.add_vertex(t1)
        for event in status.waits:
            for t2, phase in index.get(event.phaser, ()):
                if phase < event.phase:
                    g.add_edge(t1, t2)
    return g


def iter_sg_edges(status, awaited_index) -> Iterator[Tuple[Event, Event]]:
    """One blocked task's SG edge group: ``{impeded e1} x {waited e2}``.

    ``awaited_index`` is :meth:`DependencySnapshot.awaited_index`; the
    candidate events per registration are looked up there instead of
    scanning every awaited event, and the impedes test
    (:meth:`~repro.core.events.BlockedStatus.impedes`) keeps
    Definition 4.1's ``I`` map in one place.  Shared by
    :func:`build_sg` and the adaptive builder's incremental attempt
    (:func:`repro.core.selection._try_build_sg`).
    """
    for phaser in status.registered:
        for e1 in awaited_index.get(phaser, ()):
            if status.impedes(e1):
                for e2 in status.waits:
                    yield e1, e2


def build_sg(snapshot: DependencySnapshot) -> DiGraph:
    """State Graph (Definition 4.3): ``(e1, e2)`` iff some task ``t``
    impedes ``e1`` and waits on ``e2``.

    Vertices are the awaited events.  A blocked task contributes the edges
    ``{impeded e1} x {waited e2}``.
    """
    g = DiGraph()
    awaited = snapshot.awaited_index()
    for events in awaited.values():
        for e in events:
            g.add_vertex(e)
    for status in snapshot.statuses.values():
        for e1, e2 in iter_sg_edges(status, awaited):
            g.add_edge(e1, e2)
    return g


def build_grg(snapshot: DependencySnapshot) -> DiGraph:
    """General Resource Graph (Definition 4.4): the bipartite task/event
    graph that bridges the WFG and the SG in the equivalence proof."""
    g = DiGraph()
    awaited = snapshot.awaited_events
    for t, status in snapshot.statuses.items():
        g.add_vertex(t)
        for e in status.waits:
            g.add_edge(t, e)
        for e in status.impeded_events(awaited):
            g.add_edge(e, t)
    return g


def wfg_from_grg(grg: DiGraph) -> DiGraph:
    """Contract a GRG over events to obtain the WFG (Lemma 4.5).

    Provided for testing the equivalence theorem: a walk ``t1 r t2`` in the
    GRG corresponds to the WFG edge ``(t1, t2)``.
    """
    g = DiGraph()
    for u in grg.vertices:
        if isinstance(u, Event):
            continue
        g.add_vertex(u)
        for mid in grg.successors(u):
            for v in grg.successors(mid):
                if not isinstance(v, Event):
                    g.add_edge(u, v)
    return g


def sg_from_grg(grg: DiGraph) -> DiGraph:
    """Contract a GRG over tasks to obtain the SG (Lemma 4.6)."""
    g = DiGraph()
    for u in grg.vertices:
        if not isinstance(u, Event):
            continue
        g.add_vertex(u)
        for mid in grg.successors(u):
            for v in grg.successors(mid):
                if isinstance(v, Event):
                    g.add_edge(u, v)
    return g
