"""Delta-maintained analysis state: O(change) updates, O(1) no-cycle checks.

The classic :class:`~repro.core.checker.DeadlockChecker` re-derives the
analysis graph from the blocked-status snapshot at every check — each
check is O(registrations) after the awaited-index work, so a
``check_every=1`` replay of an N-task trace is O(N²) overall.
:class:`IncrementalChecker` removes the per-check rebuild: it consumes
the same *deltas* the trace format already expresses (task blocked /
unblocked, statuses restored, site buckets republished) and maintains
the Wait-For Graph edge set in place, answering cycle queries through an
incrementally maintained SCC structure (:class:`~repro.core.scc.DynamicSCC`).

**Delta contract.**  Every state change arrives through exactly the
:class:`~repro.core.checker.DeadlockChecker` mutation surface —
:meth:`set_blocked`, :meth:`clear`, :meth:`restore` — so every existing
producer (runtime observer hooks, replay engines, the distributed
delta-merge view) can feed this checker unchanged.  A blocked status is immutable
while published (the task observer's core insight), therefore one
status contributes a *fixed* WFG edge group computable at publication:

* out-edges ``task -> t2`` for every ``t2`` impeding an event ``task``
  waits on, found through a phase-bucketed registration index;
* in-edges ``t1 -> task`` for every already-blocked ``t1`` waiting on an
  event ``task`` impedes, found through an awaited-events index.

Withdrawal removes the task's vertex and (only) its incident edges —
sound because every WFG edge needs both endpoints blocked, so no other
pair's edge can depend on the withdrawn status.

**Query contract.**  While the maintained WFG is acyclic — the common
case by far — :meth:`check` answers in O(1) with no snapshot, no graph
build and no Tarjan run.  When a cycle exists:

* under the fixed **WFG** model the canonical cycle is extracted
  straight from the maintained component partition
  (:meth:`~repro.core.scc.DynamicSCC.extract_cycle` — a scoped Tarjan
  over the cyclic components only, cached against per-component
  mutation epochs) and the report is assembled from the maintained
  statuses — O(cyclic component), no snapshot, no graph build, with
  bytes identical to the classic path because the extraction rules
  (minimal-vertex SCC choice, canonical BFS, minimal-vertex rotation)
  and the report-assembly code agree field for field;
* under **SG**/**AUTO** selection the checker falls back to the classic
  path (snapshot → :func:`~repro.core.selection.build_graph` →
  canonical extraction), since the chosen model — and hence the
  report's event-cycle content and edge count — depends on the built
  graph, which only the classic path produces.

Cycle *existence* is model-independent either way (Theorem 4.8: the WFG
has a cycle iff the SG has one), so the maintained WFG is a sound and
complete oracle for any configured model, and report *content* is
byte-identical to the from-scratch checker's — differential-tested
pointwise.  A per-epoch cache skips even the fallback when the state
has not changed since the last extraction (a detection monitor polling
a stable deadlock).

The checker inherits the classic one's :class:`~repro.core.dependency.
ResourceDependency` store, so generation stamping, ``is_current``
revalidation and the avoidance restore path all keep their semantics.

**Foreign writes.**  Some producers (the PL interpreter's re-publish
loop, sites sharing one store across checkers) write to the dependency
store directly instead of through the checker surface.  Every query
therefore fingerprints the store (generation counter + blocked count)
against the delta state and, on mismatch, *resynchronises* — a full
O(N) rebuild of indexes and graph, paid only when something bypassed
the delta surface.  The one write the fingerprint cannot see is a
direct ``dependency.restore`` of an already-blocked task (same count,
no new generation); all in-tree restore flows go through
:meth:`restore`, which is delta-aware.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.checker import DeadlockChecker, snapshot_components
from repro.core.dependency import DependencySnapshot, ResourceDependency
from repro.core.events import BlockedStatus, Event, PhaserId, TaskId
from repro.core.report import DeadlockReport
from repro.core.scc import make_dynamic_scc
from repro.core.selection import (
    DEFAULT_THRESHOLD_FACTOR,
    GraphModel,
    select_shard_model,
)
from repro.obs.registry import MetricsRegistry


class IncrementalChecker(DeadlockChecker):
    """A :class:`DeadlockChecker` whose graph state is delta-maintained.

    Drop-in compatible: same constructor, same mutation and query
    surface, same reports.  Differences are operational only —

    * :meth:`check`/:meth:`check_sharded` with no explicit snapshot run
      against the live delta state (O(1) when acyclic) instead of
      snapshotting;
    * :attr:`stats` records the maintained WFG's edge count (model
      ``WFG``) for fast-path checks, since no per-model graph is built
      on that path.

    Passing an explicit ``snapshot`` bypasses the incremental state and
    behaves exactly like the parent class (offline ablations over
    foreign snapshots keep working).
    """

    def __init__(
        self,
        model: GraphModel = GraphModel.AUTO,
        threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
        dependency: Optional[ResourceDependency] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(model, threshold_factor, dependency, metrics=metrics)
        # Incremental-path instruments live next to the stats view (in
        # ``self.metrics``), so a merged stats registry carries them.
        self._m_deltas = self.metrics.counter(
            "repro_incremental_delta_ops_total",
            "Delta operations applied to the maintained graph state.",
            labels=("op",),
        )
        self._m_resyncs = self.metrics.counter(
            "repro_incremental_resyncs_total",
            "Full rebuilds forced by writes that bypassed the delta "
            "surface.",
        )
        self._m_fallbacks = self.metrics.counter(
            "repro_incremental_fallback_checks_total",
            "Cyclic-state checks answered through the classic "
            "snapshot-and-rebuild path (SG/AUTO models).",
        )
        # Volatile: visit counts follow set/dict iteration order, which
        # varies with each process's string-hash seed — work measures,
        # like timings, are excluded from the deterministic snapshot.
        scc_work = self.metrics.counter(
            "repro_scc_work_total",
            "DynamicSCC maintenance work, mirrored from the structure's "
            "own counters at each check.",
            labels=("kind",), volatile=True,
        )
        self._m_scc_extractions = scc_work.labels(kind="extractions")
        self._m_scc_pk_visits = scc_work.labels(kind="pk_visits")
        self._m_scc_resolves = scc_work.labels(kind="resolves")
        # One lock orders all delta applications and live-state queries;
        # re-entrant because the avoidance path mutates while holding it.
        self._delta_lock = threading.RLock()
        # The compiled kernel when built (see repro.core._native), the
        # pure-Python structure otherwise — interchangeable by contract.
        self._scc = make_dynamic_scc()
        self._statuses: Dict[TaskId, BlockedStatus] = {}
        # phaser -> local phase -> tasks registered there (blocked only).
        self._phases: Dict[PhaserId, Dict[int, Set[TaskId]]] = {}
        # phaser -> awaited event -> blocked tasks waiting on it.
        self._awaited: Dict[PhaserId, Dict[Event, Set[TaskId]]] = {}
        self._cached_epoch = -1
        self._cached_report: Optional[DeadlockReport] = None
        # Fingerprint of the store state the delta state mirrors: the
        # highest generation this checker stamped plus its own status
        # count.  A store whose (generation, count) disagrees was
        # written behind our back — resync before answering.
        self._my_generation = self.dependency.generation
        #: Optional override for the fallback snapshot.  The classic
        #: checker derives report task order from snapshot insertion
        #: order; a consumer mirroring a *foreign* ordering (the replay
        #: engine's site-bucket merge) installs a factory here so the
        #: rare cyclic-path rebuild sees byte-identical input.  Must
        #: return statuses equal (as a mapping) to the delta state.
        self.snapshot_source: Optional[Callable[[], "DependencySnapshot"]] = None

    def _fallback_snapshot(self):
        if self.snapshot_source is not None:
            return self.snapshot_source()
        return self.dependency.snapshot()

    def _maybe_resync(self) -> None:
        """Rebuild the delta state if the store was written directly.

        Caller holds ``_delta_lock``.  Cheap (two counter reads) when
        nothing bypassed the delta surface — the overwhelmingly common
        case; O(statuses) when something did.
        """
        if (
            self.dependency.generation == self._my_generation
            and self.dependency.blocked_count() == len(self._statuses)
        ):
            return
        self._m_resyncs.inc()
        # A resync is a bulk application by nature — one batched
        # maintenance pass, exactly like an apply_batch of the whole
        # snapshot (the live monitor's recovery path rides this too).
        self._scc.begin_batch()
        try:
            for task in list(self._statuses):
                self._retract(task)
            snapshot = self.dependency.snapshot()
            for task, status in snapshot.statuses.items():
                self._insert(task, status)
        finally:
            self._scc.end_batch()
        self._my_generation = self.dependency.generation

    # ------------------------------------------------------------------
    # delta application (the mutation surface of the delta contract)
    # ------------------------------------------------------------------
    def set_blocked(self, task: TaskId, status: BlockedStatus) -> BlockedStatus:
        with self._delta_lock:
            self._maybe_resync()
            self._m_deltas.inc(op="set_blocked")
            stamped = super().set_blocked(task, status)
            if task in self._statuses:
                self._retract(task)
            self._insert(task, stamped)
            self._my_generation = stamped.generation
            return stamped

    def clear(self, task: TaskId) -> None:
        with self._delta_lock:
            self._maybe_resync()
            self._m_deltas.inc(op="clear")
            super().clear(task)
            if task in self._statuses:
                self._retract(task)

    def restore(self, task: TaskId, status: BlockedStatus) -> None:
        with self._delta_lock:
            self._maybe_resync()
            self._m_deltas.inc(op="restore")
            super().restore(task, status)
            if task in self._statuses:
                self._retract(task)
            self._insert(task, status)

    def apply_batch(self, ops) -> None:
        """Apply an ordered delta sequence with one maintenance pass.

        ``ops`` is a sequence of ``(op, task, status)`` tuples, ``op``
        one of ``"set"``/``"clear"``/``"restore"`` (``status`` is
        ignored for ``"clear"``).  Equivalent — same final state, same
        subsequent verdicts and reports, same
        ``repro_incremental_delta_ops_total`` totals — to calling
        :meth:`set_blocked`/:meth:`clear`/:meth:`restore` once per op,
        but the whole batch pays one lock acquisition, one foreign-write
        resync check, one metrics flush, and (via
        :meth:`~repro.core.scc.DynamicSCC.begin_batch`) one scoped
        SCC resolution per affected component instead of per-edge
        Pearce-Kelly passes.
        """
        if not ops:
            return
        tallies = {"set_blocked": 0, "clear": 0, "restore": 0}
        with self._delta_lock:
            self._maybe_resync()
            scc = self._scc
            statuses = self._statuses
            scc.begin_batch()
            try:
                for op, task, status in ops:
                    if op == "set":
                        tallies["set_blocked"] += 1
                        stamped = super().set_blocked(task, status)
                        if task in statuses:
                            self._retract(task)
                        self._insert(task, stamped)
                        self._my_generation = stamped.generation
                    elif op == "clear":
                        tallies["clear"] += 1
                        super().clear(task)
                        if task in statuses:
                            self._retract(task)
                    elif op == "restore":
                        tallies["restore"] += 1
                        super().restore(task, status)
                        if task in statuses:
                            self._retract(task)
                        self._insert(task, status)
                    else:
                        raise ValueError(f"unknown batch op {op!r}")
            finally:
                scc.end_batch()
                # Flushed even on a failing op: the per-op path counts
                # before applying, so a partial batch accounts the same.
                for name, count in tallies.items():
                    if count:
                        self._m_deltas.inc(count, op=name)

    def _insert(self, task: TaskId, status: BlockedStatus) -> None:
        """Fold one newly published status into graph and indexes."""
        self._statuses[task] = status
        scc = self._scc
        scc.add_vertex(task)
        for phaser, phase in status.registered.items():
            self._phases.setdefault(phaser, {}).setdefault(phase, set()).add(task)
        for event in status.waits:
            self._awaited.setdefault(event.phaser, {}).setdefault(
                event, set()
            ).add(task)
        # Out-edges: who impedes the events this task waits on.
        for event in status.waits:
            for phase, holders in self._phases.get(event.phaser, {}).items():
                if phase < event.phase:
                    for impeder in holders:
                        scc.add_edge(task, impeder)
        # In-edges: who already waits on an event this task impedes.
        for phaser, phase in status.registered.items():
            for event, waiters in self._awaited.get(phaser, {}).items():
                if phase < event.phase:
                    for waiter in waiters:
                        scc.add_edge(waiter, task)

    def _retract(self, task: TaskId) -> None:
        """Withdraw a status: drop the vertex and its incident edges."""
        status = self._statuses.pop(task)
        for phaser, phase in status.registered.items():
            buckets = self._phases[phaser]
            buckets[phase].discard(task)
            if not buckets[phase]:
                del buckets[phase]
            if not buckets:
                del self._phases[phaser]
        for event in status.waits:
            waiters = self._awaited[event.phaser]
            waiters[event].discard(task)
            if not waiters[event]:
                del waiters[event]
            if not waiters:
                del self._awaited[event.phaser]
        self._scc.remove_vertex(task)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def check(
        self,
        snapshot=None,
        revalidate: bool = False,
        model: Optional[GraphModel] = None,
    ) -> Optional[DeadlockReport]:
        if snapshot is not None or model is not None:
            return super().check(
                snapshot=snapshot, revalidate=revalidate, model=model
            )
        t0 = time.perf_counter()
        with self._delta_lock:
            self._maybe_resync()
            if not self._scc.has_cycle():
                self._record(t0, None, GraphModel.WFG, self._scc.edge_count)
                return None
            epoch = self._scc.mutation_epoch
            if epoch == self._cached_epoch:
                report = self._cached_report
                self._record(t0, report, GraphModel.WFG, self._scc.edge_count)
                return report
            if self.model is GraphModel.WFG:
                # Incremental extraction: the maintained WFG *is* the
                # analysis graph under this model, so the canonical
                # cycle comes straight from the component partition —
                # no snapshot, no rebuild.
                report = self._extract_wfg_report(t0, revalidate)
            else:
                self._m_fallbacks.inc()
                snapshot = self._fallback_snapshot()
                report = super().check(snapshot=snapshot, revalidate=revalidate)
            self._cached_epoch = epoch
            self._cached_report = report
            return report

    def _extract_wfg_report(
        self, t0: float, revalidate: bool
    ) -> Optional[DeadlockReport]:
        """Assemble the WFG-model report from the maintained state.

        The cycle comes from the (epoch-cached) partition extraction;
        assembly and revalidation run the classic checker's own code
        (:meth:`_wfg_report`, :meth:`_still_current`) over the
        maintained statuses, so the two paths cannot drift.  Caller
        holds ``_delta_lock`` and has established that a cycle exists.
        """
        cycle = self._scc.extract_cycle()
        report: Optional[DeadlockReport] = self._wfg_report(
            self._statuses, cycle, self._scc.edge_count, avoided=False
        )
        if revalidate and not self._still_current(
            DependencySnapshot(statuses=self._statuses), report
        ):
            report = None
        self._record(t0, report, GraphModel.WFG, self._scc.edge_count)
        return report

    def check_sharded(
        self,
        snapshot=None,
        revalidate: bool = False,
    ) -> List[DeadlockReport]:
        if snapshot is not None:
            return super().check_sharded(snapshot=snapshot, revalidate=revalidate)
        t0 = time.perf_counter()
        with self._delta_lock:
            self._maybe_resync()
            if not self._scc.has_cycle():
                self._record(t0, None, GraphModel.WFG, self._scc.edge_count)
                return []
            # Cyclic: shard like the parent (the snapshot only supplies
            # connectivity and ordering), but answer WFG-model shards
            # straight from the maintained partition — no per-shard
            # graph rebuild.  WFG edges are pair-local and require a
            # shared phaser, so the maintained graph restricted to a
            # shard equals the shard's rebuilt WFG, and every cyclic
            # component lies wholly inside one shard.
            snapshot = self._fallback_snapshot()
            reports: List[DeadlockReport] = []
            for shard in snapshot_components(snapshot):
                model = select_shard_model(len(shard), self.model)
                if model is GraphModel.WFG:
                    report = self._check_wfg_shard(shard, revalidate)
                else:
                    # SG/AUTO shards still need the built graph (the
                    # chosen model depends on it) — classic per-shard
                    # path, identical to the parent's.
                    self._m_fallbacks.inc()
                    report = super().check(
                        snapshot=shard, revalidate=revalidate, model=model
                    )
                if report is not None:
                    reports.append(report)
            return reports

    def _check_wfg_shard(
        self, shard: DependencySnapshot, revalidate: bool
    ) -> Optional[DeadlockReport]:
        """One WFG-model shard answered from the maintained partition.

        Mirrors :meth:`_extract_wfg_report` scoped to the shard's tasks:
        scoped canonical extraction
        (:meth:`~repro.core.scc.DynamicSCC.extract_cycle_within`), the
        induced edge count for stats parity with a rebuild, and the
        classic assembly/revalidation code over the shard's statuses.
        Caller holds ``_delta_lock``.
        """
        t0 = time.perf_counter()
        tasks = set(shard.statuses)
        edge_count = self._scc.edges_within(tasks)
        cycle = self._scc.extract_cycle_within(tasks)
        report: Optional[DeadlockReport] = None
        if cycle is not None:
            report = self._wfg_report(
                shard.statuses, cycle, edge_count, avoided=False
            )
            if revalidate and not self._still_current(shard, report):
                report = None
        self._record(t0, report, GraphModel.WFG, edge_count)
        return report

    def check_before_block(
        self, task: TaskId, status: BlockedStatus
    ) -> Tuple[Optional[DeadlockReport], Optional[BlockedStatus]]:
        with self._avoidance_lock, self._delta_lock:
            t0 = time.perf_counter()
            prior = self.dependency.get(task)
            stamped = self.set_blocked(task, status)  # resyncs + applies
            if not self._scc.has_cycle():
                # Fast accept: publishing this status created no cycle,
                # so blocking cannot complete a deadlock.
                self._record(t0, None, GraphModel.WFG, self._scc.edge_count)
                return None, stamped
            # Slow path: the classic refusal, shared with the parent —
            # restore/clear route through the delta-aware overrides.
            return self._finish_avoidance(t0, task, status, prior, stamped)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def sync_metrics(self) -> None:
        """Mirror :class:`DynamicSCC`'s plain work counters into obs.

        Runs on every ``_record`` (so live exporters are at most one
        check stale) and is also the hook a replay engine calls before
        merging worker registries, catching deltas applied after the
        final check.
        """
        scc = self._scc
        self._m_scc_extractions.set_total(scc.extractions)
        self._m_scc_pk_visits.set_total(scc.pk_visits)
        self._m_scc_resolves.set_total(scc.resolves)

    def _record(self, t0, report, model_used, edge_count,
                sg_aborted: bool = False) -> None:
        self.sync_metrics()
        super()._record(t0, report, model_used, edge_count,
                        sg_aborted=sg_aborted)

    # ------------------------------------------------------------------
    # introspection (tests, benchmarks)
    # ------------------------------------------------------------------
    @property
    def wfg_edge_count(self) -> int:
        """Edges of the maintained Wait-For Graph."""
        with self._delta_lock:
            return self._scc.edge_count

    @property
    def mutation_epoch(self) -> int:
        """Global delta counter (see :attr:`DynamicSCC.mutation_epoch`)."""
        with self._delta_lock:
            return self._scc.mutation_epoch

    @property
    def incremental_extractions(self) -> int:
        """Scoped cycle extractions computed (WFG model; cache misses)."""
        with self._delta_lock:
            return self._scc.extractions

    def maintained_graph(self):
        """Materialise the maintained WFG (differential tests)."""
        with self._delta_lock:
            return self._scc.to_digraph()
