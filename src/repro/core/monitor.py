"""Periodic detection monitor (Section 5: detection mode).

In detection mode "verification is performed periodically and can only
report already existing deadlocks, with the benefit of a lower performance
overhead" — the paper runs JArmus every 100 ms locally and Armus-X10 every
200 ms distributed, with a dedicated verification task so that overhead
does not grow with the number of application tasks (Section 6.1).

:class:`DetectionMonitor` is that dedicated task: a daemon thread that
snapshots the checker's resource-dependency on a fixed interval, runs cycle
detection with revalidation, and invokes a callback with each confirmed
:class:`~repro.core.report.DeadlockReport`.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.core.checker import DeadlockChecker
from repro.core.report import DeadlockReport

ReportCallback = Callable[[DeadlockReport], None]

#: Default detection period, matching the paper's local configuration.
DEFAULT_INTERVAL_S = 0.1


class DetectionMonitor:
    """Background periodic deadlock detector.

    Parameters
    ----------
    checker:
        The checker whose resource-dependency is monitored.
    interval_s:
        Period between checks (100 ms in the paper's local runs).
    on_deadlock:
        Callback invoked (from the monitor thread) per confirmed report.
        The runtime installs a callback that cancels the deadlocked tasks.
    once:
        When True, stop monitoring after the first confirmed deadlock —
        a deadlock does not dissolve by itself, so repeated reports of the
        same cycle are noise unless the callback resolves it.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        enabled, the monitor counts its polls and confirmed reports
        (both volatile — poll counts are wall-clock artefacts).
    """

    def __init__(
        self,
        checker: DeadlockChecker,
        interval_s: float = DEFAULT_INTERVAL_S,
        on_deadlock: Optional[ReportCallback] = None,
        once: bool = False,
        metrics=None,
    ) -> None:
        self.checker = checker
        self.interval_s = interval_s
        self.on_deadlock = on_deadlock
        self.once = once
        self.reports: List[DeadlockReport] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        if metrics is None:
            from repro.obs.registry import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        self._m_polls = metrics.counter(
            "repro_monitor_polls_total",
            "Detection passes run by the periodic monitor.",
            volatile=True,
        )
        self._m_reports = metrics.counter(
            "repro_monitor_reports_total",
            "Confirmed deadlock reports filed by the monitor.",
            volatile=True,
        )

    # ------------------------------------------------------------------
    def start(self) -> "DetectionMonitor":
        """Start the monitor thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="armus-detector", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the monitor and join its thread."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)

    def __enter__(self) -> "DetectionMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def poll_once(self) -> Optional[DeadlockReport]:
        """Run a single detection pass synchronously (used by tests and by
        callers that schedule their own periodic execution)."""
        self._m_polls.inc()
        report = self.checker.check(revalidate=True)
        if report is not None:
            self._m_reports.inc()
            self.reports.append(report)
            if self.on_deadlock is not None:
                self.on_deadlock(report)
        return report

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            report = self.poll_once()
            if report is not None and self.once:
                return
