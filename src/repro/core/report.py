"""Deadlock reports and exceptions raised by the two verification modes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.events import Event, TaskId
from repro.core.selection import GraphModel


@dataclass(frozen=True)
class DeadlockReport:
    """Evidence of a (potential or avoided) deadlock.

    Attributes
    ----------
    tasks:
        The deadlocked task set (vertices of the WFG cycle, or the tasks
        contributing the SG cycle's edges).
    events:
        The synchronisation events involved (SG cycle vertices, or the
        events the ``tasks`` wait on).
    cycle:
        The concrete cycle found, as a closed vertex walk in whichever
        graph model was analysed.
    model_used:
        The graph model the cycle was found in.
    edge_count:
        Size of the analysed graph, for diagnostics and Table 3 accounting.
    avoided:
        True when the report was produced by avoidance mode (the deadlock
        never materialised).
    """

    tasks: Tuple[TaskId, ...]
    events: Tuple[Event, ...]
    cycle: Tuple[object, ...]
    model_used: GraphModel
    edge_count: int
    avoided: bool = False

    def describe(self) -> str:
        """Human-readable multi-line description (the tool's user report)."""
        kind = "avoided" if self.avoided else "detected"
        lines = [
            f"barrier deadlock {kind} ({self.model_used.value.upper()} cycle, "
            f"{len(self.tasks)} task(s), {self.edge_count} edge(s))",
            "  tasks: " + ", ".join(str(t) for t in self.tasks),
            "  events: " + ", ".join(str(e) for e in self.events),
            "  cycle: " + " -> ".join(str(v) for v in self.cycle),
        ]
        return "\n".join(lines)


class DeadlockError(RuntimeError):
    """Base class for deadlock verification errors."""

    def __init__(self, report: DeadlockReport, message: Optional[str] = None):
        super().__init__(message or report.describe())
        self.report = report


class DeadlockDetectedError(DeadlockError):
    """Raised into blocked tasks cancelled by the detection monitor."""


class DeadlockAvoidedError(DeadlockError):
    """Raised by avoidance mode instead of entering a deadlocked wait.

    The paper: "Armus checks for deadlocks before the task blocks and
    interrupts the blocking operation with an exception if the deadlock is
    found. The programmer can treat the exceptional situation to develop
    applications resilient to deadlocks."
    """
