"""Deadlock reports and exceptions raised by the two verification modes."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.events import Event, TaskId
from repro.core.selection import GraphModel


@dataclass(frozen=True)
class RecordOrigin:
    """Where one analysed status came from, in trace-record terms.

    ``ordinal`` is the trace record's own sequence number — the offset a
    reader can seek to — which makes origins deterministic across
    processes and hash seeds (unlike wall clock).  Distributed statuses
    additionally carry the publishing ``site`` and, under the delta
    protocol, the ``stream`` incarnation token and per-stream ``seq``.
    """

    ordinal: int
    kind: str = "block"
    site: Optional[str] = None
    stream: Optional[str] = None
    seq: Optional[int] = None

    def describe(self) -> str:
        """One-line rendering (``block @record 9`` / publish variants)."""
        text = f"{self.kind} @record {self.ordinal}"
        details = []
        if self.site is not None:
            details.append(f"site {self.site}")
        if self.stream is not None:
            details.append(f"stream {self.stream}")
        if self.seq is not None:
            details.append(f"seq {self.seq}")
        if details:
            text += " (" + ", ".join(details) + ")"
        return text


@dataclass(frozen=True)
class EdgeProvenance:
    """One cycle edge mapped back to its originating records.

    ``source``/``target`` are the cycle's own vertices (tasks in a WFG
    cycle, events in an SG cycle); ``source_task``/``target_task`` name
    the task each endpoint is attributed to (the vertex itself for WFG,
    the minimal waiting task for an SG event vertex), and the two
    origins point at the records that published those tasks' statuses
    into the analysed view.
    """

    source: str
    target: str
    source_task: str
    target_task: str
    source_origin: RecordOrigin
    target_origin: RecordOrigin


@dataclass(frozen=True)
class DeadlockReport:
    """Evidence of a (potential or avoided) deadlock.

    Attributes
    ----------
    tasks:
        The deadlocked task set (vertices of the WFG cycle, or the tasks
        contributing the SG cycle's edges).
    events:
        The synchronisation events involved (SG cycle vertices, or the
        events the ``tasks`` wait on).
    cycle:
        The concrete cycle found, as a closed vertex walk in whichever
        graph model was analysed.
    model_used:
        The graph model the cycle was found in.
    edge_count:
        Size of the analysed graph, for diagnostics and Table 3 accounting.
    avoided:
        True when the report was produced by avoidance mode (the deadlock
        never materialised).
    provenance:
        Optional per-edge origin mapping (replay engines attach it; live
        checks leave it ``None``).  One entry per consecutive pair of
        ``cycle``, in cycle order.
    detection_lag:
        Optional record-ordinal distance from the record that closed the
        cycle to the check that reported it (0 = reported at the closing
        record itself).
    detected_at:
        Optional ordinal of the last record consumed before the
        reporting check ran (``detected_at - detection_lag`` is the
        closing record's ordinal).
    """

    tasks: Tuple[TaskId, ...]
    events: Tuple[Event, ...]
    cycle: Tuple[object, ...]
    model_used: GraphModel
    edge_count: int
    avoided: bool = False
    provenance: Optional[Tuple[EdgeProvenance, ...]] = None
    detection_lag: Optional[int] = None
    detected_at: Optional[int] = None

    def without_provenance(self) -> "DeadlockReport":
        """This report with the replay-attached provenance fields
        cleared — the live-run form, for comparisons between live and
        replayed analyses of the same execution."""
        if (
            self.provenance is None
            and self.detection_lag is None
            and self.detected_at is None
        ):
            return self
        return replace(
            self, provenance=None, detection_lag=None, detected_at=None
        )

    def describe(self) -> str:
        """Human-readable multi-line description (the tool's user report)."""
        kind = "avoided" if self.avoided else "detected"
        lines = [
            f"barrier deadlock {kind} ({self.model_used.value.upper()} cycle, "
            f"{len(self.tasks)} task(s), {self.edge_count} edge(s))",
            "  tasks: " + ", ".join(str(t) for t in self.tasks),
            "  events: " + ", ".join(str(e) for e in self.events),
            "  cycle: " + " -> ".join(str(v) for v in self.cycle),
        ]
        return "\n".join(lines)


class DeadlockError(RuntimeError):
    """Base class for deadlock verification errors."""

    def __init__(self, report: DeadlockReport, message: Optional[str] = None):
        super().__init__(message or report.describe())
        self.report = report


class DeadlockDetectedError(DeadlockError):
    """Raised into blocked tasks cancelled by the detection monitor."""


class DeadlockAvoidedError(DeadlockError):
    """Raised by avoidance mode instead of entering a deadlocked wait.

    The paper: "Armus checks for deadlocks before the task blocks and
    interrupts the blocking operation with an exception if the deadlock is
    found. The programmer can treat the exceptional situation to develop
    applications resilient to deadlocks."
    """
