"""Incrementally maintained cycle/SCC structure for delta-fed graphs.

The from-scratch checker answers every query by rebuilding the analysis
graph and running Tarjan — O(edges) per check.  :class:`DynamicSCC`
answers the same "is there a cycle?" question against a *mutating* edge
set, paying only for what changed:

* **Insertions** maintain a Pearce-Kelly pseudo-topological order
  [Pearce & Kelly 2006]: an edge ``u -> v`` that respects the current
  order (``ord(u) < ord(v)``) is O(1); an order-violating edge triggers
  a search bounded to the *affected region* — the vertices whose order
  lies between ``v`` and ``u`` — which either finds a path ``v ->* u``
  (a cycle: record it, stop ordering that component) or reorders just
  the region.  Sound because a valid topological order certifies
  acyclicity, and a cycle through the new edge needs a ``v ->* u``
  path, which the bounded search cannot miss.
* **Deletions** never create cycles and never invalidate a topological
  order, so deleting from an *acyclic* component is O(degree).  Only a
  deletion touching a component whose verdict is (or may be) *cyclic*
  schedules work: the component is marked **dirty** and lazily
  recomputed — scoped Tarjan over that component's members alone —
  at the next query.
* **Weak components** are tracked by a union-find over component
  *labels* (merge by relabelling the smaller half — amortised
  O(log n) per vertex over any union sequence) with a per-label
  mutation **epoch**.  Union-find cannot split, so after deletions a
  label's member set over-approximates the true weak component; that is
  sound (it only widens the scope of a dirty recompute, which
  re-partitions the members and prunes the over-approximation).
  Labels are fresh integers, never vertex names, so a vertex that
  leaves and later re-enters the graph — the normal life of a task
  that unblocks and blocks again — can never collide with stale
  bookkeeping.  Epochs let callers cache per-component results ("this
  component has not changed since I last extracted a cycle").

Beyond existence, :meth:`DynamicSCC.extract_cycle` extracts the
*canonical* witness cycle from the maintained partition: only the
cyclic components' members are touched (a scoped Tarjan plus the
canonical BFS of :mod:`repro.core.cycles`), and the per-component
extraction is cached against the component's mutation epoch — a
persisting deadlock polled while *other* components churn re-extracts
nothing.  The result is exactly
``find_cycle(self.to_digraph())`` — same SCC choice (globally minimal
vertex), same BFS order, same rotation — at O(cyclic component) instead
of O(graph).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.cycles import (
    _cycle_containing,
    _vertex_key,
    canonical_cyclic_scc,
    canonical_rotation,
    strongly_connected_components,
)
from repro.core.graphs import DiGraph

Vertex = Hashable


class _ExtractionBase:
    """Witness-cycle extraction shared across SCC implementations.

    Everything a deadlock *report* is built from lives here, in plain
    Python, implemented against a tiny adapter surface (``has_cycle``,
    ``has_edge``, ``_cyclic_labels``, ``_label_members``,
    ``_label_epoch``, ``_out_of``, ``_vertices``).  The pure-Python
    :class:`DynamicSCC` and the compiled-kernel wrapper in
    :mod:`repro.core._native` both extract through this exact code, so
    their cycles — and therefore their reports — are byte-identical by
    construction: the kernel only ever answers structural queries.

    Subclasses provide ``_cycle_cache`` (dict) and ``extractions``
    (int) attributes for the per-component epoch cache.
    """

    def to_digraph(self) -> DiGraph:
        """Materialise the current edge set (tests and fallbacks)."""
        g = DiGraph()
        for v in self._vertices():
            g.add_vertex(v)
            for w in self._out_of(v):
                g.add_edge(v, w)
        return g

    def cyclic_components(self) -> List[frozenset]:
        """Member sets of every cyclic component (dirty ones resolved)."""
        self.has_cycle()
        return [
            frozenset(self._label_members(label))
            for label in self._cyclic_labels()
        ]

    def extract_cycle(self) -> Optional[List[Vertex]]:
        """The canonical witness cycle, from the maintained partition.

        Equals ``find_cycle(self.to_digraph())`` — the cyclic SCC
        holding the globally minimal vertex, grown by canonical BFS,
        rotated to its minimal vertex — but touches only the members of
        components whose verdict is cyclic, and caches each component's
        extraction against its mutation epoch: re-polling a stable
        deadlock while unrelated components mutate re-extracts nothing.
        """
        if not self.has_cycle():
            return None
        labels = self._cyclic_labels()
        best: Optional[Tuple[str, Tuple[Vertex, ...]]] = None
        for label in labels:
            cycle = self._component_cycle(label)
            key = _vertex_key(cycle[0])
            if best is None or key < best[0]:
                best = (key, cycle)
        # Prune cache entries of labels that stopped being cyclic (or
        # died): the cache only ever holds currently-cyclic components.
        if len(self._cycle_cache) > len(labels):
            keep = set(labels)
            self._cycle_cache = {
                label: entry
                for label, entry in self._cycle_cache.items()
                if label in keep
            }
        assert best is not None
        return list(best[1])

    def extract_cycle_within(self, vertices) -> Optional[List[Vertex]]:
        """The canonical witness cycle among ``vertices`` only.

        The per-shard twin of :meth:`extract_cycle`: considers only
        cyclic components wholly contained in ``vertices`` (components
        are weakly connected, so a shard built from wait-for
        connectivity either contains a component or misses it entirely)
        and picks the one holding the minimal vertex — the same
        canonical choice ``find_cycle`` makes over the shard's rebuilt
        subgraph.  Returns ``None`` when no contained component is
        cyclic.  The shared epoch cache makes re-polling a stable shard
        free; entries are not pruned here (the global
        :meth:`extract_cycle` owns cache hygiene).
        """
        if not self.has_cycle():
            return None
        vset = set(vertices)
        best: Optional[Tuple[str, Tuple[Vertex, ...]]] = None
        for label in self._cyclic_labels():
            if not set(self._label_members(label)) <= vset:
                continue
            cycle = self._component_cycle(label)
            key = _vertex_key(cycle[0])
            if best is None or key < best[0]:
                best = (key, cycle)
        return None if best is None else list(best[1])

    def edges_within(self, vertices) -> int:
        """Edge count of the subgraph induced by ``vertices``.

        What a per-shard rebuild would report as its graph size — used
        so maintained-graph sharded checks record the same ``edge_count``
        accounting as snapshot rebuilds.
        """
        vset = set(vertices)
        return sum(
            1
            for u in vset
            for x in self._out_of(u)
            if x in vset
        )

    def _component_cycle(self, label: int) -> Tuple[Vertex, ...]:
        """Canonical cycle of one cyclic component, epoch-cached.

        Every edge stays inside its component (unions happen on every
        insertion), so the scoped subgraph contains every SCC of the
        component's members and the per-component minimal-vertex choice
        composes into the global one.
        """
        epoch = self._label_epoch(label)
        cached = self._cycle_cache.get(label)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        self.extractions += 1
        sub = DiGraph()
        for w in self._label_members(label):
            sub.add_vertex(w)
            for x in self._out_of(w):
                sub.add_edge(w, x)
        chosen = canonical_cyclic_scc(sub)
        assert chosen is not None, "cyclic label without a cyclic SCC"
        entry, scc = chosen
        cycle = tuple(canonical_rotation(_cycle_containing(sub, scc, entry)))
        self._cycle_cache[label] = (epoch, cycle)
        return cycle

    def check_valid(self) -> None:
        """Invariant check used by the property tests: the maintained
        verdict must agree with a from-scratch Tarjan run."""
        actual = False
        for component in strongly_connected_components(self.to_digraph()):
            v = component[0]
            if len(component) > 1 or self.has_edge(v, v):
                actual = True
                break
        assert self.has_cycle() == actual, "DynamicSCC verdict diverged"


class DynamicSCC(_ExtractionBase):
    """A mutable digraph with an incrementally maintained cycle verdict.

    All operations are idempotent where that is meaningful (re-adding an
    existing edge or vertex is a no-op) and the caller is expected to
    hold whatever lock protects the surrounding state — the structure
    itself is not thread-safe.
    """

    def __init__(self) -> None:
        self._out: Dict[Vertex, Set[Vertex]] = {}
        self._in: Dict[Vertex, Set[Vertex]] = {}
        # Pearce-Kelly order: unique ints, a valid topological order
        # within every acyclic component (garbage within cyclic ones).
        self._ord: Dict[Vertex, int] = {}
        self._next_ord = 0
        # Weak-component tracking: live vertex -> label, label -> members.
        self._label: Dict[Vertex, int] = {}
        self._members: Dict[int, Set[Vertex]] = {}
        self._next_label = 0
        self._cyclic: Set[int] = set()  # labels with a known cycle
        self._dirty: Set[int] = set()  # labels needing scoped recompute
        self._epoch: Dict[int, int] = {}  # label -> last-mutation epoch
        self._mutations = 0
        self._edge_count = 0
        # Per-component extraction cache: label -> (epoch, cycle).
        self._cycle_cache: Dict[int, Tuple[int, Tuple[Vertex, ...]]] = {}
        #: Scoped extractions actually computed (cache misses) — lets
        #: tests assert the epoch cache is doing its job.
        self.extractions = 0
        #: Vertices visited by Pearce-Kelly discovery searches (forward
        #: plus backward frontiers) — the maintenance work an insertion
        #: sequence actually paid, mirrored into ``repro.obs`` counters.
        self.pk_visits = 0
        #: Scoped recomputes run for dirty components (deletion cost).
        self.resolves = 0
        # Batch mode: while > 0, order-violating insertions defer
        # Pearce-Kelly maintenance (see :meth:`begin_batch`).
        self._batch_depth = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def edge_count(self) -> int:
        return self._edge_count

    @property
    def vertex_count(self) -> int:
        return len(self._out)

    @property
    def mutation_epoch(self) -> int:
        """Global mutation counter (bumped by every state change)."""
        return self._mutations

    def __contains__(self, v: Vertex) -> bool:
        return v in self._out

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._out.get(u, ())

    def epoch_of(self, v: Vertex) -> int:
        """Epoch of the last mutation touching ``v``'s component."""
        return self._epoch[self._label[v]]

    def component_of(self, v: Vertex) -> frozenset:
        """The (possibly over-approximated) weak component holding ``v``."""
        return frozenset(self._members[self._label[v]])

    # -- adapter surface for the shared extraction code ----------------
    def _vertices(self):
        return self._out

    def _out_of(self, v: Vertex):
        return self._out.get(v, ())

    def _cyclic_labels(self):
        return self._cyclic

    def _label_members(self, label: int):
        return self._members[label]

    def _label_epoch(self, label: int) -> int:
        return self._epoch[label]

    # ------------------------------------------------------------------
    # component labels (union by relabelling the smaller half)
    # ------------------------------------------------------------------
    def _union(self, la: int, lb: int) -> int:
        """Merge labels ``la`` and ``lb``; the larger member set keeps
        its label, flags and epochs carry to the survivor."""
        if la == lb:
            return la
        if len(self._members[la]) < len(self._members[lb]):
            la, lb = lb, la
        moved = self._members.pop(lb)
        for w in moved:
            self._label[w] = la
        self._members[la].update(moved)
        if lb in self._cyclic:
            self._cyclic.discard(lb)
            self._cyclic.add(la)
        if lb in self._dirty:
            self._dirty.discard(lb)
            self._dirty.add(la)
        self._epoch[la] = max(self._epoch[la], self._epoch.pop(lb))
        return la

    def _fresh_label(self, v: Vertex) -> int:
        label = self._next_label
        self._next_label += 1
        self._label[v] = label
        self._members[label] = {v}
        self._epoch[label] = self._mutations
        return label

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        if v in self._out:
            return
        self._mutations += 1
        self._out[v] = set()
        self._in[v] = set()
        self._ord[v] = self._next_ord
        self._next_ord += 1
        self._fresh_label(v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._out[u]:
            return
        self._mutations += 1
        self._out[u].add(v)
        self._in[v].add(u)
        self._edge_count += 1
        label = self._union(self._label[u], self._label[v])
        self._epoch[label] = self._mutations
        if label in self._cyclic or label in self._dirty:
            # Known cyclic stays cyclic; unknown stays unknown — the
            # next dirty recompute sees this edge anyway.
            return
        if u == v:
            self._cyclic.add(label)
            return
        lb, ub = self._ord[v], self._ord[u]
        if ub < lb:
            return  # order-respecting edge: provably no new cycle
        if self._batch_depth:
            # Deferred maintenance: inside a batch an order-violating
            # edge only marks its component unknown.  Sound because
            # unions are still eager — any cycle through this edge lies
            # wholly inside this (now dirty) component — and the next
            # query recomputes dirty components with one scoped Tarjan
            # each, instead of one Pearce-Kelly pass per edge.
            self._dirty.add(label)
            return
        self._pk_insert(u, v, lb, ub, label)

    def _pk_insert(self, u: Vertex, v: Vertex, lb: int, ub: int, label: int) -> None:
        """Pearce-Kelly discovery + reorder for an order-violating edge."""
        # Forward from v, bounded to ord < ord(u); reaching u is a cycle.
        fwd: List[Vertex] = []
        stack = [v]
        seen = {v}
        while stack:
            w = stack.pop()
            fwd.append(w)
            for x in self._out[w]:
                if x == u:
                    self._cyclic.add(label)
                    self.pk_visits += len(fwd)
                    return
                if x not in seen and self._ord[x] < ub:
                    seen.add(x)
                    stack.append(x)
        # Backward from u, bounded to ord > ord(v).  Disjoint from fwd:
        # an overlap would be a v ->* u path, caught above.
        bwd: List[Vertex] = []
        stack = [u]
        seen_b = {u}
        while stack:
            w = stack.pop()
            bwd.append(w)
            for x in self._in[w]:
                if x not in seen_b and self._ord[x] > lb:
                    seen_b.add(x)
                    stack.append(x)
        # Reorder the affected region: everything reaching u first, then
        # everything reachable from v, reusing the same order slots.
        region = sorted(bwd, key=self._ord.__getitem__)
        region += sorted(fwd, key=self._ord.__getitem__)
        slots = sorted(self._ord[w] for w in region)
        for w, slot in zip(region, slots):
            self._ord[w] = slot
        self.pk_visits += len(region)

    def begin_batch(self) -> None:
        """Enter batch mode (re-entrant; pair with :meth:`end_batch`).

        While batched, an order-violating insertion defers Pearce-Kelly
        maintenance by marking its component dirty, so a whole delta
        set pays one scoped resolution per affected component at the
        next query instead of one discovery/reorder pass per edge.
        Verdicts and extracted cycles are unchanged: only *when* the
        maintenance runs moves, never what it computes.  Queries issued
        mid-batch are legal (they resolve what is dirty so far) but
        forfeit the deferral for the ops already applied.
        """
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Leave batch mode.  Deferred work stays lazy: it runs at the
        next query (``has_cycle``/extraction), which is where per-edge
        mode would have had its last word anyway."""
        if self._batch_depth <= 0:
            raise RuntimeError("end_batch without begin_batch")
        self._batch_depth -= 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        if v not in self._out.get(u, ()):
            return
        self._mutations += 1
        self._out[u].discard(v)
        self._in[v].discard(u)
        self._edge_count -= 1
        label = self._label[u]
        self._epoch[label] = self._mutations
        if label in self._cyclic or label in self._dirty:
            # The deleted edge may have carried the cycle: downgrade the
            # verdict to unknown; the next query recomputes, scoped.
            self._cyclic.discard(label)
            self._dirty.add(label)
        # Acyclic components stay acyclic under deletion, and the
        # topological order stays valid — nothing else to do.

    def remove_vertex(self, v: Vertex) -> None:
        if v not in self._out:
            return
        for x in list(self._out[v]):
            self.remove_edge(v, x)
        for x in list(self._in[v]):
            self.remove_edge(x, v)
        self._mutations += 1
        label = self._label.pop(v)
        members = self._members[label]
        members.discard(v)
        self._epoch[label] = self._mutations
        del self._out[v], self._in[v], self._ord[v]
        if not members:
            del self._members[label]
            del self._epoch[label]
            self._cyclic.discard(label)
            self._dirty.discard(label)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_cycle(self) -> bool:
        """Whether any component currently contains a directed cycle."""
        if self._dirty:
            for label in list(self._dirty):
                self._resolve(label)
        return bool(self._cyclic)

    # extract_cycle / extract_cycle_within / cyclic_components /
    # edges_within / check_valid are inherited from _ExtractionBase and
    # shared verbatim with the compiled-kernel wrapper.

    # ------------------------------------------------------------------
    # scoped recompute
    # ------------------------------------------------------------------
    def _resolve(self, label: int) -> None:
        """Recompute verdict and partition for a dirty label's members.

        This is the "scoped recompute only for the affected component"
        path: re-partition the (over-approximated) member set into true
        weak components, run Tarjan over the induced subgraph, and
        reassign fresh topological orders so later insertions resume the
        cheap Pearce-Kelly path.
        """
        members = self._members.pop(label, set())
        self._dirty.discard(label)
        self._cyclic.discard(label)
        self._epoch.pop(label, None)
        if not members:
            return
        self.resolves += 1
        for w in members:
            self._fresh_label(w)
        for w in members:
            for x in self._out[w]:
                self._union(self._label[w], self._label[x])
        sub = DiGraph()
        for w in members:
            sub.add_vertex(w)
            for x in self._out[w]:
                sub.add_edge(w, x)
        components = strongly_connected_components(sub)
        # Tarjan emits SCCs in reverse topological order; walking the
        # list backwards therefore yields a valid topological order over
        # the resolved vertices — exactly what the PK order needs.
        for component in reversed(components):
            if len(component) > 1 or sub.has_edge(component[0], component[0]):
                self._cyclic.add(self._label[component[0]])
            for w in component:
                self._ord[w] = self._next_ord
                self._next_ord += 1


def make_dynamic_scc():
    """The fastest available DynamicSCC implementation.

    Returns a :class:`~repro.core._native.NativeDynamicSCC` (backed by
    the optional compiled kernel) when the extension is built and not
    disabled, else a pure-Python :class:`DynamicSCC`.  The two are
    interchangeable — identical verdicts, partitions, epochs and
    extracted cycles for any operation sequence (pinned by the
    differential tests in ``tests/core/test_native.py``) — so callers
    need not care which they got.  Selection policy lives in
    :mod:`repro.core._native` (``REPRO_NATIVE`` env var).
    """
    from repro.core._native import native_scc_class

    cls = native_scc_class()
    return cls() if cls is not None else DynamicSCC()

