"""Graph-model selection: fixed WFG, fixed SG, or adaptive (Section 5.1).

State-of-the-art tools commit to the WFG.  Armus selects the model per
check, according to the monitored concurrency constraints: the adaptive
mode *tries to build an SG first; if during the construction it reaches a
size threshold, it builds a WFG instead*.  The threshold is reached when,
at any point, there are more SG edges than ``threshold_factor`` times the
number of tasks processed so far (the paper uses a factor of 2, obtained
experimentally on the available benchmarks).

The scalability rationale (Proposition 4.2): cycle detection is
O(V + E) ≤ O(V^2 + V), with V = tasks for the WFG and V = events for the
SG.  SPMD programs have many tasks and few barriers (SG wins); fork/join
and future-style programs can have as many barriers as tasks (WFG wins);
the ratio can change during execution, so the choice is made per check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.dependency import DependencySnapshot
from repro.core.graphs import DiGraph, build_sg, build_wfg, iter_sg_edges

#: Default SG-abort threshold factor (Section 5.1: "more SG-edges than
#: twice the number of tasks processed thus far").
DEFAULT_THRESHOLD_FACTOR = 2.0

#: Component size (in tasks) at or below which a sharded check skips the
#: adaptive SG attempt and builds the WFG directly.  For a shard this
#: small the WFG is O(tasks²) ≤ O(16) edges — always cheap — while the
#: SG attempt still pays index construction per candidate event; the
#: threshold race the adaptive mode arbitrates cannot matter at this
#: scale (ROADMAP: "small shards are always cheap in WFG").
SMALL_SHARD_TASKS = 4


class GraphModel(enum.Enum):
    """Which graph model the checker uses for cycle detection."""

    WFG = "wfg"
    SG = "sg"
    AUTO = "auto"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GraphBuildResult:
    """Outcome of building the analysis graph for one check.

    Attributes
    ----------
    graph:
        The graph handed to cycle detection.
    model_used:
        The concrete model built (never :attr:`GraphModel.AUTO`).
    edge_count:
        Number of edges in ``graph`` — the quantity reported in Table 3.
    sg_aborted:
        In adaptive mode, whether SG construction hit the threshold and
        fell back to the WFG.
    """

    graph: DiGraph
    model_used: GraphModel
    edge_count: int
    sg_aborted: bool = False


def select_shard_model(
    n_tasks: int, model: GraphModel = GraphModel.AUTO
) -> GraphModel:
    """Shard-aware model choice for per-component checking.

    ``check_sharded`` splits a snapshot into connected components and
    checks each independently; the adaptive threshold then sees *shard*
    sizes, not the global population, so the per-shard decision can be
    made from the shard alone: components of at most
    :data:`SMALL_SHARD_TASKS` tasks go straight to the WFG, larger ones
    keep the configured selection (typically adaptive, which favours the
    SG on the barrier-heavy giant components).  Fixed-model
    configurations are never overridden — an ablation pinning SG must
    stay SG on every shard.
    """
    if model is GraphModel.AUTO and n_tasks <= SMALL_SHARD_TASKS:
        return GraphModel.WFG
    return model


def build_graph(
    snapshot: DependencySnapshot,
    model: GraphModel = GraphModel.AUTO,
    threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
) -> GraphBuildResult:
    """Build the analysis graph for ``snapshot`` under ``model``.

    In :attr:`GraphModel.AUTO` mode, SG construction is attempted first
    and abandoned for the WFG once the edge count exceeds
    ``threshold_factor * tasks_processed`` (checked after each task's
    edges are added, mirroring the incremental construction in Armus).
    """
    if model is GraphModel.WFG:
        g = build_wfg(snapshot)
        return GraphBuildResult(g, GraphModel.WFG, g.edge_count)
    if model is GraphModel.SG:
        g = build_sg(snapshot)
        return GraphBuildResult(g, GraphModel.SG, g.edge_count)
    if model is not GraphModel.AUTO:  # pragma: no cover - defensive
        raise ValueError(f"unknown graph model: {model!r}")

    sg = _try_build_sg(snapshot, threshold_factor)
    if sg is not None:
        return GraphBuildResult(sg, GraphModel.SG, sg.edge_count)
    wfg = build_wfg(snapshot)
    return GraphBuildResult(wfg, GraphModel.WFG, wfg.edge_count, sg_aborted=True)


def _try_build_sg(
    snapshot: DependencySnapshot, threshold_factor: float
) -> Optional[DiGraph]:
    """Incrementally build the SG; return ``None`` on threshold abort.

    The awaited-by-phaser index makes each task's contribution
    O(its registrations), not O(all awaited events) — the difference
    between quadratic and linear checks on thousand-task snapshots.
    The edge *set* per task is unchanged, so threshold decisions are
    identical to the unindexed construction.
    """
    g = DiGraph()
    awaited = snapshot.awaited_index()
    for events in awaited.values():
        for e in events:
            g.add_vertex(e)
    tasks_processed = 0
    edges = 0
    for status in snapshot.statuses.values():
        tasks_processed += 1
        for e1, e2 in iter_sg_edges(status, awaited):
            if not g.has_edge(e1, e2):
                edges += 1
                g.add_edge(e1, e2)
        if edges > threshold_factor * tasks_processed:
            return None
    return g
