"""Distributed deadlock detection (Section 5.2).

Armus adapts the one-phase detection algorithm of Kshemkalyani & Singhal
to barrier synchronisation: each *site* periodically writes the blocked
statuses of its own tasks to a disjoint portion of a global
resource-dependency held in a fault-tolerant data store (Redis in the
paper), and **every** site independently pulls the global view and runs
cycle detection.  Two properties make this simple and robust:

* the event-based representation keeps consistency local to each task —
  sites never need to agree on barrier membership or arrival status
  (contrast MUST's centralised event-stream aggregation, Section 7);
* there is no designated control site, so detection survives site
  failures; the store survives through replication.

The paper used real Redis over real clusters; this package substitutes
an in-memory store with the same interface contract (disjoint per-site
streams, injectable failures) and in-process sites, each with its own
:class:`~repro.runtime.verifier.ArmusRuntime` — see DESIGN.md,
"Substitutions".

Publishing runs the **delta wire protocol**
(:mod:`repro.distributed.delta`): sites append
``set``/``restore``/``clear`` deltas under per-site sequence numbers
(with periodic full-snapshot checkpoints) instead of re-putting whole
buckets, and checkers maintain the merged view incrementally — both
sides of the store pay O(change) per round, not O(cluster).
"""

from repro.distributed.store import (
    InMemoryStore,
    ReplicatedStore,
    StoreUnavailableError,
    encode_statuses,
    decode_statuses,
)
from repro.distributed.delta import (
    DeltaMergeState,
    DeltaPublisher,
    DeltaSequenceError,
)
from repro.distributed.detector import (
    DistributedChecker,
    check_buckets,
    merge_payloads,
)
from repro.distributed.site import Site
from repro.distributed.places import Cluster
from repro.distributed.net import (
    CheckerService,
    RemoteProtocolError,
    RemoteStore,
)

__all__ = [
    "CheckerService",
    "RemoteStore",
    "RemoteProtocolError",
    "InMemoryStore",
    "ReplicatedStore",
    "StoreUnavailableError",
    "DeltaPublisher",
    "DeltaMergeState",
    "DeltaSequenceError",
    "encode_statuses",
    "decode_statuses",
    "merge_payloads",
    "check_buckets",
    "DistributedChecker",
    "Site",
    "Cluster",
]
