"""The ``python -m repro.distributed`` command line.

One subcommand today::

    python -m repro.distributed serve [--host H] [--port P]
                                      [--obs-port P | --no-obs]
                                      [--check-interval S] [--duration S]
                                      [--model auto|wfg|sg] [--trace]

``serve`` stands up the long-running multi-tenant checker service:
remote publishers append deltas over TCP (length-prefixed JSON — see
:class:`~repro.distributed.net.client.RemoteStore`), the service runs
one maintained :class:`~repro.distributed.detector.DistributedChecker`
per tenant namespace on a periodic cadence, and telemetry serves over
the ``repro.obs`` HTTP endpoint next door:

* ``GET /metrics`` — service + per-tenant-store series;
* ``GET /healthz`` — aggregate service health, ``503`` once any tenant
  holds a deadlock report (``?tenant=NAME`` scopes to one namespace);
* ``GET /spans`` — the service tracer's span buffer (with ``--trace``).

``--duration 0`` (the default) serves until interrupted; a positive
duration exits on its own — what the CI smoke uses.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.core.selection import GraphModel


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.distributed.net import CheckerService
    from repro.obs.registry import MetricsRegistry
    from repro.obs.server import MetricsHTTPServer

    registry = MetricsRegistry()
    tracer = None
    if args.trace:
        from repro.obs.tracing import Tracer

        tracer = Tracer()
    service = CheckerService(
        host=args.host,
        port=args.port,
        model=GraphModel(args.model),
        check_interval_s=args.check_interval,
        metrics=registry,
        tracer=tracer,
    )
    service.start()
    obs_server = None
    try:
        if not args.no_obs:
            obs_server = MetricsHTTPServer(
                registry, host=args.host, port=args.obs_port,
                tracer=tracer, service=service, verbose=args.verbose,
            ).start()
        print(
            f"checker service on {service.address} "
            + (f"— telemetry on {obs_server.url} (/metrics /healthz /spans)"
               if obs_server is not None else "— telemetry disabled"),
            file=sys.stderr,
        )
        try:
            if args.duration > 0:
                time.sleep(args.duration)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
    finally:
        if obs_server is not None:
            obs_server.stop()
        clean = service.stop()
        if not clean:
            print("checker service shutdown was dirty", file=sys.stderr)
    doc = service.health_doc()
    print(
        f"served {doc['tenant_count']} tenant(s); "
        f"{len(doc['deadlocked_tenants'])} deadlocked",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.distributed.net.server import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed",
        description="network-native distributed deadlock checking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run the multi-tenant checker service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help="service TCP port (0 picks a free one)")
    serve.add_argument("--obs-port", type=int, default=9464,
                       help="telemetry HTTP port (0 picks a free one)")
    serve.add_argument("--no-obs", action="store_true",
                       help="do not start the telemetry endpoint")
    serve.add_argument("--check-interval", type=float, default=0.2,
                       help="seconds between service-side detection "
                            "passes per tenant (0 disables)")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="seconds to serve; 0 = until interrupted")
    serve.add_argument("--model", default="auto",
                       choices=[m.value for m in GraphModel])
    serve.add_argument("--trace", action="store_true",
                       help="record causal spans (served at /spans)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each telemetry HTTP request")
    serve.set_defaults(fn=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
