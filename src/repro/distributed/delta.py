"""The delta wire protocol: carry O(change) across the store boundary.

PR 4 made *local* continuous checking O(change) by feeding blocked-status
deltas into a maintained analysis graph; the distributed path still
shipped whole buckets — every site re-published its entire blocked set
each period and every checker re-merged the full global view each round,
so distributed check cost grew with cluster size, not with what changed.
This module is the shared core of the protocol that fixes it, used by
**both** the live ``Site``/store path and the offline replay engines so
the two derivations cannot drift apart.

**Wire format.**  One delta is a plain JSON-able object::

    {"v": 2, "stream": "d41c2a0f", "seq": 7, "kind": "delta",
     "set":     {task: encoded-status, ...},   # newly blocked tasks
     "restore": {task: encoded-status, ...},   # still blocked, status replaced
     "clear":   [task, ...],                   # no longer blocked
     "trace":   {"span": "9f2c..."}}           # optional causal context (v2+)

Protocol v2 added the optional ``trace`` member: a flat object of
scalar values carrying the publisher's causal context (a deterministic
span id derived from site/stream/seq — never wall clock).  Consumers
ignore it for state materialisation, so v1 objects and v2 objects
without the field apply identically; readers accept both.

``seq`` is a per-site monotonic sequence number starting at 1; the
stream order is the semantics, so consumers validate contiguity and a
gap means "request a checkpoint".  ``stream`` identifies the publisher
*incarnation* (the replication-id idea: a fresh token per
:class:`DeltaPublisher`): sequence numbers only compose within one
stream, so a consumer whose cursor came from a previous incarnation —
or from a divergent replica — can never silently splice the new
stream's deltas onto old state just because the numbers happen to
line up; any stream mismatch is a :class:`DeltaSequenceError` and
resolves like every other divergence, with a checkpoint.
``kind: "snapshot"`` marks a full checkpoint: ``set`` carries the
site's whole bucket, ``restore`` and ``clear`` are empty, and a
snapshot is accepted at *any* position — it resets the stream (first
publish, periodic checkpoint cadence, and every resync path all reuse
it).  The per-status encoding is
:func:`repro.trace.events.status_to_obj` (sorted, canonical), so a
delta recorded into a trace replays bit-identically.

**Roles.**

* :class:`DeltaPublisher` — the producer half: diff the site's current
  encoded bucket against the last *committed* publication, emit the
  delta (or ``None`` when nothing changed), checkpoint every
  ``checkpoint_every`` deltas.  ``prepare``/``commit`` are split so a
  store outage between them retries the same logical change next round
  without burning sequence numbers.
* :class:`DeltaMergeState` — the consumer half: maintain the merged
  global view as per-site buckets plus a fed checker (any object with
  the ``set_blocked``/``clear`` mutation surface — in practice an
  :class:`~repro.core.incremental.IncrementalChecker`), applying each
  delta as task-level ops instead of re-merging every bucket.  Tracks
  cross-site ownership so a task published by several sites raises the
  same error, at the same time (check time), as the classic
  :func:`~repro.distributed.detector.merge_payloads` — a transient
  overlap that resolves within one cadence window is tolerated.
* :func:`apply_delta_obj` — the bucket-materialisation primitive the
  from-scratch replay engine (and the stores) use: fold one delta into
  a ``site -> {task: blob}`` view with the same gap validation.

**Determinism.**  Bucket dicts preserve insertion order and every
application path mutates them identically (clears pop, restores update
in place, sets append), so the merged snapshot a delta consumer
materialises is ordered exactly like the bucket protocol's
``merge_payloads(store.get_all())`` — which is what keeps distributed
detection reports byte-identical across the two protocols and across
the from-scratch/incremental replay engines.
"""

from __future__ import annotations

import contextlib
import json
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.dependency import DependencySnapshot
from repro.core.events import BlockedStatus

#: Current delta wire-protocol version (the ``v`` field).  Version 2
#: added the optional ``trace`` causal-context member.
PROTOCOL_VERSION = 2

#: The delta kinds the protocol defines (the ``kind`` field).
DELTA_KINDS = ("delta", "snapshot")

#: Publisher checkpoint cadence ceiling: a full snapshot at least every
#: N deltas bounds both store log length and the cost of a cold
#: consumer catching up.
DEFAULT_CHECKPOINT_EVERY = 64

#: Adaptive cadence target: checkpoint once the bytes shipped as deltas
#: since the last snapshot reach this multiple of the snapshot's own
#: wire size — so catch-up replay cost stays proportional to one
#: snapshot regardless of how small individual deltas are.
DEFAULT_CHECKPOINT_RATIO = 4.0


class DeltaSequenceError(RuntimeError):
    """A delta stream cannot be extended or served contiguously.

    Raised by stores when an appended delta does not extend the tail
    (the publisher and the store disagree about history — e.g. a
    failover to a stale replica), and by consumers/stores when a read
    cursor falls outside the retained log.  The protocol-level answer
    is always the same: fall back to a full snapshot checkpoint.
    """


# ---------------------------------------------------------------------------
# wire helpers
# ---------------------------------------------------------------------------
def encode_bucket(statuses: Mapping) -> Dict[str, dict]:
    """Encode a ``task -> BlockedStatus`` mapping to wire blobs.

    The per-status form is the canonical (sorted) trace encoding, so
    publisher diffs compare stable representations.  (Imported lazily:
    ``repro.trace`` pulls the replay engine in through its package
    init, which imports this module — a top-level import would cycle.)
    """
    from repro.trace.events import status_to_obj

    return {str(task): status_to_obj(status) for task, status in statuses.items()}


def decode_blob(blob: Mapping) -> BlockedStatus:
    """One wire blob back to a :class:`BlockedStatus`."""
    from repro.trace.events import status_from_obj

    return status_from_obj(blob)


def wire_size(obj) -> int:
    """Bytes-on-the-wire proxy for one payload (compact JSON length).

    The stores use it for traffic accounting — the quantity the
    delta-vs-bucket benchmark compares.
    """
    return len(json.dumps(obj, separators=(",", ":"), sort_keys=True))


def fresh_stream_token() -> str:
    """A stream (publisher-incarnation) token: unique per restart.

    Fixed-width time-prefixed hex, so tokens from successive
    incarnations of one publisher compare lexicographically in birth
    order — what lets replica read-repair pick the *newest* stream as
    the heal source when divergent replicas hold different
    incarnations.  (Deterministic producers that pass their own fixed
    tokens never replicate, so the ordering property is not load-
    bearing for them.)
    """
    import time
    import uuid

    return f"{time.time_ns():016x}{uuid.uuid4().hex[:8]}"


def make_snapshot(
    seq: int,
    bucket: Mapping[str, Mapping],
    stream: str,
    trace: Optional[Mapping] = None,
) -> dict:
    """A full-checkpoint delta at ``stream``/``seq`` carrying ``bucket``
    whole (plus the optional ``trace`` causal context)."""
    obj = {
        "v": PROTOCOL_VERSION,
        "stream": str(stream),
        "seq": seq,
        "kind": "snapshot",
        "set": {task: dict(blob) for task, blob in bucket.items()},
        "restore": {},
        "clear": [],
    }
    if trace is not None:
        obj["trace"] = dict(trace)
    return obj


def delta_trace_context(site_id: str, stream: str, seq: int) -> dict:
    """The causal context a tracing publisher stamps on one delta.

    The span id is derived from the wire coordinates themselves
    (site/stream/seq), so the same logical delta carries the same id in
    every process, recording, and replay — no wall clock involved.
    """
    from repro.obs.tracing import span_id

    return {"span": span_id("delta", site_id, stream, seq)}


def diff_buckets(
    old: Mapping[str, Mapping], new: Mapping[str, Mapping]
) -> Tuple[Dict[str, dict], Dict[str, dict], List[str]]:
    """Classify the change between two encoded buckets into wire ops.

    Returns ``(set, restore, clear)``: tasks newly present, tasks still
    present whose blob changed (a replaced/restored status), and tasks
    gone.  ``clear`` is sorted for a canonical wire form.
    """
    set_ops = {t: dict(b) for t, b in new.items() if t not in old}
    restore_ops = {
        t: dict(b) for t, b in new.items() if t in old and old[t] != b
    }
    clear_ops = sorted(t for t in old if t not in new)
    return set_ops, restore_ops, clear_ops


#: A consumer's position in one site's stream: (stream token, seq).
Cursor = Tuple[str, int]


def validate_extends(cursor: Optional[Cursor], site: str, obj: Mapping) -> Cursor:
    """Check that ``obj`` legally extends ``cursor``; return the new one.

    The single validation rule every consumer of a delta stream runs
    (stores, merge views, replay, the publisher's committed state):
    snapshots are accepted anywhere and reset the stream; ordinary
    deltas must carry the cursor's stream token *and* the next sequence
    number.  Anything else — a gap, a foreign stream incarnation, a
    delta with no base — raises :class:`DeltaSequenceError`.
    """
    stream, seq = str(obj["stream"]), int(obj["seq"])
    if obj["kind"] == "snapshot":
        # Shape check at the shared gate: a snapshot carrying delta ops
        # would be materialised differently by the plain bucket fold
        # and the ownership-tracking merge view — reject it loudly
        # before any consumer state can diverge.
        if obj["restore"] or list(obj["clear"]):
            raise ValueError(
                f"site {site}: snapshot deltas carry only a set section"
            )
        return stream, seq
    if cursor is None or cursor[0] != stream or seq != cursor[1] + 1:
        raise DeltaSequenceError(
            f"site {site}: delta {stream}/{seq} does not extend "
            f"{cursor[0] + '/' + str(cursor[1]) if cursor else 'empty stream'}"
        )
    return stream, seq


def apply_ops_to_bucket(bucket: Dict[str, dict], obj: Mapping) -> None:
    """Mutate one encoded bucket with a (validated) delta's ops.

    The single materialisation rule: a snapshot replaces the bucket
    wholesale; an ordinary delta pops ``clear``, updates ``restore`` in
    place and appends ``set`` — preserving dict order identically
    everywhere, which is what keeps merged-snapshot task order equal
    across the stores, the replay engines and the publisher.
    """
    if obj["kind"] == "snapshot":
        bucket.clear()
    for task in obj["clear"]:
        bucket.pop(task, None)
    for task, blob in obj["restore"].items():
        bucket[task] = dict(blob)
    for task, blob in obj["set"].items():
        bucket[task] = dict(blob)


def apply_delta_obj(
    buckets: Dict[str, Dict[str, dict]],
    cursors: Dict[str, Cursor],
    site: str,
    obj: Mapping,
) -> None:
    """Fold one delta into a materialised ``site -> bucket`` view:
    :func:`validate_extends` + :func:`apply_ops_to_bucket` + cursor
    advance — what the from-scratch replay engine and the publisher's
    committed state run."""
    cursor = validate_extends(cursors.get(site), site, obj)
    apply_ops_to_bucket(buckets.setdefault(site, {}), obj)
    cursors[site] = cursor


# ---------------------------------------------------------------------------
# producer half
# ---------------------------------------------------------------------------
class DeltaPublisher:
    """Derives one site's delta stream from successive encoded buckets.

    ``prepare(bucket)`` returns the next wire object (or ``None`` when
    nothing changed and no checkpoint is due) *without* advancing state;
    ``commit(obj)`` advances it after the store accepted the write.  A
    failed append therefore re-derives the same logical change next
    round — changes accumulate into one delta instead of being lost.
    The first publication is always a snapshot (consumers need a base),
    and further snapshots keep store logs bounded so cold readers catch
    up in one read.  Cadence is **adaptive** by default: a checkpoint
    is due once the bytes committed as deltas since the last snapshot
    reach ``checkpoint_ratio`` times the current snapshot's own wire
    size — small, chatty deltas earn a long cadence, deltas nearly as
    big as the bucket checkpoint almost immediately.  ``checkpoint_every``
    stays as the count ceiling either way, and ``adaptive=False``
    restores the fixed every-N cadence alone.

    ``stream`` is the incarnation token stamped on every delta: by
    default a fresh random one (a restarted site must not alias its
    predecessor's sequence numbers); deterministic producers (the
    corpus generator) pass a fixed token.  With ``carry_trace`` the
    publisher stamps each wire object with its deterministic causal
    context (:func:`delta_trace_context`).
    """

    def __init__(
        self,
        site_id: str,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        stream: Optional[str] = None,
        adaptive: bool = True,
        checkpoint_ratio: float = DEFAULT_CHECKPOINT_RATIO,
        carry_trace: bool = False,
    ) -> None:
        self.site_id = str(site_id)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.stream = str(stream) if stream is not None else fresh_stream_token()
        self.adaptive = bool(adaptive)
        self.checkpoint_ratio = max(0.0, float(checkpoint_ratio))
        self.carry_trace = bool(carry_trace)
        self.seq = 0
        self._last: Dict[str, dict] = {}
        self._since_checkpoint = 0
        #: Wire bytes committed as ordinary deltas since the last
        #: snapshot — the adaptive cadence's accumulator.
        self._delta_bytes = 0

    def _trace(self, seq: int) -> Optional[dict]:
        if not self.carry_trace:
            return None
        return delta_trace_context(self.site_id, self.stream, seq)

    def _checkpoint_due(self, delta_obj: Mapping, bucket: Mapping) -> bool:
        if self._since_checkpoint + 1 >= self.checkpoint_every:
            return True
        if not self.adaptive:
            return False
        snapshot_size = max(1, wire_size({t: dict(b) for t, b in bucket.items()}))
        pending = self._delta_bytes + wire_size(delta_obj)
        return pending >= self.checkpoint_ratio * snapshot_size

    def prepare(self, bucket: Mapping[str, Mapping]) -> Optional[dict]:
        """The next delta for ``bucket``, or ``None`` if nothing to say."""
        if self.seq == 0:
            return make_snapshot(1, bucket, self.stream, trace=self._trace(1))
        set_ops, restore_ops, clear_ops = diff_buckets(self._last, bucket)
        if not (set_ops or restore_ops or clear_ops):
            return None
        obj = {
            "v": PROTOCOL_VERSION,
            "stream": self.stream,
            "seq": self.seq + 1,
            "kind": "delta",
            "set": set_ops,
            "restore": restore_ops,
            "clear": clear_ops,
        }
        if self._checkpoint_due(obj, bucket):
            return make_snapshot(
                self.seq + 1, bucket, self.stream, trace=self._trace(self.seq + 1)
            )
        trace = self._trace(self.seq + 1)
        if trace is not None:
            obj["trace"] = trace
        return obj

    def prepare_checkpoint(self, bucket: Mapping[str, Mapping]) -> dict:
        """A forced snapshot at the next sequence number (gap recovery)."""
        return make_snapshot(
            self.seq + 1, bucket, self.stream, trace=self._trace(self.seq + 1)
        )

    def commit(self, obj: Mapping) -> None:
        """Advance committed state to include ``obj`` (store accepted it)."""
        buckets = {self.site_id: self._last}
        cursors = {self.site_id: (self.stream, self.seq)}
        apply_delta_obj(buckets, cursors, self.site_id, obj)
        self._last = buckets[self.site_id]
        self.seq = cursors[self.site_id][1]
        if obj["kind"] == "snapshot":
            self._since_checkpoint = 0
            self._delta_bytes = 0
        else:
            self._since_checkpoint += 1
            self._delta_bytes += wire_size(obj)


# ---------------------------------------------------------------------------
# consumer half
# ---------------------------------------------------------------------------
def merge_buckets(buckets: Mapping[str, Mapping[str, Mapping]]) -> DependencySnapshot:
    """Merge per-site encoded buckets into one global snapshot.

    Task ids are globally unique, so the merge is a disjoint union; a
    duplicate id across sites would indicate a publishing bug and
    raises — with the same message whichever protocol carried the
    statuses, so replays of bucket and delta traces fail identically.
    """
    merged: Dict[str, BlockedStatus] = {}
    for site_id, bucket in buckets.items():
        statuses = {str(t): decode_blob(blob) for t, blob in bucket.items()}
        overlap = merged.keys() & statuses.keys()
        if overlap:
            raise ValueError(
                f"tasks {sorted(overlap)} published by several sites "
                f"(last: {site_id})"
            )
        merged.update(statuses)
    return DependencySnapshot(statuses=merged)


class DeltaMergeState:
    """The consumer's maintained global view, fed task-level deltas.

    One instance backs one checker: per-site encoded buckets (ordered —
    the merged snapshot must mirror the bucket protocol's site/task
    ordering), per-site stream cursors, and cross-site ownership for
    conflict detection.  Applying a delta costs O(ops), not O(cluster):
    this is the property the whole protocol exists to carry across the
    wire.

    The checker only needs the delta mutation surface (``set_blocked``,
    ``clear``); pair it with an
    :class:`~repro.core.incremental.IncrementalChecker` whose
    ``snapshot_source`` is :meth:`merged_snapshot` and the rare
    cyclic-path fallback sees byte-identical input to the bucket
    protocol's merge.
    """

    def __init__(self, checker) -> None:
        self.checker = checker
        self.buckets: Dict[str, Dict[str, dict]] = {}
        self.cursors: Dict[str, Cursor] = {}
        self._owners: Dict[str, Set[str]] = {}
        self._conflicted: Set[str] = set()
        #: Task-level operations applied since construction — the
        #: "per-check merge cost" quantity of the delta benchmark.
        self.ops_applied = 0
        # Batched checker feeding: when the checker exposes
        # ``apply_batch`` (the IncrementalChecker surface), each
        # application entry point collects its task-level ops and hands
        # the whole set over in one maintenance pass.  ``None`` means
        # "not collecting" — ops go to the checker directly.
        self._apply_batch = getattr(checker, "apply_batch", None)
        self._pending_ops: Optional[List[Tuple[str, str, Optional[BlockedStatus]]]] = None

    # -- introspection -------------------------------------------------
    def sites(self) -> List[str]:
        return list(self.buckets)

    def cursor(self, site: str) -> Optional[Cursor]:
        return self.cursors.get(site)

    def cursor_seq(self, site: str) -> int:
        cursor = self.cursors.get(site)
        return 0 if cursor is None else cursor[1]

    @property
    def conflicted(self) -> frozenset:
        return frozenset(self._conflicted)

    def merged_snapshot(self) -> DependencySnapshot:
        """The global view, ordered like the bucket protocol's merge."""
        return merge_buckets(self.buckets)

    def raise_on_conflict(self) -> None:
        """Reject cross-site duplication at check time, identically to
        the classic merge (which produces the error text)."""
        if self._conflicted:
            merge_buckets(self.buckets)

    # -- application ---------------------------------------------------
    def apply_obj(self, site: str, obj: Mapping) -> None:
        """Fold one wire delta into the view and the fed checker.

        Validation is the shared :func:`validate_extends` rule; the op
        walk mirrors :func:`apply_ops_to_bucket` (same order: clear,
        restore, set) but interleaves the per-task ownership and
        checker feeding that the plain bucket fold has no need for.
        """
        site = str(site)
        cursor = validate_extends(self.cursors.get(site), site, obj)
        opened = self._begin_ops()
        try:
            if obj["kind"] == "snapshot":
                self._replace_bucket(
                    site, {str(t): dict(b) for t, b in obj["set"].items()}
                )
            else:
                bucket = self.buckets.setdefault(site, {})
                for task in obj["clear"]:
                    if task in bucket:
                        bucket.pop(task)
                        self._remove_task(site, task)
                for task, blob in obj["restore"].items():
                    bucket[task] = dict(blob)
                    self._set_task(site, task, blob)
                for task, blob in obj["set"].items():
                    bucket[task] = dict(blob)
                    self._set_task(site, task, blob)
        finally:
            if opened:
                self._flush_ops()
        self.cursors[site] = cursor

    def apply_bucket(self, site: str, new_bucket: Mapping[str, Mapping]) -> None:
        """Fold a whole-bucket replacement (the legacy ``publish``
        record / bucket protocol) into the view, diffing against the
        site's previous bucket so only changed tasks touch the checker."""
        with self.batched():
            self._replace_bucket(
                str(site), {str(t): dict(b) for t, b in new_bucket.items()}
            )

    def reset_site(
        self, site: str, stream: str, seq: int, state: Mapping[str, Mapping]
    ) -> None:
        """Checkpoint resync: replace ``site``'s view wholesale and
        fast-forward its cursor (the consumer detected a gap or a
        foreign stream and requested a snapshot)."""
        with self.batched():
            self._replace_bucket(
                str(site), {str(t): dict(b) for t, b in state.items()}
            )
        self.cursors[str(site)] = (str(stream), seq)

    def drop_site(self, site: str) -> None:
        """The site withdrew (graceful stop deleted its stream): clear
        every status it owned from the merged view."""
        site = str(site)
        if site in self.buckets:
            with self.batched():
                self._replace_bucket(site, {})
        self.buckets.pop(site, None)
        self.cursors.pop(site, None)

    # -- batched checker feeding ---------------------------------------
    def _begin_ops(self) -> bool:
        """Start collecting checker ops; ``True`` if this call opened
        the collection (re-entrant callers keep the outer batch)."""
        if self._apply_batch is None or self._pending_ops is not None:
            return False
        self._pending_ops = []
        return True

    def _flush_ops(self) -> None:
        """Hand the collected ops to the checker in one batch."""
        ops, self._pending_ops = self._pending_ops, None
        if ops:
            self._apply_batch(ops)

    def _checker_set(self, task: str, status: BlockedStatus) -> None:
        if self._pending_ops is not None:
            self._pending_ops.append(("set", task, status))
        else:
            self.checker.set_blocked(task, status)

    def _checker_clear(self, task: str) -> None:
        if self._pending_ops is not None:
            self._pending_ops.append(("clear", task, None))
        else:
            self.checker.clear(task)

    @contextlib.contextmanager
    def batched(self):
        """Context manager batching every checker op applied inside it
        into one ``apply_batch`` call — a sync round's worth of deltas,
        one maintenance pass.  A no-op (empty) batch costs nothing, and
        checkers without ``apply_batch`` fall back to direct feeding."""
        opened = self._begin_ops()
        try:
            yield self
        finally:
            if opened:
                self._flush_ops()

    # -- task-level primitives (the shared ownership semantics) --------
    def _replace_bucket(self, site: str, new: Dict[str, dict]) -> None:
        old = self.buckets.get(site, {})
        self.buckets[site] = new
        for task in old:
            if task not in new:
                self._remove_task(site, task)
        for task, blob in new.items():
            if old.get(task) != blob:
                self._set_task(site, task, blob)

    def _remove_task(self, site: str, task: str) -> None:
        self.ops_applied += 1
        owners = self._owners.get(task, set())
        owners.discard(site)
        if not owners:
            self._checker_clear(task)
            self._owners.pop(task, None)
        elif len(owners) == 1:
            # Conflict resolved by this removal: the survivor's current
            # blob is the merged truth again.
            self._conflicted.discard(task)
            (survivor,) = owners
            blob = self.buckets[survivor][task]
            self._checker_set(task, decode_blob(blob))

    def _set_task(self, site: str, task: str, blob: Mapping) -> None:
        self.ops_applied += 1
        self._checker_set(task, decode_blob(blob))
        owners = self._owners.setdefault(task, set())
        owners.add(site)
        if len(owners) > 1:
            # While a task is conflicted its delta state is last-writer;
            # the caller rejects at the next check, exactly when the
            # classic merge would.
            self._conflicted.add(task)
