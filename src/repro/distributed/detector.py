"""The one-phase distributed detection algorithm (Section 5.2), delta-fed.

Armus's two changes to Kshemkalyani & Singhal's one-phase algorithm:

1. logical clocks (phaser events) instead of vector clocks — barrier
   synchronisation gives a natural per-resource total order, so no
   vector-timestamp machinery is needed to keep the global view
   consistent: each task's blocked status is self-contained;
2. no designated control site — the global status lives in a dedicated
   (fault-tolerant) store and *all* sites check, so detection survives
   any site failure.

:class:`DistributedChecker` is the per-site checking half.  Under the
delta protocol it no longer re-merges the whole global view each round:
it polls every site's delta stream from its cursor, feeds the decoded
ops into a maintained :class:`~repro.core.incremental.IncrementalChecker`
through a :class:`~repro.distributed.delta.DeltaMergeState`, and asks
the maintained graph — O(change) to sync, O(1) to answer while acyclic.
A sequence gap (compacted log, restarted stream, stale replica) makes
the checker *request a checkpoint*: one ``get_state`` read resyncs that
site's slice of the view.  A deadlock spanning sites appears as a cycle
exactly as a local one would, because event names are global, and the
reports are byte-identical to the bucket protocol's (the cyclic-path
fallback rebuilds from the same merged, same-ordered snapshot).

:func:`merge_payloads` and :func:`check_buckets` keep the bucket
protocol's reference semantics alive for old traces and for the
delta-vs-bucket benchmark.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.checker import DeadlockChecker
from repro.core.dependency import DependencySnapshot
from repro.core.report import DeadlockReport
from repro.core.selection import GraphModel
from repro.distributed.delta import DeltaMergeState, DeltaSequenceError, merge_buckets
from repro.core.incremental import IncrementalChecker


def merge_payloads(payloads: Mapping[str, Mapping]) -> DependencySnapshot:
    """Merge per-site buckets into one global snapshot.

    Task ids are globally unique, so the merge is a disjoint union; a
    duplicate id across sites would indicate a publishing bug and raises.
    """
    return merge_buckets(payloads)


def check_buckets(
    store,
    model: GraphModel = GraphModel.AUTO,
    threshold_factor: float = 2.0,
    checker: Optional[DeadlockChecker] = None,
) -> Optional[DeadlockReport]:
    """One bucket-protocol detection pass: ``get_all`` → merge → check.

    The pre-delta reference path, retained for the delta-vs-bucket
    benchmark and the protocol-equivalence differential tests.  Pass a
    ``checker`` to accumulate stats across rounds.
    """
    if checker is None:
        checker = DeadlockChecker(model=model, threshold_factor=threshold_factor)
    return checker.check(snapshot=merge_payloads(store.get_all()))


class DistributedChecker:
    """The checking half of a site: delta streams -> maintained view.

    ``check_global`` first syncs — reads each live site's new deltas
    (resyncing from a checkpoint on any gap) and drops sites whose
    streams were withdrawn — then queries the maintained incremental
    checker.  Store outages surface as exceptions for the caller (the
    site's checking loop) to tolerate — the algorithm's fault-tolerance
    is *continuing to run*, not pretending the read succeeded.
    """

    def __init__(
        self,
        store,
        model: GraphModel = GraphModel.AUTO,
        threshold_factor: float = 2.0,
        metrics=None,
        tracer=None,
    ) -> None:
        self.store = store
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.checker = IncrementalChecker(
            model=model, threshold_factor=threshold_factor, metrics=metrics
        )
        self.view = DeltaMergeState(self.checker)
        # The rare cyclic-path fallback must see the same snapshot —
        # same site order, same task order — the bucket protocol's
        # merge produced, so reports stay byte-identical across
        # protocols.
        self.checker.snapshot_source = self.view.merged_snapshot
        #: Checkpoint resyncs performed (gap recovery accounting).
        self.resyncs = 0
        if metrics is None:
            from repro.obs.registry import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        syncs = metrics.counter(
            "repro_distributed_sync_total",
            "Delta-stream sync work per global check round: rounds "
            "run, delta entries applied, checkpoint resyncs, sites "
            "dropped.",
            labels=("event",), volatile=True,
        )
        self._m_sync_rounds = syncs.labels(event="rounds")
        self._m_sync_deltas = syncs.labels(event="deltas_applied")
        self._m_sync_resyncs = syncs.labels(event="resyncs")
        self._m_sync_drops = syncs.labels(event="sites_dropped")
        self._m_sync_lag = metrics.histogram(
            "repro_distributed_sync_lag",
            "Delta entries a site's stream had queued when the checker "
            "polled it (how far behind each round found itself).",
            volatile=True,
        )

    def sync(self) -> None:
        """Pull every site's new deltas into the maintained view.

        O(change) per round: only appended deltas cross the wire, and
        only their ops touch the checker.  Gaps — compacted logs,
        restarted streams, stale replicas — fall back to one
        ``get_state`` checkpoint read for that site.
        """
        self._m_sync_rounds.inc()
        live = self.store.delta_sites()
        live_set = set(live)
        for site in [s for s in self.view.sites() if s not in live_set]:
            self.view.drop_site(site)
            self._m_sync_drops.inc()
        for site in live:
            cursor = self.view.cursor(site)
            try:
                if cursor is None:
                    deltas = self.store.get_deltas(site, 0)
                else:
                    deltas = self.store.get_deltas(site, cursor[1], cursor[0])
                self._m_sync_lag.observe(len(deltas))
                if deltas:
                    self._m_sync_deltas.inc(len(deltas))
                # One maintenance pass for the whole backlog: a polled
                # stream with several queued deltas feeds the checker
                # through a single apply_batch instead of per-op passes.
                with self.view.batched():
                    for obj in deltas:
                        self.view.apply_obj(site, obj)
            except DeltaSequenceError:
                self._resync(site)

    def _resync(self, site: str) -> None:
        """Checkpoint recovery: replace the site's slice of the view."""
        try:
            stream, seq, state = self.store.get_state(site)
        except DeltaSequenceError:
            # The stream vanished between the listing and the read.
            self.view.drop_site(site)
            self._m_sync_drops.inc()
            return
        self.view.reset_site(site, stream, seq, state)
        self.resyncs += 1
        self._m_sync_resyncs.inc()

    def check_global(self) -> Optional[DeadlockReport]:
        """One detection pass over the published global state."""
        start = self.tracer.next_ordinal() if self.tracer.enabled else 0
        self.sync()
        if self.tracer.enabled:
            self.tracer.complete("checker.sync", "checker", start, cat="sync")
        self.view.raise_on_conflict()
        report = self.checker.check()
        if report is not None and self.tracer.enabled:
            self.tracer.event(
                "deadlock.report", "checker", cat="report",
                cycle=" -> ".join(str(v) for v in report.cycle),
                model=report.model_used.value,
            )
        return report

    @property
    def stats(self):
        return self.checker.stats
