"""The one-phase distributed detection algorithm (Section 5.2).

Armus's two changes to Kshemkalyani & Singhal's one-phase algorithm:

1. logical clocks (phaser events) instead of vector clocks — barrier
   synchronisation gives a natural per-resource total order, so no
   vector-timestamp machinery is needed to keep the global view
   consistent: each task's blocked status is self-contained;
2. no designated control site — the global status lives in a dedicated
   (fault-tolerant) store and *all* sites check, so detection survives
   any site failure.

:class:`DistributedChecker` is the per-site checking half: pull every
site's published bucket, merge into one
:class:`~repro.core.dependency.DependencySnapshot`, run the ordinary
graph analysis.  A deadlock spanning sites appears as a cycle exactly as
a local one would, because event names are global.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.checker import DeadlockChecker
from repro.core.dependency import DependencySnapshot
from repro.core.events import BlockedStatus
from repro.core.report import DeadlockReport
from repro.core.selection import GraphModel
from repro.distributed.store import decode_statuses


def merge_payloads(payloads: Mapping[str, Mapping]) -> DependencySnapshot:
    """Merge the per-site buckets into one global snapshot.

    Task ids are globally unique, so the merge is a disjoint union; a
    duplicate id across sites would indicate a publishing bug and raises.
    """
    merged: Dict[str, BlockedStatus] = {}
    for site_id, payload in payloads.items():
        statuses = decode_statuses(payload)
        overlap = merged.keys() & statuses.keys()
        if overlap:
            raise ValueError(
                f"tasks {sorted(overlap)} published by several sites "
                f"(last: {site_id})"
            )
        merged.update(statuses)
    return DependencySnapshot(statuses=merged)


class DistributedChecker:
    """The checking half of a site: global view -> cycle detection."""

    def __init__(
        self,
        store,
        model: GraphModel = GraphModel.AUTO,
        threshold_factor: float = 2.0,
    ) -> None:
        self.store = store
        self.checker = DeadlockChecker(model=model, threshold_factor=threshold_factor)

    def check_global(self) -> Optional[DeadlockReport]:
        """One detection pass over the published global state.

        Store outages surface as exceptions for the caller (the site's
        checking loop) to tolerate — the algorithm's fault-tolerance is
        *continuing to run*, not pretending the read succeeded.
        """
        payloads = self.store.get_all()
        snapshot = merge_payloads(payloads)
        return self.checker.check(snapshot=snapshot)

    @property
    def stats(self):
        return self.checker.stats
