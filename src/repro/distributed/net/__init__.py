"""Network-native distributed checking: a real transport behind the store.

The delta wire protocol (:mod:`repro.distributed.delta`) was designed
for network transport; this package finally puts a socket under it:

* :mod:`~repro.distributed.net.framing` — length-prefixed JSON frames
  (shared by both halves, blocking and asyncio);
* :mod:`~repro.distributed.net.service` — the transport-free
  multi-tenant core: one store + maintained
  :class:`~repro.distributed.detector.DistributedChecker` + service-side
  report provenance per tenant namespace;
* :mod:`~repro.distributed.net.server` — :class:`CheckerService`, the
  asyncio TCP server (``python -m repro.distributed serve``);
* :mod:`~repro.distributed.net.client` — :class:`RemoteStore`, a
  blocking drop-in for :class:`~repro.distributed.store.InMemoryStore`
  with timeouts, bounded retry/backoff, and faithful cross-wire
  ``DeltaSequenceError`` / ``StoreUnavailableError`` propagation.

With it, ``ReplicatedStore``'s fault-injection scenarios run over real
sockets (a genuine network-partition suite), and checking can be
centralised in one long-running service while publisher clients stay
thin — the deployment shape of the paper's Armus-X10 with Redis.
"""

from repro.distributed.net.client import RemoteProtocolError, RemoteStore
from repro.distributed.net.framing import (
    FrameError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.distributed.net.server import DEFAULT_PORT, CheckerService
from repro.distributed.net.service import (
    DEFAULT_TENANT,
    CheckerServiceCore,
    TenantChecker,
)

__all__ = [
    "CheckerService",
    "CheckerServiceCore",
    "TenantChecker",
    "RemoteStore",
    "RemoteProtocolError",
    "FrameError",
    "DEFAULT_PORT",
    "DEFAULT_TENANT",
    "encode_frame",
    "send_frame",
    "recv_frame",
]
