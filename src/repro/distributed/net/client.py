"""``RemoteStore``: the five-method store surface over a real socket.

A blocking, thread-safe client for the checker service that is a
drop-in substitute for :class:`~repro.distributed.store.InMemoryStore`
wherever the delta protocol's surface is consumed — a
:class:`~repro.distributed.site.Site`'s publisher and checker loops, a
bare :class:`~repro.distributed.delta.DeltaPublisher`, or a
:class:`~repro.distributed.detector.DistributedChecker` — so the same
code runs in-process and across the wire.

**Error fidelity** is the load-bearing property:

* a server-side :class:`~repro.distributed.delta.DeltaSequenceError`
  crosses the wire as a typed error and re-raises as
  ``DeltaSequenceError`` here — publisher gap recovery (forced
  checkpoint) and checker resync (``get_state``) work unchanged;
* a server-side :class:`~repro.distributed.store.StoreUnavailableError`
  (injected outage, every replica down) re-raises as itself — the
  site loops' skip-the-round tolerance works unchanged;
* *transport* failures (refused/reset connections, read timeouts) are
  retried with bounded exponential backoff on a fresh connection, and
  surface as ``StoreUnavailableError`` once retries are exhausted —
  to a site, an unreachable service *is* an unavailable store.

Retrying an ``append_delta`` whose first attempt died mid-flight is
safe by protocol construction: if the server applied it before the
connection broke, the retry fails to extend the tail, raises
``DeltaSequenceError``, and the publisher heals with a checkpoint —
the same path every other history divergence takes.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.distributed.net.framing import FrameError, recv_frame, send_frame
from repro.distributed.net.service import DEFAULT_TENANT, WIRE_ERRORS
from repro.distributed.store import StoreUnavailableError

log = logging.getLogger(__name__)

__all__ = ["RemoteStore", "RemoteProtocolError"]


class RemoteProtocolError(RuntimeError):
    """The service answered outside the protocol (unknown op, internal
    server failure, malformed response) — a bug, not a fault to retry."""


class RemoteStore:
    """A tenant-scoped store client speaking the checker-service protocol.

    Parameters
    ----------
    host, port:
        The service's TCP endpoint.
    tenant:
        Namespace every operation is scoped to.
    connect_timeout_s / timeout_s:
        Socket connect and per-request read deadlines.
    retries / backoff_s:
        Transport-failure policy: up to ``retries`` re-attempts after
        the first failure, sleeping ``backoff_s * 2**attempt`` between
        attempts, each on a fresh connection.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9555,
        tenant: str = DEFAULT_TENANT,
        connect_timeout_s: float = 5.0,
        timeout_s: float = 10.0,
        retries: int = 3,
        backoff_s: float = 0.05,
        name: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.tenant = str(tenant)
        self.connect_timeout_s = connect_timeout_s
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.name = name or f"remote:{self.tenant}@{host}:{port}"
        #: Transport attempts that failed and were retried (observable
        #: robustness accounting, mirroring Site.publish_failures).
        self.transport_failures = 0
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    # -- connection management -----------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        sock.settimeout(self.timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request pump ----------------------------------------------
    def _request(self, op: str, **args):
        request = {"op": op, "tenant": self.tenant}
        request.update(args)
        last_error: Optional[Exception] = None
        with self._lock:
            for attempt in range(self.retries + 1):
                if attempt:
                    self.transport_failures += 1
                    time.sleep(self.backoff_s * (2 ** (attempt - 1)))
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    send_frame(self._sock, request)
                    response = recv_frame(self._sock)
                    if response is None:
                        raise FrameError("service closed the connection")
                except (OSError, FrameError) as exc:
                    # Transport trouble: the connection is in an unknown
                    # state — drop it and retry on a fresh one.
                    self._drop_connection()
                    last_error = exc
                    continue
                return self._unwrap(response)
        raise StoreUnavailableError(
            f"{self.name}: service unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    def _unwrap(self, response):
        if not isinstance(response, dict) or "ok" not in response:
            raise RemoteProtocolError(
                f"{self.name}: malformed response {response!r}"
            )
        if response["ok"]:
            return response.get("value")
        kind = response.get("error")
        message = response.get("message", "")
        exc_type = WIRE_ERRORS.get(kind)
        if exc_type is not None:
            raise exc_type(message)
        raise RemoteProtocolError(f"{self.name}: [{kind}] {message}")

    # -- the five-method store surface ---------------------------------
    def append_delta(self, site_id: str, obj) -> None:
        self._request("append_delta", site=str(site_id), obj=dict(obj))

    def get_deltas(
        self, site_id: str, after_seq: int, stream: Optional[str] = None
    ) -> List[dict]:
        return self._request(
            "get_deltas", site=str(site_id),
            after_seq=int(after_seq), stream=stream,
        )

    def get_state(self, site_id: str) -> Tuple[str, int, Dict[str, dict]]:
        stream, seq, state = self._request("get_state", site=str(site_id))
        return stream, seq, state

    def delta_tail(self, site_id: str) -> Optional[Tuple[str, int]]:
        tail = self._request("delta_tail", site=str(site_id))
        return None if tail is None else (tail[0], tail[1])

    def delta_sites(self) -> List[str]:
        return self._request("delta_sites")

    def delete(self, site_id: str) -> None:
        self._request("delete", site=str(site_id))

    # -- service operations beyond the store surface -------------------
    def check(self):
        """Ask the service for one detection pass over this tenant;
        returns the decoded :class:`DeadlockReport` or ``None``."""
        from repro.trace.events import report_from_obj

        obj = self._request("check")
        return None if obj is None else report_from_obj(obj)

    def reports(self) -> list:
        """The tenant's distinct service-side reports, decoded."""
        from repro.trace.events import report_from_obj

        return [report_from_obj(obj) for obj in self._request("reports")]

    def health(self) -> dict:
        """This tenant's health document."""
        return self._request("health")

    def health_all(self) -> dict:
        """The aggregate all-tenants health document."""
        return self._request("health", tenant=None)

    def ping(self) -> dict:
        return self._request("ping")
