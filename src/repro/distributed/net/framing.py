"""Length-prefixed JSON framing: the checker service's wire format.

One frame is a 4-byte big-endian payload length followed by that many
bytes of compact UTF-8 JSON.  The framing is deliberately the dumbest
thing that works: the delta protocol already defines the *semantics*
that cross the wire (per-site sequenced objects, validated by
:func:`repro.distributed.delta.validate_extends` on both ends), so the
transport only needs to move JSON objects intact and detect truncation.

Both halves live here — blocking-socket helpers for the client
(:func:`send_frame`/:func:`recv_frame`) and asyncio stream helpers for
the server (:func:`read_frame`/:func:`write_frame`) — so the two sides
cannot drift: they share :func:`encode_frame`/:func:`decode_payload`.

A frame larger than :data:`MAX_FRAME_BYTES` raises :class:`FrameError`
on *both* send and receive.  On receive this is the safety property: a
corrupt or malicious length prefix must fail fast instead of making the
reader allocate gigabytes.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_payload",
    "send_frame",
    "recv_frame",
    "read_frame",
    "write_frame",
]

#: Frame size ceiling (64 MiB): far above any real checkpoint, far
#: below anything that could hurt the process.
MAX_FRAME_BYTES = 64 << 20

_HEADER = struct.Struct(">I")


class FrameError(RuntimeError):
    """A frame violates the wire format (oversized, truncated, not JSON)."""


def encode_frame(obj) -> bytes:
    """One message as wire bytes: length prefix + compact JSON."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds "
                         f"{MAX_FRAME_BYTES}-byte ceiling")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes):
    """The JSON object carried by one frame's payload bytes."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not JSON: {exc}") from exc


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"peer announced a {length}-byte frame "
                         f"(ceiling {MAX_FRAME_BYTES})")


# ---------------------------------------------------------------------------
# blocking-socket half (the client)
# ---------------------------------------------------------------------------
def send_frame(sock: socket.socket, obj) -> None:
    """Write one message to a blocking socket."""
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes, or ``None`` on EOF at a frame boundary;
    EOF *inside* a frame is a truncation and raises."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return None
            raise FrameError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    """Read one message from a blocking socket.

    Returns the decoded object, or ``None`` when the peer closed the
    connection cleanly between frames.  A close mid-frame — header or
    payload — raises :class:`FrameError` (the message was truncated).
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:  # EOF right after a header: still truncation
        raise FrameError("connection closed between header and payload")
    return decode_payload(payload)


# ---------------------------------------------------------------------------
# asyncio half (the server)
# ---------------------------------------------------------------------------
async def read_frame(reader):
    """Read one message from an asyncio stream reader (``None`` on clean
    EOF between frames; :class:`FrameError` on truncation)."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_payload(payload)


def write_frame(writer, obj) -> None:
    """Queue one message on an asyncio stream writer (pair with
    ``await writer.drain()``)."""
    writer.write(encode_frame(obj))
