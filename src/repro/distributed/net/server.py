"""The checker service's TCP transport: asyncio, length-prefixed JSON.

:class:`CheckerService` binds a
:class:`~repro.distributed.net.service.CheckerServiceCore` to a real
socket.  Each client connection is one asyncio task running a simple
request/response loop (read one frame, dispatch, write one frame);
dispatch itself is synchronous — every operation is O(change) store or
checker work under the tenant lock — so a single event loop serialises
the hot path without thread hand-offs, which is exactly the regime the
open-loop bench measures.

Lifecycle mirrors :class:`~repro.obs.server.MetricsHTTPServer`:

* :meth:`start` runs the event loop in a daemon thread and returns once
  the socket is bound (``port=0`` picks a free port, read it back from
  :attr:`port`) — the embedded form tests and benches use;
* :meth:`serve_forever` runs the loop on the calling thread — the
  ``python -m repro.distributed serve`` form;
* :meth:`stop` is idempotent, joins the loop thread, and returns a
  clean/dirty flag like :meth:`repro.distributed.site.Site.stop` — a
  wedged loop is *reported*, never silently leaked.

A periodic task runs one detection pass per tenant every
``check_interval_s`` (0 disables it: tests drive checks explicitly
through the ``check`` op), so deadlock reports land without any client
polling and ``/healthz`` flips to 503 service-side.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from typing import Optional

from repro.core.selection import GraphModel
from repro.distributed.net.framing import FrameError, encode_frame, read_frame
from repro.distributed.net.service import CheckerServiceCore

log = logging.getLogger(__name__)

__all__ = ["CheckerService", "DEFAULT_PORT"]

#: Default service port (obs serves 9464 next door).
DEFAULT_PORT = 9555

#: The paper's distributed detection period (matches Site's default).
DEFAULT_CHECK_INTERVAL_S = 0.2


class CheckerService:
    """A network-native checker service over :class:`CheckerServiceCore`.

    Construction does not bind the socket; :meth:`start` (background
    thread) or :meth:`serve_forever` (calling thread) does, and
    :attr:`port`/:attr:`address` are valid once either returns control
    (``start`` blocks until the socket is live).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        model: GraphModel = GraphModel.AUTO,
        check_interval_s: float = DEFAULT_CHECK_INTERVAL_S,
        metrics=None,
        tracer=None,
        store_factory=None,
    ) -> None:
        self.host = host
        self.port = port
        self.check_interval_s = max(0.0, float(check_interval_s))
        self.core = CheckerServiceCore(
            model=model, metrics=metrics, tracer=tracer,
            store_factory=store_factory,
        )
        if metrics is None:
            from repro.obs.registry import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        self._m_connections = metrics.counter(
            "repro_net_connections_total",
            "Client connections accepted by the checker service.",
        )
        self._m_check_rounds = metrics.counter(
            "repro_net_check_rounds_total",
            "Periodic service-side detection rounds, across tenants.",
            volatile=True,
        )
        self._m_check_seconds = metrics.histogram(
            "repro_net_check_duration_seconds",
            "Service-side detection pass latency.",
            buckets=(0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0),
            volatile=True,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    # -- obs-server integration pass-throughs --------------------------
    def health_doc(self, tenant: Optional[str] = None) -> dict:
        return self.core.health_doc(tenant)

    def tracer_for(self, tenant: Optional[str] = None):
        return self.core.tracer_for(tenant)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection handling -------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        self._m_connections.inc()
        self._conn_tasks.add(asyncio.current_task())
        try:
            while True:
                request = await read_frame(reader)
                if request is None:
                    break
                writer.write(encode_frame(self.core.handle(request)))
                await writer.drain()
        except (FrameError, ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished or spoke garbage: drop the connection
        except OSError:
            pass
        except asyncio.CancelledError:
            pass  # service shutdown with the connection still open
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _periodic_checks(self) -> None:
        while True:
            await asyncio.sleep(self.check_interval_s)
            for name in self.core.tenant_names():
                started = time.perf_counter()
                try:
                    self.core.tenant(name).check()
                except Exception:
                    # A tenant with an unavailable / conflicted store
                    # must not stall the others; its own health doc and
                    # error counters carry the evidence.
                    log.exception("periodic check failed for tenant %s", name)
                self._m_check_rounds.inc()
                self._m_check_seconds.observe(time.perf_counter() - started)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_conn, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        checker_task = (
            asyncio.create_task(self._periodic_checks())
            if self.check_interval_s > 0 else None
        )
        try:
            async with server:
                await self._stop_async.wait()
        finally:
            if checker_task is not None:
                checker_task.cancel()
            # Drain still-open client connections deliberately, so loop
            # teardown never reaps half-cancelled handler tasks.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *list(self._conn_tasks), return_exceptions=True
                )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "CheckerService":
        """Serve in a daemon thread; returns once the socket is bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="checker-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(10):
            raise RuntimeError("checker service failed to start within 10s")
        if self._startup_error is not None:
            self._thread.join(5)
            raise RuntimeError(
                f"checker service could not bind {self.host}:{self.port}"
            ) from self._startup_error
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception:
            if self._startup_error is None:  # bind errors already surfaced
                log.exception("checker service event loop died")
            self._started.set()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted or stopped."""
        asyncio.run(self._main())

    def stop(self, timeout: float = 5.0) -> bool:
        """Shut down; returns ``True`` when the loop thread exited
        within ``timeout`` (``False`` = dirty: logged, thread leaked)."""
        if self._stopped:
            return True
        self._stopped = True
        if self._loop is not None and self._stop_async is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:
                pass  # loop already closed
        clean = True
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                log.warning(
                    "checker service thread still alive %.1fs after stop",
                    timeout,
                )
                clean = False
            self._thread = None
        return clean

    def __enter__(self) -> "CheckerService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
