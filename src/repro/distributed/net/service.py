"""The multi-tenant checker service core (transport-free).

:class:`TenantChecker` is one tenant namespace: its own store (default
an :class:`~repro.distributed.store.InMemoryStore`, or anything with
the five-method delta surface — e.g. a
:class:`~repro.distributed.store.ReplicatedStore` for the
fault-injection suite), one maintained
:class:`~repro.distributed.detector.DistributedChecker`
(``DeltaMergeState`` + ``IncrementalChecker``), a distinct-report log,
and service-side provenance: every accepted append feeds an
:class:`~repro.obs.tracing.OriginTracker`, so a report the service
files carries per-edge ``(site, stream, seq)`` origins — the same
enrichment the replay engines attach, derived here from the live
stream instead of a recorded trace.

:class:`CheckerServiceCore` maps wire requests (plain dicts) to tenant
operations and wire responses, with exceptions encoded faithfully:
``DeltaSequenceError`` and ``StoreUnavailableError`` cross the wire as
typed errors and are re-raised as the same classes client-side, which
is what lets :class:`~repro.distributed.net.client.RemoteStore` be a
drop-in store — publisher gap recovery and replica-heal semantics
survive the hop because the error *types* do.

The TCP transport wrapping this core lives in
:mod:`repro.distributed.net.server`; keeping the core transport-free is
what the protocol unit tests (and any future transport) build on.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.report import DeadlockReport
from repro.core.selection import GraphModel
from repro.distributed.delta import DeltaSequenceError
from repro.distributed.detector import DistributedChecker
from repro.distributed.store import InMemoryStore, StoreUnavailableError

log = logging.getLogger(__name__)

__all__ = ["TenantChecker", "CheckerServiceCore", "DEFAULT_TENANT"]

#: The namespace used when a client does not name one.
DEFAULT_TENANT = "default"

#: Typed wire errors: error kind <-> exception class, shared with the
#: client so a server-side raise resurfaces as the same type.
WIRE_ERRORS = {
    "sequence": DeltaSequenceError,
    "unavailable": StoreUnavailableError,
    "value": ValueError,
}


class _PseudoRecord:
    """The minimal record surface :class:`OriginTracker.observe` needs,
    synthesised from a live wire delta (no trace file involved)."""

    __slots__ = ("seq", "kind", "site", "payload", "task")

    def __init__(self, seq: int, kind, site: str, payload: Mapping) -> None:
        self.seq = seq
        self.kind = kind
        self.site = site
        self.payload = payload
        self.task = None


class TenantChecker:
    """One tenant namespace of the checker service.

    All mutation goes through ``self._lock`` — the asyncio transport
    serialises requests per loop, but the periodic check task, the obs
    HTTP threads (health scrapes) and embedding tests reach in from
    other threads.  The store keeps its own internal lock; holding the
    tenant lock across store calls keeps append-order and the origin
    ordinal consistent.
    """

    def __init__(
        self,
        name: str,
        store=None,
        model: GraphModel = GraphModel.AUTO,
        metrics=None,
        tracer=None,
    ) -> None:
        from repro.obs.tracing import NULL_TRACER, OriginTracker

        self.name = str(name)
        self.store = store if store is not None else InMemoryStore(
            name=f"tenant:{self.name}", metrics=metrics
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.checker = DistributedChecker(
            self.store, model=model, metrics=metrics, tracer=self.tracer
        )
        self.reports: List[DeadlockReport] = []
        self._seen_cycles: set = set()
        self._origins = OriginTracker()
        self._ordinal = 0
        self._lock = threading.Lock()

    # -- the five-method store surface, tenant-scoped ------------------
    def append_delta(self, site: str, obj: Mapping) -> None:
        from repro.trace.events import RecordKind, delta_payload_from_obj

        payload = delta_payload_from_obj(obj)  # reject malformed input loudly
        with self._lock:
            self.store.append_delta(site, payload)
            # Only an *accepted* append advances provenance: a gapped or
            # rejected delta never entered the analysed view.
            self._ordinal += 1
            self._origins.observe(_PseudoRecord(
                self._ordinal, RecordKind.PUBLISH_DELTA, str(site), payload
            ))

    def get_deltas(self, site: str, after_seq: int,
                   stream: Optional[str] = None) -> List[dict]:
        with self._lock:
            return self.store.get_deltas(site, after_seq, stream)

    def get_state(self, site: str):
        with self._lock:
            return self.store.get_state(site)

    def delta_tail(self, site: str):
        with self._lock:
            return self.store.delta_tail(site)

    def delta_sites(self) -> List[str]:
        with self._lock:
            return self.store.delta_sites()

    def delete(self, site: str) -> None:
        with self._lock:
            self.store.delete(site)

    # -- checking ------------------------------------------------------
    def check(self) -> Optional[DeadlockReport]:
        """One detection pass over the tenant's published state.

        Returns the (provenance-enriched) report when the view holds a
        cycle — every pass, so remote pollers always see it — while the
        tenant's ``reports`` log keeps one entry per distinct cycle.
        """
        from repro.obs.tracing import attach_provenance

        with self._lock:
            report = self.checker.check_global()
            if report is None:
                return None
            statuses = self.checker.view.merged_snapshot().statuses
            enriched, _ = attach_provenance(report, self._origins, statuses)
            key = frozenset(enriched.tasks)
            if key not in self._seen_cycles:
                self._seen_cycles.add(key)
                self.reports.append(enriched)
            return enriched

    # -- introspection -------------------------------------------------
    def health_doc(self) -> dict:
        """The tenant's slice of the ``/healthz`` document."""
        from repro.obs.health import unique_report_entries

        with self._lock:
            stats = self.checker.stats
            blocked = sum(
                len(bucket) for bucket in self.checker.view.buckets.values()
            )
            return {
                "status": "deadlock" if self.reports else "ok",
                "tenant": self.name,
                "sites": sorted(str(s) for s in self.checker.view.sites()),
                "blocked_tasks": blocked,
                "checks": stats.checks,
                "cycles_found": stats.cycles_found,
                "report_count": len(self.reports),
                "reports": unique_report_entries(self.reports),
            }

    def report_objs(self) -> List[dict]:
        from repro.trace.events import report_to_obj

        with self._lock:
            return [report_to_obj(r) for r in self.reports]


class CheckerServiceCore:
    """Request dispatch: one wire request dict in, one response dict out.

    Tenants are created on first touch (open tenancy — the service is a
    lab instrument, not a hardened endpoint); ``store_factory`` lets
    embedders hand specific tenants specific stores (the network-
    partition suite backs a tenant with a :class:`ReplicatedStore`).
    """

    def __init__(
        self,
        model: GraphModel = GraphModel.AUTO,
        metrics=None,
        tracer=None,
        store_factory: Optional[Callable[[str], object]] = None,
    ) -> None:
        if metrics is None:
            from repro.obs.registry import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        self.model = model
        self.tracer = tracer
        self.store_factory = store_factory
        self.tenants: Dict[str, TenantChecker] = {}
        self._tenants_lock = threading.Lock()
        self._m_requests = metrics.counter(
            "repro_net_requests_total",
            "Checker-service requests served, by operation.",
            labels=("op",),
        )
        self._m_errors = metrics.counter(
            "repro_net_errors_total",
            "Checker-service requests answered with a typed error.",
            labels=("error",),
        )
        self._ops: Dict[str, Callable] = {
            "append_delta": self._op_append_delta,
            "get_deltas": self._op_get_deltas,
            "get_state": self._op_get_state,
            "delta_tail": self._op_delta_tail,
            "delta_sites": self._op_delta_sites,
            "delete": self._op_delete,
            "check": self._op_check,
            "reports": self._op_reports,
            "health": self._op_health,
            "ping": self._op_ping,
        }

    # -- tenancy -------------------------------------------------------
    def tenant(self, name: str) -> TenantChecker:
        name = str(name)
        with self._tenants_lock:
            tenant = self.tenants.get(name)
            if tenant is None:
                store = (
                    self.store_factory(name)
                    if self.store_factory is not None else None
                )
                tenant = TenantChecker(
                    name, store=store, model=self.model,
                    metrics=self.metrics, tracer=self.tracer,
                )
                self.tenants[name] = tenant
        return tenant

    def tenant_names(self) -> List[str]:
        with self._tenants_lock:
            return sorted(self.tenants)

    # -- the obs-server integration surface ----------------------------
    def health_doc(self, tenant: Optional[str] = None) -> dict:
        """Aggregate (or per-tenant) ``/healthz`` document.  Unknown
        tenant names raise :class:`KeyError` (the HTTP layer 404s)."""
        if tenant is not None:
            with self._tenants_lock:
                entry = self.tenants[str(tenant)]
            return entry.health_doc()
        with self._tenants_lock:
            tenants = dict(self.tenants)
        docs = {name: t.health_doc() for name, t in sorted(tenants.items())}
        deadlocked = sorted(
            name for name, doc in docs.items() if doc["status"] != "ok"
        )
        return {
            "status": "deadlock" if deadlocked else "ok",
            "mode": "checker-service",
            "tenant_count": len(docs),
            "deadlocked_tenants": deadlocked,
            "tenants": docs,
        }

    def tracer_for(self, tenant: Optional[str] = None):
        """The span source ``/spans`` renders: the service-wide tracer
        (tenants share it — span tracks are labelled per tenant store)."""
        return self.tracer

    # -- dispatch ------------------------------------------------------
    def handle(self, request) -> dict:
        if not isinstance(request, Mapping) or "op" not in request:
            return {"ok": False, "error": "protocol",
                    "message": "request must be an object with an 'op'"}
        op = request["op"]
        handler = self._ops.get(op)
        if handler is None:
            return {"ok": False, "error": "protocol",
                    "message": f"unknown op {op!r}"}
        self._m_requests.inc(op=str(op))
        try:
            value = handler(request)
        except DeltaSequenceError as exc:
            self._m_errors.inc(error="sequence")
            return {"ok": False, "error": "sequence", "message": str(exc)}
        except StoreUnavailableError as exc:
            self._m_errors.inc(error="unavailable")
            return {"ok": False, "error": "unavailable", "message": str(exc)}
        except (ValueError, KeyError, TypeError) as exc:
            self._m_errors.inc(error="value")
            return {"ok": False, "error": "value",
                    "message": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # never let one request kill the server
            log.exception("checker service: %s request failed", op)
            self._m_errors.inc(error="internal")
            return {"ok": False, "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}"}
        return {"ok": True, "value": value}

    def _tenant_of(self, request) -> TenantChecker:
        return self.tenant(request.get("tenant", DEFAULT_TENANT))

    # -- per-op handlers ----------------------------------------------
    def _op_append_delta(self, request):
        self._tenant_of(request).append_delta(
            str(request["site"]), request["obj"]
        )
        return None

    def _op_get_deltas(self, request):
        return self._tenant_of(request).get_deltas(
            str(request["site"]),
            int(request["after_seq"]),
            request.get("stream"),
        )

    def _op_get_state(self, request):
        stream, seq, state = self._tenant_of(request).get_state(
            str(request["site"])
        )
        return [stream, seq, state]

    def _op_delta_tail(self, request):
        tail = self._tenant_of(request).delta_tail(str(request["site"]))
        return None if tail is None else [tail[0], tail[1]]

    def _op_delta_sites(self, request):
        return self._tenant_of(request).delta_sites()

    def _op_delete(self, request):
        self._tenant_of(request).delete(str(request["site"]))
        return None

    def _op_check(self, request):
        from repro.trace.events import report_to_obj

        report = self._tenant_of(request).check()
        return None if report is None else report_to_obj(report)

    def _op_reports(self, request):
        return self._tenant_of(request).report_objs()

    def _op_health(self, request):
        name = request.get("tenant")
        if name is None:
            return self.health_doc(None)
        self.tenant(name)  # open tenancy: asking after a namespace opens it
        return self.health_doc(name)

    def _op_ping(self, request):
        return {"server": "repro-checker", "tenants": self.tenant_names()}
