"""X10-style places: a cluster of sites sharing one store.

Mirrors the paper's distributed deployment sketch::

    finish for (p in CLUSTER) at (p) async example();

:class:`Cluster` wires ``n`` sites to a (optionally replicated) store and
offers the fork/join-across-places idiom.  Clocks span places: create a
:class:`~repro.runtime.clock.Clock` on any site's runtime and register
tasks of other sites — event names are global, so each site's local
constraints compose into the global analysis without coordination.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.core.selection import GraphModel
from repro.distributed.site import Site
from repro.distributed.store import InMemoryStore, ReplicatedStore
from repro.runtime.tasks import Task


class Cluster:
    """``n`` places over a shared, optionally replicated, store."""

    def __init__(
        self,
        n_places: int,
        model: GraphModel = GraphModel.AUTO,
        replicas: int = 1,
        check_interval_s: float = 0.2,
        publish_interval_s: float = 0.05,
        cancel_on_detect: bool = True,
        recorder=None,
    ) -> None:
        if n_places < 1:
            raise ValueError("need at least one place")
        stores = [InMemoryStore(name=f"replica{i}") for i in range(max(1, replicas))]
        self.store_replicas = stores
        # One recorder covers the whole cluster: every place's
        # block/unblock stream plus the store's publish stream land in a
        # single totally-ordered trace.
        if len(stores) == 1:
            stores[0].recorder = recorder
            self.store = stores[0]
        else:
            self.store = ReplicatedStore(stores, recorder=recorder)
        self.places: List[Site] = [
            Site(
                f"place{i}",
                self.store,
                model=model,
                check_interval_s=check_interval_s,
                publish_interval_s=publish_interval_s,
                cancel_on_detect=cancel_on_detect,
                recorder=recorder,
            )
            for i in range(n_places)
        ]

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Cluster":
        for place in self.places:
            place.start()
        return self

    def stop(self) -> None:
        for place in self.places:
            place.stop()

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __len__(self) -> int:
        return len(self.places)

    def __getitem__(self, index: int) -> Site:
        return self.places[index]

    # -- the fork/join-across-places idiom -------------------------------------
    def run_everywhere(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
    ) -> List[Task]:
        """``for (p in CLUSTER) at (p) async fn(p, ...)``.

        ``fn`` receives the :class:`Site` as its first argument.  Returns
        the spawned tasks; join them for the ``finish``.
        """
        tasks = []
        for place in self.places:
            tasks.append(
                place.spawn(
                    fn,
                    place,
                    *args,
                    name=f"{name or fn.__name__}@{place.site_id}",
                )
            )
        return tasks

    def join_all(self, tasks: Sequence[Task], timeout: float = 60.0) -> list:
        """Join every task, re-raising the first failure."""
        return [t.join(timeout) for t in tasks]

    # -- aggregate accounting ----------------------------------------------------
    def all_reports(self) -> list:
        out = []
        for place in self.places:
            out.extend(place.reports)
        return out

    def total_check_stats(self):
        """Merged checker statistics across places."""
        from repro.core.checker import CheckStats

        merged = CheckStats()
        for place in self.places:
            merged.merge(place.checker.stats)
        return merged
