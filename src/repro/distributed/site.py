"""A distributed site: one place of an X10-style cluster (Section 5.2).

Each site owns an :class:`~repro.runtime.verifier.ArmusRuntime` whose
blocked statuses it periodically publishes to the global store, plus a
checking loop running the one-phase detection over the global view.
Every site checks (fault tolerance: no control site); reports are
de-duplicated per site and the involved *local* tasks are cancelled,
while remote tasks are cancelled by their own site when it observes the
same cycle.

Publishing runs the **delta protocol**
(:mod:`repro.distributed.delta`): each round the site diffs its
runtime's dependency against the last committed publication and appends
only the change — a ``set``/``restore``/``clear`` delta, or nothing at
all when the blocked set is unchanged — with a full snapshot checkpoint
on the first publish, every ``checkpoint_every`` deltas, and whenever
the store reports a sequence gap (its history diverged from the
publisher's, e.g. after failover onto a stale replica).  Both loops run
their body once *immediately* on start, then on their interval — a
short-lived site is visible to the cluster from its first scheduling
quantum instead of after ``publish_interval_s``.

Failure injection for tests and fault-tolerance benches:

* :meth:`Site.kill` — abrupt site death: loops stop, its stale delta
  stream remains in the store (exactly what a crashed machine leaves
  behind);
* store outages — both loops tolerate
  :class:`~repro.distributed.store.StoreUnavailableError` by skipping the
  round, and recover when the store returns; an un-committed delta is
  re-derived next round, so outages never burn sequence numbers.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Dict, List, Optional

from repro.core.report import DeadlockReport
from repro.core.selection import GraphModel
from repro.distributed.delta import (
    DEFAULT_CHECKPOINT_EVERY,
    DeltaPublisher,
    DeltaSequenceError,
    encode_bucket,
)
from repro.distributed.detector import DistributedChecker
from repro.distributed.store import StoreUnavailableError
from repro.runtime.tasks import Task
from repro.runtime.verifier import ArmusRuntime, VerificationMode

log = logging.getLogger(__name__)

#: The paper's distributed detection period (Armus-X10: every 200 ms).
DEFAULT_CHECK_INTERVAL_S = 0.2
DEFAULT_PUBLISH_INTERVAL_S = 0.05


class Site:
    """One place of the simulated cluster.

    Parameters
    ----------
    site_id:
        Unique site name (its bucket key in the store).
    store:
        The shared global store (or a replicated facade).
    model:
        Graph model for the site's global checks.
    check_interval_s / publish_interval_s:
        Cadences of the two loops.
    checkpoint_every:
        Publisher checkpoint cadence: a full snapshot delta every this
        many ordinary deltas (bounds store log length and cold-reader
        catch-up cost).
    cancel_on_detect:
        Cancel local tasks involved in a detected cycle.
    recorder:
        Optional :class:`~repro.trace.recorder.TraceRecorder` wired into
        this site's runtime, capturing its tasks' block/unblock stream
        (attach the same recorder to the store to also capture
        publishes).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`,
        propagated to the site's runtime and global checker.  The site
        itself adds publish-outcome counters (delta / checkpoint / noop
        / gap-forced checkpoint) and a delta op-size histogram, all
        labelled by ``site``.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`, propagated to the
        runtime (block spans) and global checker (sync spans).  The
        site itself spans each publish round on its ``site:<id>`` track
        and — when tracing is enabled — publishes deltas with a wire
        trace context (``carry_trace``), so a consumer can tie a store
        entry back to the publish span that produced it.
    """

    def __init__(
        self,
        site_id: str,
        store,
        model: GraphModel = GraphModel.AUTO,
        check_interval_s: float = DEFAULT_CHECK_INTERVAL_S,
        publish_interval_s: float = DEFAULT_PUBLISH_INTERVAL_S,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        cancel_on_detect: bool = True,
        on_deadlock: Optional[Callable[[DeadlockReport], None]] = None,
        recorder=None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.site_id = site_id
        self.store = store
        if metrics is None:
            from repro.obs.registry import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        # Local runtime in DETECTION mode: blocking ops publish statuses
        # into the local dependency; the monitor stays off — the site's
        # own checking loop replaces it.
        self.runtime = ArmusRuntime(
            mode=VerificationMode.DETECTION,
            model=model,
            cancel_on_detect=False,
            recorder=recorder,
            metrics=metrics,
            tracer=tracer,
        )
        self.checker = DistributedChecker(
            store, model=model, metrics=metrics, tracer=tracer
        )
        self.publisher = DeltaPublisher(
            site_id, checkpoint_every=checkpoint_every,
            carry_trace=tracer.enabled,
        )
        self.check_interval_s = check_interval_s
        self.publish_interval_s = publish_interval_s
        self.cancel_on_detect = cancel_on_detect
        self.on_deadlock = on_deadlock
        self.reports: List[DeadlockReport] = []
        self.publish_failures = 0
        self.check_failures = 0
        #: Unexpected loop-body failures, by loop name ("publisher" /
        #: "checker").  A populated slot means that loop thread is dead:
        #: the site looks idle from outside but is not publishing (or
        #: not checking) — callers and health surfaces must be able to
        #: see the difference.
        self.loop_errors: Dict[str, BaseException] = {}
        self._seen_cycles: set = set()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._alive = False
        self._m_publishes = metrics.counter(
            "repro_site_publishes_total",
            "Publish rounds, by outcome: noop (no change), delta, "
            "checkpoint (cadence), gap_checkpoint (store lost our "
            "tail), failure (store unreachable), error (loop body "
            "raised; the publisher thread is dead).",
            labels=("site", "outcome"),
        )
        self._m_delta_ops = metrics.histogram(
            "repro_site_delta_ops",
            "Operations per published delta (diff size).",
            labels=("site",),
        )
        self._m_check_rounds = metrics.counter(
            "repro_site_check_rounds_total",
            "Global detection rounds run by this site.",
            labels=("site",), volatile=True,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Site":
        with self._lock:
            if self._alive:
                return self
            self._alive = True
        self._stop.clear()
        for name, target, interval in (
            ("publisher", self._publish_once, self.publish_interval_s),
            ("checker", self._check_once, self.check_interval_s),
        ):
            thread = threading.Thread(
                target=self._loop,
                args=(name, target, interval),
                name=f"{self.site_id}-{name}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 5.0) -> bool:
        """Graceful shutdown: loops drain, the delta stream is withdrawn.

        Returns ``True`` when every loop thread exited within
        ``timeout``.  A thread still alive after its join — a wedged
        loop body — is logged and makes the result ``False``; the
        wedged threads stay tracked (not silently dropped), so a later
        ``stop`` can observe whether they ever died.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
            if thread.is_alive():
                log.warning(
                    "site %s: loop thread %s still alive %.1fs after stop "
                    "(wedged body? shutdown is dirty)",
                    self.site_id, thread.name, timeout,
                )
        self._threads = [t for t in self._threads if t.is_alive()]
        clean = not self._threads
        with self._lock:
            self._alive = False
        try:
            self.store.delete(self.site_id)
        except StoreUnavailableError:
            pass
        return clean

    def kill(self) -> None:
        """Abrupt site death: loops stop, the stale delta stream stays
        behind in the store."""
        self._stop.set()
        with self._lock:
            self._alive = False

    @property
    def alive(self) -> bool:
        with self._lock:
            return self._alive

    def __enter__(self) -> "Site":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # spawning (the at (p) async of X10)
    # ------------------------------------------------------------------
    def spawn(self, fn, *args, **kwargs) -> Task:
        """Run a task at this place (``at (p) async S``)."""
        return self.runtime.spawn(fn, *args, **kwargs)

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def _loop(self, name: str, body: Callable[[], None], interval: float) -> None:
        # The body runs once immediately: a site that lives for less
        # than one interval still publishes (and checks) at least once,
        # instead of being invisible to the cluster for its whole life.
        publishing = name == "publisher"
        while True:
            try:
                body()
            except StoreUnavailableError:
                # Fault tolerance: skip the round, try again next period.
                if publishing:
                    self.publish_failures += 1
                    self._m_publishes.inc(site=self.site_id, outcome="failure")
                else:
                    self.check_failures += 1
            except Exception as exc:
                # Anything else kills this loop thread.  From the
                # caller's perspective the site would just go silent —
                # record the failure where it can be observed (error
                # slot + failure metric + log) before re-raising.
                self.loop_errors[name] = exc
                if publishing:
                    self._m_publishes.inc(site=self.site_id, outcome="error")
                log.exception(
                    "site %s: %s loop died (the site is no longer %s)",
                    self.site_id, name,
                    "publishing" if publishing else "checking",
                )
                raise
            if self._stop.wait(interval):
                return

    def _publish_once(self) -> None:
        """Diff the runtime's blocked set against the last committed
        publication; append only the change.

        ``prepare``/``commit`` straddle the store write: an outage
        leaves the publisher state untouched (the change re-derives
        next round), and a sequence gap — the store lost our tail, e.g.
        failover onto a recovered-stale replica — is healed by forcing
        a full snapshot checkpoint.
        """
        start = self.tracer.next_ordinal() if self.tracer.enabled else 0
        snapshot = self.runtime.checker.dependency.snapshot()
        bucket = encode_bucket(snapshot.statuses)
        delta = self.publisher.prepare(bucket)
        if delta is None:
            self._m_publishes.inc(site=self.site_id, outcome="noop")
            return  # nothing changed: nothing crosses the wire
        outcome = "checkpoint" if delta["kind"] == "snapshot" else "delta"
        try:
            self.store.append_delta(self.site_id, delta)
        except DeltaSequenceError:
            delta = self.publisher.prepare_checkpoint(bucket)
            self.store.append_delta(self.site_id, delta)
            outcome = "gap_checkpoint"
        self.publisher.commit(delta)
        if self.tracer.enabled:
            self.tracer.complete(
                "site.publish", f"site:{self.site_id}", start,
                cat="publish", outcome=outcome, seq=delta["seq"],
                stream=delta["stream"],
            )
        self._m_publishes.inc(site=self.site_id, outcome=outcome)
        if delta["kind"] == "delta":
            self._m_delta_ops.observe(
                len(delta["set"]) + len(delta["restore"]) + len(delta["clear"]),
                site=self.site_id,
            )

    def _check_once(self) -> None:
        self._m_check_rounds.inc(site=self.site_id)
        start = self.tracer.next_ordinal() if self.tracer.enabled else 0
        report = self.checker.check_global()
        if self.tracer.enabled:
            self.tracer.complete(
                "site.check", f"site:{self.site_id}", start, cat="check",
                deadlocked=report is not None,
            )
        if report is None:
            return
        key = frozenset(report.tasks)
        if key in self._seen_cycles:
            return
        self._seen_cycles.add(key)
        self.reports.append(report)
        if self.on_deadlock is not None:
            self.on_deadlock(report)
        if self.cancel_on_detect:
            self._cancel_local(report)

    def _cancel_local(self, report: DeadlockReport) -> None:
        for task_id in report.tasks:
            task = self.runtime.task_by_id(task_id)
            if task is not None and task.runtime is self.runtime:
                task.cancel(report)

    # ------------------------------------------------------------------
    def poll_detection(self) -> Optional[DeadlockReport]:
        """Run one synchronous publish+check round (tests, benches)."""
        self._publish_once()
        before = len(self.reports)
        self._check_once()
        return self.reports[-1] if len(self.reports) > before else None
