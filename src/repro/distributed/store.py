"""The global resource-dependency store (the paper's Redis).

Sites publish under their own key — writes are disjoint by
construction, so no cross-site coordination is needed — and checkers
read the other sites' publications.  Everything crosses the "wire" in
an explicit serialised form (plain lists/dicts), keeping the store
substitutable by a real network KV store.

**The delta protocol** (the live surface; see
:mod:`repro.distributed.delta`): each site owns an append-only *delta
stream* — :meth:`InMemoryStore.append_delta` validates that a delta
extends the stream's tail (a mismatch raises
:class:`~repro.distributed.delta.DeltaSequenceError`: the publisher
must checkpoint), materialises a per-site state bucket as deltas
arrive, and compacts the log at every snapshot.  Checkers poll
:meth:`InMemoryStore.get_deltas` from their cursor — O(change) per
round — and fall back to :meth:`InMemoryStore.get_state` (a full
checkpoint read) when their cursor falls off the retained log.

**The bucket protocol** (``put``/``get``/``get_all``) is retained as a
legacy surface: old recorded traces replay through it, and the
delta-vs-bucket benchmark uses it as the reference cost model.  The
live ``Site`` path no longer publishes buckets.

Fault injection: :meth:`InMemoryStore.set_available` simulates an outage
(operations raise :class:`StoreUnavailableError`);
:class:`ReplicatedStore` layers Redis-style failover on top, so detection
survives the loss of a replica — the property the paper relies on for
"the algorithm resists (ii) because Redis itself is fault-tolerant".
Under the delta protocol a replica that recovers *stale* rejects the
next append with a sequence gap; the facade heals it with a checkpoint
synthesised from a healthy replica's materialised state, so the
fault-injection story (lose a replica mid-run, keep detecting) survives
the protocol change.

``recorder`` (an optional :class:`~repro.trace.recorder.TraceRecorder`)
captures every successful ``append_delta`` as a ``publish_delta`` trace
record — and every legacy ``put`` as a ``publish`` record — the
site-publish observation points of the trace subsystem.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.events import BlockedStatus, Event, TaskId
from repro.distributed.delta import (
    Cursor,
    DeltaSequenceError,
    apply_ops_to_bucket,
    make_snapshot,
    validate_extends,
    wire_size,
)

#: Store-side log retention: entries kept per site beyond the last
#: snapshot.  Publishers checkpoint more often than this, so the cap is
#: a backstop for foreign publishers that never do.
DEFAULT_MAX_LOG = 256


class StoreUnavailableError(RuntimeError):
    """The data store (or every replica) is unreachable."""


# ---------------------------------------------------------------------------
# wire format (the per-status encoding; shared with the delta protocol)
# ---------------------------------------------------------------------------
def encode_statuses(statuses: Mapping[TaskId, BlockedStatus]) -> dict:
    """Serialise blocked statuses to a plain JSON-able structure."""
    return {
        str(task): {
            "waits": sorted([str(e.phaser), e.phase] for e in status.waits),
            "registered": {str(p): n for p, n in status.registered.items()},
            "generation": status.generation,
        }
        for task, status in statuses.items()
    }


def decode_statuses(payload: Mapping) -> Dict[str, BlockedStatus]:
    """Inverse of :func:`encode_statuses`."""
    out: Dict[str, BlockedStatus] = {}
    for task, blob in payload.items():
        out[task] = BlockedStatus(
            waits=frozenset(Event(p, n) for p, n in blob["waits"]),
            registered=dict(blob["registered"]),
            generation=blob.get("generation", 0),
        )
    return out


# ---------------------------------------------------------------------------
# stores
# ---------------------------------------------------------------------------
class InMemoryStore:
    """A thread-safe per-site store with injectable outages.

    Holds both surfaces: the delta streams of the live protocol and the
    legacy buckets.  Operation counters (``puts``/``gets``) are always
    kept; byte-level traffic accounting (``bytes_put``/``bytes_get``,
    a JSON-serialisation of every payload) is what the delta-vs-bucket
    benchmark compares and costs O(payload) per operation, so it is
    **opt-in** via ``track_bytes`` — the live path never pays it.

    All accounting lives in ``repro.obs`` counters (labelled by the
    store's ``name``): an enabled registry passed as ``metrics`` makes
    the traffic visible to live exporters, while the classic
    ``puts``/``gets``/``bytes_put``/``bytes_get`` attributes remain as
    read-only views so benchmarks and tests keep working unchanged.
    """

    def __init__(
        self,
        name: str = "store",
        recorder=None,
        max_log: int = DEFAULT_MAX_LOG,
        track_bytes: bool = False,
        metrics=None,
        tracer=None,
    ) -> None:
        self.name = name
        self.recorder = recorder
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.max_log = max(1, int(max_log))
        self.track_bytes = track_bytes
        self._lock = threading.Lock()
        self._buckets: Dict[str, dict] = {}
        # Delta-protocol state: per-site retained log, seq of the entry
        # before the first retained one, (stream, tail-seq) cursor,
        # materialised state.
        self._logs: Dict[str, List[dict]] = {}
        self._base: Dict[str, int] = {}
        self._tail: Dict[str, Cursor] = {}
        self._states: Dict[str, Dict[str, dict]] = {}
        self._available = True
        # Accounting instruments.  The counters must always function
        # (benchmarks read the view attributes below), so a disabled or
        # absent registry falls back to a private one.
        from repro.obs.registry import MetricsRegistry

        if metrics is not None and metrics.enabled:
            self.metrics = metrics
        else:
            self.metrics = MetricsRegistry()
        ops = self.metrics.counter(
            "repro_store_ops_total",
            "Store operations served, by store and direction.",
            labels=("store", "op"),
        )
        self._m_puts = ops.labels(store=name, op="put")
        self._m_gets = ops.labels(store=name, op="get")
        traffic = self.metrics.counter(
            "repro_store_bytes_total",
            "Wire bytes through the store (requires track_bytes).",
            labels=("store", "direction"),
        )
        self._m_bytes_put = traffic.labels(store=name, direction="put")
        self._m_bytes_get = traffic.labels(store=name, direction="get")
        appends = self.metrics.counter(
            "repro_store_appends_total",
            "Delta-stream appends accepted, by entry kind.",
            labels=("store", "kind"),
        )
        self._m_append_delta = appends.labels(store=name, kind="delta")
        self._m_append_snapshot = appends.labels(store=name, kind="snapshot")
        self._m_gaps = self.metrics.counter(
            "repro_store_delta_gaps_total",
            "Sequence/stream mismatches raised to delta producers and "
            "consumers (each one forces a checkpoint or resync).",
            labels=("store",),
        ).labels(store=name)

    # -- classic accounting attributes, now views over the counters ----
    @property
    def puts(self) -> int:
        return self._m_puts.value()

    @property
    def gets(self) -> int:
        return self._m_gets.value()

    @property
    def bytes_put(self) -> int:
        return self._m_bytes_put.value()

    @property
    def bytes_get(self) -> int:
        return self._m_bytes_get.value()

    # -- failure injection ---------------------------------------------------
    def set_available(self, available: bool) -> None:
        with self._lock:
            self._available = available

    @property
    def available(self) -> bool:
        with self._lock:
            return self._available

    def _check_up(self) -> None:
        if not self._available:
            raise StoreUnavailableError(f"{self.name} is down")

    # -- delta-protocol operations -------------------------------------------
    def append_delta(self, site_id: str, obj: Mapping) -> None:
        """Append one wire delta to ``site_id``'s stream.

        Snapshots are accepted at any position and reset the stream
        (first publish, checkpoint cadence, gap recovery); ordinary
        deltas must carry the stream's token and extend its tail by
        exactly one — anything else raises
        :class:`DeltaSequenceError`, telling the publisher this store's
        history diverged and a checkpoint is needed.
        """
        site_id = str(site_id)
        with self._lock:
            self._check_up()
            try:
                cursor = validate_extends(self._tail.get(site_id), site_id, obj)
            except DeltaSequenceError:
                self._m_gaps.inc()
                raise
            if obj["kind"] == "snapshot":
                self._logs[site_id] = [dict(obj)]
                self._base[site_id] = cursor[1] - 1
                self._states[site_id] = {}
                self._m_append_snapshot.inc()
            else:
                log = self._logs[site_id]
                log.append(dict(obj))
                if len(log) > self.max_log:
                    drop = len(log) - self.max_log
                    del log[:drop]
                    self._base[site_id] += drop
                self._m_append_delta.inc()
            self._tail[site_id] = cursor
            apply_ops_to_bucket(self._states[site_id], obj)
            self._m_puts.inc()
            if self.track_bytes:
                self._m_bytes_put.inc(wire_size(obj))
            # Recorded under the lock so the trace's publish order is
            # the stream-append order (the recorder's lock is a leaf).
            if self.recorder is not None:
                self.recorder.record_publish_delta(site_id, obj)
            if self.tracer.enabled:
                args = {"site": site_id, "kind": obj["kind"],
                        "seq": obj["seq"], "stream": obj["stream"]}
                trace_ctx = obj.get("trace")
                if trace_ctx:  # tie the append to the publish's context
                    args.update(trace_ctx)
                self.tracer.event(
                    "store.append", f"store:{self.name}", cat="store", **args
                )

    def get_deltas(
        self, site_id: str, after_seq: int, stream: Optional[str] = None
    ) -> List[dict]:
        """Every retained delta of ``site_id`` with ``seq > after_seq``.

        ``stream`` is the consumer's cursor token: when given, a
        mismatch with the site's current stream raises — sequence
        numbers do not compose across publisher incarnations, so a
        cursor from a previous stream must never be served numbers
        from the new one.  Also raises when the stream cannot be served
        contiguously from ``after_seq`` — unknown site, cursor ahead of
        the tail, or cursor compacted off the log.  On any raise the
        consumer must resync from :meth:`get_state`.
        """
        site_id = str(site_id)
        with self._lock:
            self._check_up()
            self._m_gets.inc()
            tail = self._tail.get(site_id)
            if tail is None:
                self._m_gaps.inc()
                raise DeltaSequenceError(
                    f"{self.name}: no delta stream for {site_id}"
                )
            if stream is not None and stream != tail[0]:
                self._m_gaps.inc()
                raise DeltaSequenceError(
                    f"{self.name}: {site_id} is on stream {tail[0]}, "
                    f"cursor follows {stream}"
                )
            base = self._base[site_id]
            if after_seq > tail[1] or after_seq < base:
                self._m_gaps.inc()
                raise DeltaSequenceError(
                    f"{self.name}: {site_id} cursor {after_seq} outside "
                    f"retained log ({base}..{tail[1]}]"
                )
            out = [dict(obj) for obj in self._logs[site_id][after_seq - base:]]
            if self.track_bytes:
                self._m_bytes_get.inc(sum(wire_size(obj) for obj in out))
            return out

    def get_state(self, site_id: str) -> Tuple[str, int, Dict[str, dict]]:
        """The materialised ``(stream, tail_seq, bucket)`` checkpoint
        for ``site_id`` — the full-resync read of the delta protocol."""
        site_id = str(site_id)
        with self._lock:
            self._check_up()
            self._m_gets.inc()
            tail = self._tail.get(site_id)
            if tail is None:
                self._m_gaps.inc()
                raise DeltaSequenceError(
                    f"{self.name}: no delta stream for {site_id}"
                )
            state = {t: dict(b) for t, b in self._states[site_id].items()}
            if self.track_bytes:
                self._m_bytes_get.inc(wire_size(state))
            return tail[0], tail[1], state

    def delta_tail(self, site_id: str) -> Optional[Cursor]:
        """The ``(stream, seq)`` tail of ``site_id``'s stream, if any —
        a cheap divergence probe (no payloads cross the wire), used by
        the replicated facade's read-repair."""
        with self._lock:
            self._check_up()
            return self._tail.get(str(site_id))

    def delta_sites(self) -> List[str]:
        """Sites with a live delta stream, in first-publish order."""
        with self._lock:
            self._check_up()
            return list(self._tail)

    # -- legacy bucket operations -------------------------------------------
    def put(self, site_id: str, payload: dict) -> None:
        """Replace ``site_id``'s bucket (the bucket-protocol write)."""
        with self._lock:
            self._check_up()
            self._m_puts.inc()
            if self.track_bytes:
                self._m_bytes_put.inc(wire_size(payload))
            self._buckets[site_id] = payload
            if self.recorder is not None:
                self.recorder.record_publish(site_id, payload)

    def get(self, site_id: str) -> Optional[dict]:
        with self._lock:
            self._check_up()
            self._m_gets.inc()
            return self._buckets.get(site_id)

    def get_all(self) -> Dict[str, dict]:
        """Snapshot of every site's bucket (the bucket-protocol read)."""
        with self._lock:
            self._check_up()
            self._m_gets.inc()
            out = dict(self._buckets)
            if self.track_bytes:
                self._m_bytes_get.inc(wire_size(out))
            return out

    # -- lifecycle -----------------------------------------------------------
    def delete(self, site_id: str) -> None:
        """Withdraw ``site_id`` entirely: bucket and delta stream."""
        site_id = str(site_id)
        with self._lock:
            self._check_up()
            self._buckets.pop(site_id, None)
            self._logs.pop(site_id, None)
            self._base.pop(site_id, None)
            self._tail.pop(site_id, None)
            self._states.pop(site_id, None)

    def clear(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._logs.clear()
            self._base.clear()
            self._tail.clear()
            self._states.clear()


class ReplicatedStore:
    """Redis-style replication: write-through to all live replicas, read
    from the first reachable one.

    The store only becomes unavailable when *every* replica is down.
    Under the delta protocol a recovered-stale replica is healed by
    *requesting a checkpoint* on its behalf — a snapshot synthesised
    from a healthy replica's materialised state — on two triggers:

    * **write-repair**: the next write-through sees the stale replica
      reject the append with a sequence/stream mismatch;
    * **read-repair**: every delta read probes the other live
      replicas' stream tails (a cheap ``(stream, seq)`` comparison, no
      payloads) and heals divergents — this is what covers *idle*
      sites, which publish nothing while unchanged and so would never
      trigger write-repair (the bucket protocol healed them by
      re-putting every period; the delta protocol must not regress
      that story).

    A stale replica can therefore only serve a divergent view while no
    healthy replica is reachable at all — the double-fault case, where
    the divergence still surfaces as a stream mismatch (checkpoint
    resync) rather than silently, because sequence numbers carry their
    stream token.
    """

    def __init__(
        self,
        replicas: Sequence[InMemoryStore],
        recorder=None,
        metrics=None,
        tracer=None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas: List[InMemoryStore] = list(replicas)
        # One publish record per *logical* write, however many replicas
        # acknowledged it (leave the replicas' own recorders unset).
        self.recorder = recorder
        # Serialises write-through so replica contents and the recorded
        # publish order cannot interleave across concurrent writers.
        self._put_lock = threading.Lock()
        # Heal/failover telemetry, per replica (these events were
        # previously silent).  Unlike the per-store accounting there is
        # no compat surface to keep alive, so the default is the no-op
        # registry: zero overhead unless somebody asks.
        if metrics is None:
            from repro.obs.registry import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self._m_heals = metrics.counter(
            "repro_replica_heals_total",
            "Stale replicas healed with a synthesised checkpoint, by "
            "replica and trigger.",
            labels=("replica", "trigger"),
        )
        self._m_failovers = metrics.counter(
            "repro_replica_failovers_total",
            "Reads served after skipping this unreachable/divergent "
            "replica.",
            labels=("replica",),
        )

    # -- delta-protocol operations -------------------------------------------
    def append_delta(self, site_id: str, obj: Mapping) -> None:
        with self._put_lock:
            accepted: Optional[InMemoryStore] = None
            gapped: List[InMemoryStore] = []
            for replica in self.replicas:
                try:
                    replica.append_delta(site_id, obj)
                    if accepted is None:
                        accepted = replica
                except StoreUnavailableError:
                    continue
                except DeltaSequenceError:
                    gapped.append(replica)
            if accepted is None:
                if gapped:
                    # Every live replica disagrees with the publisher's
                    # history (e.g. failover onto recovered-stale
                    # replicas only): the publisher must checkpoint.
                    raise DeltaSequenceError(
                        f"no replica accepted {site_id} delta "
                        f"seq {obj['seq']}"
                    )
                raise StoreUnavailableError("all replicas down")
            if gapped:
                self._heal(site_id, accepted, gapped, trigger="write")
            if self.recorder is not None:
                self.recorder.record_publish_delta(str(site_id), obj)

    def _heal(
        self,
        site_id: str,
        source: InMemoryStore,
        targets: List[InMemoryStore],
        trigger: str = "write",
    ) -> None:
        """Replica recovery = request checkpoint: overwrite the stale
        replicas' streams with a snapshot of a healthy one's state."""
        try:
            stream, seq, state = source.get_state(site_id)
        except (StoreUnavailableError, DeltaSequenceError):
            return
        checkpoint = make_snapshot(seq, state, stream)
        for replica in targets:
            try:
                replica.append_delta(site_id, checkpoint)
                self._m_heals.inc(replica=replica.name, trigger=trigger)
                if self.tracer.enabled:
                    self.tracer.event(
                        "replica.heal", f"store:{replica.name}", cat="store",
                        site=site_id, trigger=trigger, seq=seq, stream=stream,
                    )
            except StoreUnavailableError:
                continue

    def _read_repair(self, site_id: str) -> None:
        """Heal replicas whose stream tail diverges from the newest one.

        Cheap when healthy (one ``(stream, seq)`` probe per replica, no
        payloads); covers idle sites, which never append and so never
        hit the write-repair path.  The heal *source* is the replica
        with the lexicographically greatest ``(stream, seq)`` tail —
        stream tokens are time-prefixed, so a newer publisher
        incarnation outranks an older one and, within one stream, the
        higher sequence number is definitionally more recent.  The
        replica that answered the read may itself be the stale one; it
        gets healed like any other — as is a replica with *no* stream
        for the site at all (it was down for the site's whole life so
        far).
        """
        reachable: List[Tuple[Optional[Cursor], InMemoryStore]] = []
        present: List[Tuple[Cursor, InMemoryStore]] = []
        for replica in self.replicas:
            try:
                tail = replica.delta_tail(site_id)
            except StoreUnavailableError:
                continue
            reachable.append((tail, replica))
            if tail is not None:
                present.append((tail, replica))
        if not present or len({tail for tail, _ in reachable}) <= 1:
            return  # absent everywhere, or all in agreement
        best_tail, best = max(present, key=lambda entry: entry[0])
        stale = [replica for tail, replica in reachable if tail != best_tail]
        with self._put_lock:
            self._heal(site_id, best, stale, trigger="read")

    def get_deltas(
        self, site_id: str, after_seq: int, stream: Optional[str] = None
    ) -> List[dict]:
        return self._read_with_failover(
            site_id, lambda replica: replica.get_deltas(site_id, after_seq, stream)
        )

    def get_state(self, site_id: str) -> Tuple[str, int, Dict[str, dict]]:
        return self._read_with_failover(
            site_id, lambda replica: replica.get_state(site_id)
        )

    def _read_with_failover(self, site_id: str, read):
        """Serve a delta read from the first replica that *can*.

        A :class:`DeltaSequenceError` fails over to the next replica
        rather than propagating — the raising replica may simply have
        missed the site's stream (or its tail) while down, and another
        replica can serve it.  Only when every reachable replica raises
        does the error reach the consumer (a genuine gap: resync), and
        read-repair runs either way so divergent replicas heal.
        """
        last_gap: Optional[DeltaSequenceError] = None
        for replica in self.replicas:
            try:
                out = read(replica)
            except StoreUnavailableError:
                self._m_failovers.inc(replica=replica.name)
                continue
            except DeltaSequenceError as exc:
                self._m_failovers.inc(replica=replica.name)
                last_gap = exc
                continue
            self._read_repair(site_id)
            return out
        if last_gap is not None:
            self._read_repair(site_id)
            raise last_gap
        raise StoreUnavailableError("all replicas down")

    def delta_sites(self) -> List[str]:
        """The union of every live replica's site listing.

        A single replica's listing is not authoritative: one that was
        down for a site's first publish has no stream for it at all,
        and serving its view alone would make checkers drop the site —
        hiding its blocked tasks.  Order is first-reachable-replica
        order with later replicas' extras appended.
        """
        sites: List[str] = []
        seen: set = set()
        reachable = False
        for replica in self.replicas:
            try:
                listing = replica.delta_sites()
            except StoreUnavailableError:
                continue
            reachable = True
            for site in listing:
                if site not in seen:
                    seen.add(site)
                    sites.append(site)
        if not reachable:
            raise StoreUnavailableError("all replicas down")
        return sites

    # -- legacy bucket operations -------------------------------------------
    def put(self, site_id: str, payload: dict) -> None:
        with self._put_lock:
            wrote = False
            for replica in self.replicas:
                try:
                    replica.put(site_id, payload)
                    wrote = True
                except StoreUnavailableError:
                    continue
            if not wrote:
                raise StoreUnavailableError("all replicas down")
            if self.recorder is not None:
                self.recorder.record_publish(site_id, payload)

    def get(self, site_id: str) -> Optional[dict]:
        for replica in self.replicas:
            try:
                return replica.get(site_id)
            except StoreUnavailableError:
                continue
        raise StoreUnavailableError("all replicas down")

    def get_all(self) -> Dict[str, dict]:
        for replica in self.replicas:
            try:
                return replica.get_all()
            except StoreUnavailableError:
                continue
        raise StoreUnavailableError("all replicas down")

    def delete(self, site_id: str) -> None:
        for replica in self.replicas:
            try:
                replica.delete(site_id)
            except StoreUnavailableError:
                continue
