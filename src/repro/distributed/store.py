"""The global resource-dependency store (the paper's Redis).

Sites publish their local blocked statuses under their own key — writes
are disjoint by construction, so no cross-site coordination is needed —
and checkers read a snapshot of all keys.  Statuses cross the "wire" in
an explicit serialised form (plain lists/dicts), keeping the store
substitutable by a real network KV store.

Fault injection: :meth:`InMemoryStore.set_available` simulates an outage
(operations raise :class:`StoreUnavailableError`);
:class:`ReplicatedStore` layers Redis-style failover on top, so detection
survives the loss of a replica — the property the paper relies on for
"the algorithm resists (ii) because Redis itself is fault-tolerant".
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.events import BlockedStatus, Event, TaskId


class StoreUnavailableError(RuntimeError):
    """The data store (or every replica) is unreachable."""


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------
def encode_statuses(statuses: Mapping[TaskId, BlockedStatus]) -> dict:
    """Serialise blocked statuses to a plain JSON-able structure."""
    return {
        str(task): {
            "waits": sorted([str(e.phaser), e.phase] for e in status.waits),
            "registered": {str(p): n for p, n in status.registered.items()},
            "generation": status.generation,
        }
        for task, status in statuses.items()
    }


def decode_statuses(payload: Mapping) -> Dict[str, BlockedStatus]:
    """Inverse of :func:`encode_statuses`."""
    out: Dict[str, BlockedStatus] = {}
    for task, blob in payload.items():
        out[task] = BlockedStatus(
            waits=frozenset(Event(p, n) for p, n in blob["waits"]),
            registered=dict(blob["registered"]),
            generation=blob.get("generation", 0),
        )
    return out


# ---------------------------------------------------------------------------
# stores
# ---------------------------------------------------------------------------
class InMemoryStore:
    """A thread-safe bucket-per-site KV store with injectable outages.

    ``recorder`` (an optional :class:`~repro.trace.recorder.TraceRecorder`)
    captures every successful ``put`` as a trace ``publish`` record — the
    site-publish observation point of the trace subsystem.
    """

    def __init__(self, name: str = "store", recorder=None) -> None:
        self.name = name
        self.recorder = recorder
        self._lock = threading.Lock()
        self._buckets: Dict[str, dict] = {}
        self._available = True
        # Operation counters: the distributed benchmarks report traffic.
        self.puts = 0
        self.gets = 0

    # -- failure injection ---------------------------------------------------
    def set_available(self, available: bool) -> None:
        with self._lock:
            self._available = available

    @property
    def available(self) -> bool:
        with self._lock:
            return self._available

    def _check_up(self) -> None:
        if not self._available:
            raise StoreUnavailableError(f"{self.name} is down")

    # -- KV operations ----------------------------------------------------------
    def put(self, site_id: str, payload: dict) -> None:
        """Replace ``site_id``'s bucket (the disjoint per-site write)."""
        with self._lock:
            self._check_up()
            self.puts += 1
            self._buckets[site_id] = payload
            # Recorded under the lock so the trace's publish order is
            # the bucket-write order (the recorder's lock is a leaf).
            if self.recorder is not None:
                self.recorder.record_publish(site_id, payload)

    def get(self, site_id: str) -> Optional[dict]:
        with self._lock:
            self._check_up()
            self.gets += 1
            return self._buckets.get(site_id)

    def get_all(self) -> Dict[str, dict]:
        """Snapshot of every site's bucket (the checker's global view)."""
        with self._lock:
            self._check_up()
            self.gets += 1
            return dict(self._buckets)

    def delete(self, site_id: str) -> None:
        with self._lock:
            self._check_up()
            self._buckets.pop(site_id, None)

    def clear(self) -> None:
        with self._lock:
            self._buckets.clear()


class ReplicatedStore:
    """Redis-style replication: write-through to all live replicas, read
    from the first reachable one.

    The store only becomes unavailable when *every* replica is down;
    recovered replicas are resynchronised on the next write (buckets are
    whole-sale replaced, so stale reads self-heal within one publishing
    period — the same eventual consistency the paper's periodic publishing
    tolerates by design).
    """

    def __init__(self, replicas: Sequence[InMemoryStore], recorder=None) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas: List[InMemoryStore] = list(replicas)
        # One publish record per *logical* write, however many replicas
        # acknowledged it (leave the replicas' own recorders unset).
        self.recorder = recorder
        # Serialises write-through so replica contents and the recorded
        # publish order cannot interleave across concurrent writers.
        self._put_lock = threading.Lock()

    def put(self, site_id: str, payload: dict) -> None:
        with self._put_lock:
            wrote = False
            for replica in self.replicas:
                try:
                    replica.put(site_id, payload)
                    wrote = True
                except StoreUnavailableError:
                    continue
            if not wrote:
                raise StoreUnavailableError("all replicas down")
            if self.recorder is not None:
                self.recorder.record_publish(site_id, payload)

    def get(self, site_id: str) -> Optional[dict]:
        for replica in self.replicas:
            try:
                return replica.get(site_id)
            except StoreUnavailableError:
                continue
        raise StoreUnavailableError("all replicas down")

    def get_all(self) -> Dict[str, dict]:
        for replica in self.replicas:
            try:
                return replica.get_all()
            except StoreUnavailableError:
                continue
        raise StoreUnavailableError("all replicas down")

    def delete(self, site_id: str) -> None:
        for replica in self.replicas:
            try:
                replica.delete(site_id)
            except StoreUnavailableError:
                continue
