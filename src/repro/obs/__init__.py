"""repro.obs — the observability plane of the verification stack.

Metrics (counters / gauges / fixed-bucket histograms), ``span`` timing
contexts, and structured health, with two exporters (Prometheus text,
canonical JSON) and a one-file HTTP endpoint
(``python -m repro.obs serve``).

The contract every layer builds on:

* snapshots are deterministic (sorted, and — excluding ``volatile``
  wall-clock instruments — a pure function of the event stream);
* ``merge`` is associative and commutative (parallel-replay fan-in);
* the disabled path (:data:`NULL_REGISTRY`) is near-free and changes
  no behaviour.
"""

from repro.obs.export import parse_prometheus, to_json, to_prometheus
from repro.obs.health import health_status, render_health, runtime_health
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "to_prometheus",
    "to_json",
    "parse_prometheus",
    "runtime_health",
    "render_health",
    "health_status",
]
