"""repro.obs — the observability plane of the verification stack.

Metrics (counters / gauges / fixed-bucket histograms), ``span`` timing
contexts, causal tracing with deterministic span IDs and deadlock
provenance (:mod:`repro.obs.tracing`), and structured health, with
exporters (Prometheus text, canonical JSON, Chrome trace-event JSON)
and a one-file HTTP endpoint (``python -m repro.obs serve``).

The contract every layer builds on:

* snapshots are deterministic (sorted, and — excluding ``volatile``
  wall-clock instruments — a pure function of the event stream);
* ``merge`` is associative and commutative (parallel-replay fan-in);
* the disabled path (:data:`NULL_REGISTRY`) is near-free and changes
  no behaviour.
"""

from repro.obs.export import parse_prometheus, to_json, to_prometheus
from repro.obs.health import health_status, render_health, runtime_health
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    OriginTracker,
    Tracer,
    TraceSpan,
    attach_provenance,
    chrome_trace_from_records,
    render_report_provenance,
    span_id,
    spans_to_chrome,
    validate_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "to_prometheus",
    "to_json",
    "parse_prometheus",
    "runtime_health",
    "render_health",
    "health_status",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceSpan",
    "OriginTracker",
    "span_id",
    "attach_provenance",
    "spans_to_chrome",
    "chrome_trace_from_records",
    "validate_chrome_trace",
    "render_report_provenance",
]
