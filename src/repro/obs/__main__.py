"""The ``python -m repro.obs`` command line.

One subcommand today::

    python -m repro.obs serve [--host H] [--port P] [--scenario ring]
                              [--tasks N] [--duration S] [--no-deadlock]

``serve`` starts a live detection-mode runtime running a deadlocking
demo scenario and exposes its telemetry over HTTP:

* ``GET /metrics`` — Prometheus text exposition;
* ``GET /healthz`` — structured health JSON (``503`` once the monitor
  files a deadlock report — probes trip when the deadlock lands);
* ``GET /spans`` — the runtime's causal span buffer as Chrome
  trace-event JSON (Perfetto-loadable).

``--duration 0`` (the default) serves until interrupted; a positive
duration exits on its own, which is what the CI smoke and the tests
use.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.obs.server import SCENARIOS, MetricsHTTPServer, build_demo_runtime, shutdown_demo


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.tracing import Tracer

    registry = MetricsRegistry()
    tracer = Tracer()
    runtime, tasks = build_demo_runtime(
        registry,
        scenario=args.scenario,
        n_tasks=args.tasks,
        cancel_on_detect=args.no_deadlock,
        tracer=tracer,
    )
    try:
        with MetricsHTTPServer(
            registry, runtime, host=args.host, port=args.port,
            verbose=args.verbose, tracer=tracer,
        ) as server:
            print(
                f"serving {args.scenario} scenario ({args.tasks} task(s)) "
                f"on {server.url} — /metrics /healthz /spans",
                file=sys.stderr,
            )
            try:
                if args.duration > 0:
                    time.sleep(args.duration)
                else:
                    while True:
                        time.sleep(3600)
            except KeyboardInterrupt:
                pass
    finally:
        if not shutdown_demo(runtime, tasks):
            print("demo shutdown was dirty (see log)", file=sys.stderr)
    if runtime.reports:
        print(
            f"observed {len(runtime.reports)} deadlock report(s)",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="telemetry endpoints for the verification stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="expose /metrics and /healthz from a live runtime"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9464,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--scenario", default="ring", choices=sorted(SCENARIOS))
    serve.add_argument("--tasks", type=int, default=3,
                       help="ring size (>= 2)")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="seconds to serve; 0 = until interrupted")
    serve.add_argument("--no-deadlock", action="store_true",
                       help="cancel tasks on detection instead of leaving "
                            "the deadlock parked")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request")
    serve.set_defaults(fn=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
