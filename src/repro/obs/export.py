"""Exporters: Prometheus text exposition and canonical JSON snapshots.

Two serialisations of one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`to_prometheus` — the text exposition format (version 0.0.4)
  a Prometheus server scrapes: ``# HELP``/``# TYPE`` preambles, one
  sample per line, histogram children expanded into cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``.  This is what
  ``python -m repro.obs serve`` exposes at ``/metrics``.
* :func:`to_json` — the canonical JSON snapshot: metrics sorted by
  name, children by label values, keys sorted, stable separators.
  With ``volatile=False`` every wall-clock-valued instrument is
  excluded, making the output a pure function of the event stream —
  the replay CLI's ``--metrics-json`` relies on this for its
  byte-identical-across-``--parallel`` guarantee.

:func:`parse_prometheus` is a minimal parser for the exposition format
— enough to round-trip what :func:`to_prometheus` emits, used by the
format tests and by scrapers that want numbers without a Prometheus.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["to_prometheus", "to_json", "parse_prometheus"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    """Prometheus sample values: integers stay integral, floats use
    ``repr`` (shortest round-trippable form), infinities spell +Inf."""
    if value is None:
        return "0"
    if isinstance(value, bool):  # pragma: no cover - no bool samples exist
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(names: List[str], values: List[str], extra: Tuple[str, str] = None) -> str:
    pairs = [(n, v) for n, v in zip(names, values)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{n}="{_escape_label(str(v))}"' for n, v in pairs)
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry, volatile: bool = True) -> str:
    """Render ``registry`` in Prometheus text exposition format."""
    snap = registry.snapshot(volatile=volatile)
    lines: List[str] = []
    for metric in snap["metrics"]:
        name = metric["name"]
        kind = metric["kind"]
        names = metric["labels"]
        if metric["help"]:
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            for child in metric["values"]:
                lines.append(
                    f"{name}{_label_str(names, child['labels'])} "
                    f"{_format_value(child['value'])}"
                )
        else:  # histogram
            uppers = metric["buckets"]
            for child in metric["values"]:
                cumulative = 0
                for upper, count in zip(uppers, child["counts"]):
                    cumulative += count
                    le = _label_str(names, child["labels"],
                                    ("le", _format_value(upper)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += child["counts"][len(uppers)]
                inf = _label_str(names, child["labels"], ("le", "+Inf"))
                lines.append(f"{name}_bucket{inf} {cumulative}")
                base = _label_str(names, child["labels"])
                lines.append(f"{name}_sum{base} {_format_value(child['sum'])}")
                lines.append(f"{name}_count{base} {child['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def to_json(registry: MetricsRegistry, volatile: bool = True,
            indent=None) -> str:
    """Render the canonical JSON snapshot.

    Canonical means: metrics sorted by name, children sorted by label
    values, object keys sorted, fixed separators, trailing newline —
    two registries fed the same events serialise to the same bytes.
    """
    snap = registry.snapshot(volatile=volatile)
    if indent is None:
        return json.dumps(snap, sort_keys=True, separators=(",", ":")) + "\n"
    return json.dumps(snap, sort_keys=True, indent=indent) + "\n"


# ---------------------------------------------------------------------------
# parsing (round-trip tests; scrape clients without a Prometheus)
# ---------------------------------------------------------------------------
def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq].strip().lstrip(",").strip()
        assert body[eq + 1] == '"', "label value must be quoted"
        j = eq + 2
        out: List[str] = []
        while body[j] != '"':
            ch = body[j]
            if ch == "\\":
                nxt = body[j + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
            else:
                out.append(ch)
                j += 1
        labels[name] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse exposition text into ``{family: {type, help, samples}}``.

    ``samples`` maps ``(sample_name, ((label, value), ...))`` — labels
    sorted by name — to the parsed float.  Covers exactly the subset
    :func:`to_prometheus` emits (which is the subset Prometheus
    requires), not the full OpenMetrics grammar.
    """
    families: Dict[str, dict] = {}
    current = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            current = families.setdefault(
                name, {"type": None, "help": "", "samples": {}}
            )
            current["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            current = families.setdefault(
                name, {"type": None, "help": "", "samples": {}}
            )
            current["type"] = kind
        elif line.startswith("#"):
            continue
        else:
            if "{" in line:
                sample_name = line[: line.index("{")]
                body = line[line.index("{") + 1: line.rindex("}")]
                labels = _parse_labels(body)
                value_text = line[line.rindex("}") + 1:].strip()
            else:
                sample_name, _, value_text = line.partition(" ")
                labels = {}
            family_name = sample_name
            for suffix in ("_bucket", "_sum", "_count"):
                base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
                if base and base in families and families[base]["type"] == "histogram":
                    family_name = base
                    break
            family = families.setdefault(
                family_name, {"type": None, "help": "", "samples": {}}
            )
            key = (sample_name, tuple(sorted(labels.items())))
            family["samples"][key] = _parse_number(value_text)
    return families
