"""Structured health for a live runtime: the ``/healthz`` payload.

A health document is the operator's one-glance answer to "is this
verifier alive, and did it find anything": verification mode, blocked
population, check counts, and every distinct deadlock report collected
so far (repeat detections of the same cycle fold into one entry, with
``report_count`` keeping the raw total).
It deliberately reads only public runtime surface
(:class:`~repro.runtime.verifier.ArmusRuntime` attributes and the
checker's stats view), so it works for any mode and either checker
engine.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["runtime_health", "health_status", "unique_report_entries"]


def health_status(runtime) -> str:
    """``"deadlock"`` once any report exists, ``"ok"`` otherwise."""
    return "deadlock" if runtime.reports else "ok"


def unique_report_entries(reports) -> list:
    """Distinct deadlock reports as health-document entries.

    An un-cancelled deadlock is re-reported on every monitor poll;
    embedding each repeat would grow the document without bound on a
    long-lived endpoint, so distinct cycles are listed once each
    (first-seen order) and ``report_count`` keeps the raw total.
    Shared by the runtime health document and the checker service's
    per-tenant health docs.
    """
    seen = set()
    unique = []
    for report in reports:
        entry = {
            "tasks": sorted(str(t) for t in report.tasks),
            "events": sorted(str(e) for e in report.events),
            "model": report.model_used.value,
            "avoided": report.avoided,
        }
        key = (tuple(entry["tasks"]), tuple(entry["events"]),
               entry["model"], entry["avoided"])
        if key not in seen:
            seen.add(key)
            unique.append(entry)
    return unique


def runtime_health(runtime, registry=None) -> dict:
    """Build the ``/healthz`` document for ``runtime``.

    ``registry`` (optional) adds an ``instruments`` count so a scraper
    can sanity-check that the metrics plane is actually wired.
    """
    checker = runtime.checker
    stats = runtime.stats
    reports = list(runtime.reports)
    doc = {
        "status": health_status(runtime),
        "mode": str(runtime.mode),
        "blocked_tasks": checker.dependency.blocked_count(),
        "checks": stats.checks,
        "cycles_found": stats.cycles_found,
        "models": {
            model.value: count
            for model, count in sorted(
                stats.model_histogram().items(), key=lambda kv: kv[0].value
            )
        },
        "report_count": len(reports),
        "reports": unique_report_entries(reports),
    }
    if registry is not None:
        doc["instruments"] = len(registry.names())
    return doc


def render_health(runtime, registry=None, indent: Optional[int] = None) -> str:
    """The health document as JSON text (sorted keys, trailing newline)."""
    import json

    return json.dumps(
        runtime_health(runtime, registry), sort_keys=True, indent=indent
    ) + "\n"
