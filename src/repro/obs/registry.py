"""The process-local metrics registry: counters, gauges, histograms.

``repro.obs`` is the instrumentation plane of the verification stack.
Every layer — checker, runtime, distributed sites and stores, the
replay engines — records what it does into a
:class:`MetricsRegistry`, and two exporters (:mod:`repro.obs.export`)
turn a registry into Prometheus text exposition or a canonical JSON
snapshot.  Three properties are design constraints, not afterthoughts:

* **Deterministic snapshots.**  A snapshot orders metrics by name and
  children by label values, and every *non-volatile* instrument is a
  pure function of the event stream that fed it — so replaying the
  same trace produces byte-identical snapshots, however many worker
  processes shared the work.  Wall-clock-valued instruments (latency
  histograms, poll counters, live gauges) are declared ``volatile``
  and can be excluded from a snapshot wholesale, which is how the CLI
  keeps ``--metrics-json`` output diffable across ``--parallel N``.
* **Associative, commutative ``merge``.**  Counters and histogram
  buckets fold by summation, gauges by their declared mode (``sum`` or
  ``max``), histogram extrema by min/max — so parallel-replay fan-in
  can merge per-worker registries in any order and get the same bytes.
* **Near-zero disabled overhead.**  :data:`NULL_REGISTRY` (a
  :class:`NullRegistry`) hands out shared no-op instruments and a
  reusable no-op span; an instrumented call site costs one attribute
  load and one no-op call when metrics are off.  Hot paths that would
  pay even for argument marshalling guard on ``registry.enabled``.

Instruments are keyed by name process-wide *per registry* — asking a
registry twice for the same name returns the same instrument (matching
Prometheus client semantics), and asking with a different type or
label set raises.  Registries are picklable (locks are dropped and
recreated), which is what lets a replay worker ship its registry back
to the parent for merging.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
]

#: Default buckets for wall-clock latency histograms (seconds).  Spans
#: the paper's check-latency range: microsecond O(1) incremental checks
#: up to whole-second distributed rounds.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
    1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0, 2.5,
)

#: Default buckets for size-like histograms (edge counts, delta op
#: counts, payload sizes): powers of two, which keep bucket boundaries
#: exact for the integer quantities the verifier produces.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)


def _label_values(label_names: Tuple[str, ...], labels: Dict[str, object]) -> Tuple[str, ...]:
    """Canonicalise keyword labels into the declared-name order."""
    if len(labels) != len(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    try:
        return tuple(str(labels[name]) for name in label_names)
    except KeyError as exc:
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        ) from exc


class _Instrument:
    """Common instrument state: identity, labels, child table."""

    kind = "instrument"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        volatile: bool,
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = label_names
        self.volatile = volatile
        # label-values tuple -> child state (shape is subclass-specific).
        self._children: Dict[Tuple[str, ...], object] = {}

    # -- identity ------------------------------------------------------
    def _spec(self) -> tuple:
        """The compatibility key a re-registration must match."""
        return (self.kind, self.label_names)

    def _check_compatible(self, other_spec: tuple) -> None:
        if self._spec() != other_spec:
            raise ValueError(
                f"metric {self.name!r} re-registered with a different "
                f"type or label set ({self._spec()} vs {other_spec})"
            )

    # -- child access --------------------------------------------------
    def _child(self, values: Tuple[str, ...]):
        child = self._children.get(values)
        if child is None:
            with self._registry._lock:
                child = self._children.setdefault(values, self._new_child())
        return child

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every child (tests and registry resets)."""
        with self._registry._lock:
            self._children.clear()

    # -- snapshot ------------------------------------------------------
    def _snapshot_values(self) -> List[dict]:
        with self._registry._lock:
            items = sorted(self._children.items())
        return [
            dict(labels=list(values), **self._snapshot_child(child))
            for values, child in items
        ]

    def _snapshot_child(self, child) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError

    def snapshot(self) -> dict:
        """This instrument's canonical snapshot entry."""
        out = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "volatile": self.volatile,
            "values": self._snapshot_values(),
        }
        return out


class Counter(_Instrument):
    """A monotonically increasing count (optionally labelled)."""

    kind = "counter"

    def _new_child(self) -> List:
        return [0]

    def inc(self, amount: int = 1, **labels) -> None:
        """Add ``amount`` (default 1) to the labelled child."""
        child = self._child(_label_values(self.label_names, labels))
        with self._registry._lock:
            child[0] += amount

    def set_total(self, value, **labels) -> None:
        """Overwrite the child's running total.

        For *mirror* counters: a layer that already maintains a cheap
        monotonic count (e.g. :class:`~repro.core.scc.DynamicSCC`'s
        work counters) publishes it by assignment instead of paying an
        ``inc`` per event.
        """
        child = self._child(_label_values(self.label_names, labels))
        with self._registry._lock:
            child[0] = value

    def value(self, **labels):
        """Current value of the labelled child (0 if never touched)."""
        child = self._children.get(_label_values(self.label_names, labels))
        return 0 if child is None else child[0]

    def total(self):
        """Sum across every labelled child."""
        with self._registry._lock:
            return sum(child[0] for child in self._children.values())

    def per_label(self) -> Dict[Tuple[str, ...], int]:
        """``{label-values tuple: value}`` across children (sorted)."""
        with self._registry._lock:
            return {values: child[0]
                    for values, child in sorted(self._children.items())}

    def labels(self, **labels) -> "BoundCounter":
        """Pre-bind a label set for hot paths (one dict lookup saved
        per increment)."""
        return BoundCounter(self, _label_values(self.label_names, labels))

    def _snapshot_child(self, child) -> dict:
        return {"value": child[0]}

    def merge_from(self, other: "Counter") -> None:
        with other._registry._lock:
            items = list(other._children.items())
        for values, child in items:
            mine = self._child(values)
            with self._registry._lock:
                mine[0] += child[0]


class BoundCounter:
    """A counter child bound to fixed label values."""

    __slots__ = ("_counter", "_values")

    def __init__(self, counter: Counter, values: Tuple[str, ...]) -> None:
        self._counter = counter
        self._values = values

    def inc(self, amount: int = 1) -> None:
        child = self._counter._child(self._values)
        with self._counter._registry._lock:
            child[0] += amount

    def set_total(self, value) -> None:
        child = self._counter._child(self._values)
        with self._counter._registry._lock:
            child[0] = value

    def value(self):
        child = self._counter._children.get(self._values)
        return 0 if child is None else child[0]


class Gauge(_Instrument):
    """A point-in-time value.

    ``merge_mode`` decides how parallel fan-in folds two children:
    ``"sum"`` (capacity-like gauges) or ``"max"`` (high-water marks).
    """

    kind = "gauge"

    def __init__(self, registry, name, help, label_names, volatile,
                 merge_mode: str = "sum") -> None:
        if merge_mode not in ("sum", "max"):
            raise ValueError(f"unknown gauge merge mode {merge_mode!r}")
        super().__init__(registry, name, help, label_names, volatile)
        self.merge_mode = merge_mode

    def _spec(self) -> tuple:
        return (self.kind, self.label_names, self.merge_mode)

    def _new_child(self) -> List:
        return [0]

    def set(self, value, **labels) -> None:
        child = self._child(_label_values(self.label_names, labels))
        with self._registry._lock:
            child[0] = value

    def inc(self, amount=1, **labels) -> None:
        child = self._child(_label_values(self.label_names, labels))
        with self._registry._lock:
            child[0] += amount

    def dec(self, amount=1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels):
        child = self._children.get(_label_values(self.label_names, labels))
        return 0 if child is None else child[0]

    def _snapshot_child(self, child) -> dict:
        return {"value": child[0]}

    def merge_from(self, other: "Gauge") -> None:
        with other._registry._lock:
            items = list(other._children.items())
        for values, child in items:
            mine = self._child(values)
            with self._registry._lock:
                if self.merge_mode == "max":
                    mine[0] = max(mine[0], child[0])
                else:
                    mine[0] += child[0]


class _HistChild:
    """Per-label-set histogram state: bucket counts + streaming extrema."""

    __slots__ = ("counts", "count", "sum", "vmin", "vmax")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1: the +Inf bucket
        self.count = 0
        self.sum = 0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None


class Histogram(_Instrument):
    """A fixed-bucket distribution with exact sum/min/max.

    Buckets are *upper bounds* (a trailing +Inf bucket is implicit).
    Quantiles are derived from the bucket counts — deterministic and
    mergeable, at bucket-boundary resolution — while ``sum``/``min``/
    ``max`` are exact streaming aggregates.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, label_names, volatile,
                 buckets: Sequence[float]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        super().__init__(registry, name, help, label_names, volatile)
        self.buckets: Tuple[float, ...] = tuple(buckets)

    def _spec(self) -> tuple:
        return (self.kind, self.label_names, self.buckets)

    def _new_child(self) -> _HistChild:
        return _HistChild(len(self.buckets))

    def observe(self, value, **labels) -> None:
        child = self._child(_label_values(self.label_names, labels))
        idx = bisect_left(self.buckets, value)
        with self._registry._lock:
            child.counts[idx] += 1
            child.count += 1
            child.sum += value
            if child.vmin is None or value < child.vmin:
                child.vmin = value
            if child.vmax is None or value > child.vmax:
                child.vmax = value

    def labels(self, **labels) -> "BoundHistogram":
        return BoundHistogram(self, _label_values(self.label_names, labels))

    # -- derived aggregates -------------------------------------------
    def _get(self, labels) -> Optional[_HistChild]:
        return self._children.get(_label_values(self.label_names, labels))

    def count_of(self, **labels) -> int:
        child = self._get(labels)
        return 0 if child is None else child.count

    def sum_of(self, **labels):
        child = self._get(labels)
        return 0 if child is None else child.sum

    def max_of(self, **labels):
        child = self._get(labels)
        return 0 if child is None or child.vmax is None else child.vmax

    def min_of(self, **labels):
        child = self._get(labels)
        return 0 if child is None or child.vmin is None else child.vmin

    def quantile(self, q: float, **labels) -> float:
        """Bucket-resolution quantile estimate in ``[0, 1]``.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q * count`` — clamped to the exact streaming
        ``max`` so an estimate can never exceed an observed value.
        Deterministic, and stable under :meth:`merge_from` (quantiles
        of merged buckets equal quantiles over the union stream at the
        same resolution).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        child = self._get(labels)
        if child is None or child.count == 0:
            return 0.0
        target = q * child.count
        cumulative = 0
        for idx, upper in enumerate(self.buckets):
            cumulative += child.counts[idx]
            if cumulative >= target and cumulative > 0:
                return min(upper, child.vmax)
        return child.vmax

    def _snapshot_child(self, child: _HistChild) -> dict:
        return {
            "counts": list(child.counts),
            "count": child.count,
            "sum": child.sum,
            "min": child.vmin,
            "max": child.vmax,
        }

    def snapshot(self) -> dict:
        out = super().snapshot()
        out["buckets"] = list(self.buckets)
        return out

    def merge_from(self, other: "Histogram") -> None:
        with other._registry._lock:
            items = [(v, (list(c.counts), c.count, c.sum, c.vmin, c.vmax))
                     for v, c in other._children.items()]
        for values, (counts, count, total, vmin, vmax) in items:
            mine = self._child(values)
            with self._registry._lock:
                for idx, n in enumerate(counts):
                    mine.counts[idx] += n
                mine.count += count
                mine.sum += total
                if vmin is not None:
                    mine.vmin = vmin if mine.vmin is None else min(mine.vmin, vmin)
                if vmax is not None:
                    mine.vmax = vmax if mine.vmax is None else max(mine.vmax, vmax)


class BoundHistogram:
    """A histogram child bound to fixed label values."""

    __slots__ = ("_hist", "_values")

    def __init__(self, hist: Histogram, values: Tuple[str, ...]) -> None:
        self._hist = hist
        self._values = values

    def observe(self, value) -> None:
        hist = self._hist
        child = hist._child(self._values)
        idx = bisect_left(hist.buckets, value)
        with hist._registry._lock:
            child.counts[idx] += 1
            child.count += 1
            child.sum += value
            if child.vmin is None or value < child.vmin:
                child.vmin = value
            if child.vmax is None or value > child.vmax:
                child.vmax = value


class Span:
    """A timing context recording its duration into a histogram.

    Re-usable and re-entrant-safe per ``with`` statement (each entry
    snapshots its own start time on a small stack), so one span object
    can be pre-bound next to the hot path it measures::

        span = registry.span("repro_check")
        ...
        with span:
            run_the_check()
    """

    __slots__ = ("_hist", "_starts")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._starts: List[float] = []

    def __enter__(self) -> "Span":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._starts.pop())


class _NullSpan:
    """The disabled span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


class MetricsRegistry:
    """A named collection of instruments with deterministic snapshots.

    ``enabled`` is True — the :class:`NullRegistry` subclass is the
    disabled twin, letting call sites guard genuinely hot work with a
    single attribute check (``if registry.enabled: ...``) while routine
    instrumentation just calls the no-op instruments.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # -- pickling (replay workers ship registries to the parent) -------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- instrument constructors (get-or-create) -----------------------
    def _register(self, name: str, factory):
        with self._lock:
            existing = self._metrics.get(name)
        if existing is None:
            created = factory()
            with self._lock:
                existing = self._metrics.setdefault(name, created)
        return existing

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        volatile: bool = False,
    ) -> Counter:
        label_names = tuple(labels)
        metric = self._register(
            name, lambda: Counter(self, name, help, label_names, volatile)
        )
        metric._check_compatible(("counter", label_names))
        return metric  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        volatile: bool = False,
        merge_mode: str = "sum",
    ) -> Gauge:
        label_names = tuple(labels)
        metric = self._register(
            name,
            lambda: Gauge(self, name, help, label_names, volatile, merge_mode),
        )
        metric._check_compatible(("gauge", label_names, merge_mode))
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
        volatile: bool = False,
    ) -> Histogram:
        label_names = tuple(labels)
        bucket_t = tuple(buckets)
        metric = self._register(
            name,
            lambda: Histogram(self, name, help, label_names, volatile, bucket_t),
        )
        metric._check_compatible(("histogram", label_names, bucket_t))
        return metric  # type: ignore[return-value]

    def span(self, name: str, help: str = "",
             buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S) -> Span:
        """A timing context over the volatile histogram
        ``<name>_duration_seconds``."""
        hist = self.histogram(
            f"{name}_duration_seconds", help or f"Duration of {name}.",
            buckets=buckets, volatile=True,
        )
        return Span(hist)

    # -- introspection -------------------------------------------------
    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    # -- snapshot / merge ---------------------------------------------
    def snapshot(self, volatile: bool = True) -> dict:
        """The canonical snapshot: metrics sorted by name, children by
        label values.  ``volatile=False`` excludes volatile instruments
        — the deterministic view the replay CLI emits."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            "v": 1,
            "metrics": [
                metric.snapshot()
                for _, metric in metrics
                if volatile or not metric.volatile
            ],
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry.

        Same-named instruments must agree on type, labels and buckets;
        missing ones are created.  The fold is associative and
        commutative in every field, so parallel fan-in may merge
        worker registries in any order.
        """
        if not other.enabled:
            return
        with other._lock:
            items = sorted(other._metrics.items())
        for name, metric in items:
            if isinstance(metric, Counter):
                mine = self.counter(name, metric.help, metric.label_names,
                                    metric.volatile)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name, metric.help, metric.label_names,
                                  metric.volatile, metric.merge_mode)
            elif isinstance(metric, Histogram):
                mine = self.histogram(name, metric.help, metric.label_names,
                                      metric.buckets, metric.volatile)
            else:  # pragma: no cover - no other instrument kinds exist
                raise TypeError(f"unknown instrument type {type(metric)!r}")
            mine.merge_from(metric)  # type: ignore[arg-type]


class _NullInstrument:
    """One shared do-nothing instrument behind every null constructor."""

    __slots__ = ()
    volatile = False

    def inc(self, amount=1, **labels) -> None:
        return None

    def dec(self, amount=1, **labels) -> None:
        return None

    def set(self, value, **labels) -> None:
        return None

    def set_total(self, value, **labels) -> None:
        return None

    def observe(self, value, **labels) -> None:
        return None

    def labels(self, **labels) -> "_NullInstrument":
        return self

    def value(self, **labels) -> int:
        return 0

    def total(self) -> int:
        return 0

    def per_label(self) -> dict:
        return {}

    def count_of(self, **labels) -> int:
        return 0

    def sum_of(self, **labels) -> int:
        return 0

    def max_of(self, **labels) -> int:
        return 0

    def min_of(self, **labels) -> int:
        return 0

    def quantile(self, q, **labels) -> float:
        return 0.0

    def clear(self) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every constructor returns a shared no-op
    instrument, ``span`` a shared no-op context, ``snapshot`` is empty
    and ``merge`` drops its input.  Identity across calls lets call
    sites pre-bind instruments unconditionally and pay (almost)
    nothing when metrics are off."""

    enabled = False

    def counter(self, name, help="", labels=(), volatile=False):
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name, help="", labels=(), volatile=False, merge_mode="sum"):
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_SIZE_BUCKETS,
                  volatile=False):
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def span(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS_S):
        return _NULL_SPAN  # type: ignore[return-value]

    def snapshot(self, volatile: bool = True) -> dict:
        return {"v": 1, "metrics": []}

    def merge(self, other) -> None:
        return None


#: The process-wide disabled registry — the default ``metrics=`` value
#: throughout the stack.  Shared (it holds no state), so `is` checks
#: and pre-bound instruments work everywhere.
NULL_REGISTRY = NullRegistry()
