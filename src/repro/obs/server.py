"""One-file HTTP telemetry endpoint: ``/metrics``, ``/healthz``, ``/spans``.

This is the piece a future network-native checker service scrapes —
and, until that service exists, the way to watch a live verifier from
a browser or a Prometheus.  :class:`MetricsHTTPServer` wraps a
:class:`~repro.obs.registry.MetricsRegistry` (and optionally a live
:class:`~repro.runtime.verifier.ArmusRuntime` and a
:class:`~repro.obs.tracing.Tracer`) behind three routes:

* ``GET /metrics`` — Prometheus text exposition of the registry;
* ``GET /healthz`` — the structured health JSON of the runtime
  (``503`` once a deadlock report exists, so liveness probes trip);
* ``GET /spans`` — the tracer's span buffer as Chrome trace-event JSON
  (save it, load it in Perfetto or ``about:tracing``).

:func:`build_demo_runtime` supplies the live *deadlocking* scenario
``python -m repro.obs serve`` runs by default: ``n`` tasks in a phaser
ring (task *i* registered with phasers *i* and *i+1 mod n*, arriving
only at its own) — the n-way generalisation of the trace CLI's
"crossed" scenario, guaranteed to deadlock, detected by the periodic
monitor while the endpoint serves scrapes.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from repro.obs.export import to_prometheus
from repro.obs.health import runtime_health
from repro.obs.registry import MetricsRegistry

log = logging.getLogger(__name__)

__all__ = ["MetricsHTTPServer", "build_demo_runtime", "ring_scenario"]

#: Content type Prometheus expects from a text-format scrape target.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: How long a demo ring worker waits for the start gate before failing
#: loudly (module-level so the regression test can shrink it).
DEMO_GATE_TIMEOUT_S = 30.0


# ---------------------------------------------------------------------------
# live demo scenario
# ---------------------------------------------------------------------------
def ring_scenario(runtime, n_tasks: int = 3) -> List[object]:
    """Spawn ``n_tasks`` tasks in a phaser ring deadlock.

    Task *i* is registered with phaser *i* (its own) and phaser
    *i+1 mod n* (its successor's), but only ever arrives at its own —
    so every phaser waits forever on its predecessor task, a cycle of
    length ``n``.  ``n_tasks=2`` is exactly the "crossed" scenario of
    ``python -m repro.trace record``.
    """
    if n_tasks < 2:
        raise ValueError("a ring deadlock needs at least 2 tasks")
    from repro.core.report import DeadlockError
    from repro.runtime.phaser import Phaser

    phasers = [
        Phaser(runtime, register_self=False, name=f"ring{i}")
        for i in range(n_tasks)
    ]
    gate = threading.Event()

    def worker(i: int):
        def run() -> None:
            # A timed-out gate means the demo never actually started its
            # ring: proceeding would silently run a different scenario,
            # so fail the task loudly instead (join() surfaces it).
            if not gate.wait(DEMO_GATE_TIMEOUT_S):
                raise RuntimeError(
                    f"ring-t{i}: start gate not released within "
                    f"{DEMO_GATE_TIMEOUT_S}s"
                )
            try:
                phasers[i].arrive_and_await_advance()
            except DeadlockError:
                pass

        return run

    tasks = [
        runtime.spawn(
            worker(i),
            register=[phasers[i], phasers[(i + 1) % n_tasks]],
            name=f"ring-t{i}",
        )
        for i in range(n_tasks)
    ]
    gate.set()
    return tasks


SCENARIOS = {"ring": ring_scenario}


def build_demo_runtime(
    metrics: MetricsRegistry,
    scenario: str = "ring",
    n_tasks: int = 3,
    interval_s: float = 0.05,
    cancel_on_detect: bool = False,
    incremental: bool = True,
    tracer=None,
):
    """A started detection-mode runtime running ``scenario`` live.

    ``cancel_on_detect`` defaults off so the blocked population stays
    visible on the gauge after the report lands (the tasks park in
    their waits; :func:`shutdown_demo` cancels them at exit).
    """
    from repro.runtime.verifier import ArmusRuntime, VerificationMode

    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r} (have: {sorted(SCENARIOS)})")
    runtime = ArmusRuntime(
        mode=VerificationMode.DETECTION,
        interval_s=interval_s,
        poll_s=0.005,
        cancel_on_detect=cancel_on_detect,
        incremental=incremental,
        metrics=metrics,
        tracer=tracer,
    ).start()
    tasks = SCENARIOS[scenario](runtime, n_tasks)
    return runtime, tasks


def shutdown_demo(runtime, tasks, join_timeout_s: float = 5.0) -> bool:
    """Cancel the parked demo tasks and stop the runtime.

    Returns ``True`` when every task wound down (normally, cancelled,
    or by its deadlock error) and the runtime stopped.  A task that is
    still running after the join, or that died of an unexpected error,
    makes the shutdown *dirty*: it is logged and ``False`` is returned —
    never silently swallowed, so a wedged demo is observable to the
    caller (the CLI and the tests check the flag).
    """
    from repro.core.report import DeadlockError
    from repro.runtime.tasks import TaskFailedError

    clean = True
    for report in list(runtime.reports):
        for task_id in report.tasks:
            task = runtime.task_by_id(task_id)
            if task is not None:
                task.cancel(report)
    for task in tasks:
        try:
            task.join(join_timeout_s)
        except DeadlockError:
            pass  # the expected outcome of a cancelled deadlocked task
        except TimeoutError:
            log.warning("demo task %r still running after cancel + join", task)
            clean = False
        except TaskFailedError as exc:
            log.warning("demo task %r failed during shutdown: %s", task, exc)
            clean = False
    runtime.stop()
    return clean


# ---------------------------------------------------------------------------
# the HTTP server
# ---------------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server: "MetricsHTTPServer"

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _query_tenant(self, query: str) -> Optional[str]:
        values = urllib.parse.parse_qs(query).get("tenant", [])
        return values[0] if values else None

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, query = self.path.partition("?")
        if path == "/metrics":
            self._send(
                200, PROMETHEUS_CONTENT_TYPE,
                to_prometheus(self.server.registry),
            )
        elif path == "/healthz":
            service = self.server.service
            runtime = self.server.runtime
            if service is not None:
                # A checker service: aggregate health, or one tenant's
                # slice via ?tenant=NAME (unknown tenants 404).
                try:
                    doc = service.health_doc(self._query_tenant(query))
                except KeyError:
                    self._send(404, "text/plain; charset=utf-8",
                               "unknown tenant\n")
                    return
                status = 200 if doc["status"] == "ok" else 503
            elif runtime is None:
                doc = {"status": "ok", "mode": "none",
                       "instruments": len(self.server.registry.names())}
                status = 200
            else:
                doc = runtime_health(runtime, self.server.registry)
                status = 200 if doc["status"] == "ok" else 503
            self._send(
                status, "application/json",
                json.dumps(doc, sort_keys=True) + "\n",
            )
        elif path == "/spans":
            from repro.obs.tracing import NULL_TRACER, render_chrome_json

            tracer = None
            if self.server.service is not None:
                tracer = self.server.service.tracer_for(
                    self._query_tenant(query)
                )
            if tracer is None:
                tracer = self.server.tracer
            if tracer is None:
                tracer = NULL_TRACER
            self._send(
                200, "application/json",
                render_chrome_json(tracer.to_chrome()),
            )
        elif path == "/":
            self._send(
                200, "text/plain; charset=utf-8",
                "repro.obs telemetry endpoint\n"
                "  GET /metrics  Prometheus text exposition\n"
                "  GET /healthz  runtime health JSON (?tenant=NAME scopes "
                "a checker service)\n"
                "  GET /spans    span buffer as Chrome trace-event JSON\n",
            )
        else:
            self._send(404, "text/plain; charset=utf-8", "not found\n")

    def log_message(self, fmt: str, *args) -> None:
        if self.server.verbose:  # default: scrape traffic stays quiet
            super().log_message(fmt, *args)


class MetricsHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to a registry (+ optional runtime
    and tracer).

    Use as a context manager, or call :meth:`start` / :meth:`stop`
    explicitly::

        with MetricsHTTPServer(registry, runtime, port=0) as srv:
            print(srv.url)          # http://127.0.0.1:<chosen port>
            ...                     # serving in a daemon thread
    """

    daemon_threads = True
    # Rebind the port immediately after a previous server's shutdown:
    # without SO_REUSEADDR a restarted `serve` on the same port fails
    # with EADDRINUSE while the old socket sits in TIME_WAIT.  HTTPServer
    # sets this today, but the restart story must not hinge on that
    # default, so state it explicitly.
    allow_reuse_address = True

    def __init__(
        self,
        registry: MetricsRegistry,
        runtime=None,
        host: str = "127.0.0.1",
        port: int = 9464,
        verbose: bool = False,
        tracer=None,
        service=None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.registry = registry
        self.runtime = runtime
        self.tracer = tracer
        # A multi-tenant checker service (duck-typed: ``health_doc`` +
        # ``tracer_for``).  When present it owns /healthz and /spans,
        # giving both routes per-tenant views via ?tenant=NAME.
        self.service = service
        self.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "MetricsHTTPServer":
        """Serve forever in a daemon thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, name="obs-http", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Clean shutdown: stop serving, close the listening socket,
        join the serving thread.  Idempotent — safe to call twice — and
        leaves the port immediately rebindable (paired with
        ``allow_reuse_address`` above), so back-to-back serve cycles on
        one port never race the previous socket's teardown."""
        if self._thread is not None:
            self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
