"""Causal tracing: deterministic spans, provenance, and their exports.

This module is the provenance half of the observability plane.  The
metrics registry answers *how much* (counts, latencies); tracing
answers *which records*: when a deadlock report fires, every cycle edge
maps back to the trace records that published the statuses forming it,
and the report carries a **detection lag** — how far (in record
ordinals) the reporting check trailed the record that closed the cycle.

Three design rules keep every artifact reproducible:

* **Ordinals, not wall clock.**  Span boundaries and origins are trace
  record ordinals (the ``seq`` a reader can seek to), so replaying the
  same file reconstructs bit-identical spans on any host.  Wall-clock
  twins (the ``*_seconds`` lag histogram) are ``volatile`` and stay out
  of the deterministic snapshot.
* **Derived IDs.**  :func:`span_id` hashes the identifying parts with
  BLAKE2b — stable across processes and ``PYTHONHASHSEED``, unlike
  ``hash()``.
* **Shared enrichment.**  Both replay engines attach provenance through
  the same :class:`OriginTracker`/:func:`attach_provenance` pair, so
  enriched reports stay ``==``-identical between the from-scratch and
  incremental engines (the corpus agreement pin extends to provenance).

Exports are Chrome trace-event JSON (loadable in Perfetto / Chrome's
``about:tracing``) and a plain-text waterfall, both rendered by this
module and surfaced through ``python -m repro.trace explain`` and the
``/spans`` endpoint of ``python -m repro.obs serve``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.report import DeadlockReport, EdgeProvenance, RecordOrigin

__all__ = [
    "span_id",
    "TraceSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "OriginTracker",
    "attach_provenance",
    "spans_to_chrome",
    "chrome_trace_from_records",
    "validate_chrome_trace",
    "render_report_provenance",
    "render_chrome_json",
    "WATERFALL_WIDTH",
]

#: Column width of the text waterfall's bar area.
WATERFALL_WIDTH = 24

#: Default span ring-buffer capacity (old spans are evicted FIFO).
DEFAULT_SPAN_BUFFER = 4096


def span_id(*parts: object) -> str:
    """A 16-hex-digit ID derived from ``parts`` (BLAKE2b, seed-stable).

    The parts should identify the span in trace terms — name plus
    ordinals / stream tokens — never wall clock or ``id()``.
    """
    joined = "\x1f".join(str(p) for p in parts)
    return hashlib.blake2b(joined.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class TraceSpan:
    """One finished span (or instant event: ``start == end``).

    ``start``/``end`` are ordinals — trace record sequence numbers in
    replay, the tracer's own monotonic counter in live runs.  ``track``
    groups spans onto one timeline row (a task, a site, a component).
    """

    name: str
    track: str
    start: int
    end: int
    cat: str = "span"
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def id(self) -> str:
        return span_id(self.name, self.track, self.start, self.end)

    @property
    def instant(self) -> bool:
        return self.end <= self.start


class Tracer:
    """A thread-safe ring buffer of :class:`TraceSpan`.

    Call sites guard on :attr:`enabled` exactly like the metrics
    registry's pattern, and :data:`NULL_TRACER` is the disabled twin.
    ``begin``/``end`` bracket open spans under caller-chosen keys (a
    task id, a site name); ``event`` and ``complete`` append finished
    spans directly.
    """

    enabled = True

    def __init__(self, maxlen: int = DEFAULT_SPAN_BUFFER) -> None:
        self._spans: deque = deque(maxlen=maxlen)
        self._open: Dict[object, Tuple[str, str, int, Tuple]] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)

    def next_ordinal(self) -> int:
        """The live-path ordinal source: a process-monotonic counter."""
        return next(self._counter)

    def event(self, name: str, track: str, ordinal: Optional[int] = None,
              cat: str = "event", **args) -> None:
        """Record an instant event."""
        if ordinal is None:
            ordinal = self.next_ordinal()
        self._append(TraceSpan(name, track, ordinal, ordinal, cat,
                               tuple(sorted(args.items()))))

    def begin(self, name: str, track: str, key: object,
              ordinal: Optional[int] = None, cat: str = "span", **args) -> None:
        """Open a span under ``key`` (closed by :meth:`end`)."""
        if ordinal is None:
            ordinal = self.next_ordinal()
        with self._lock:
            self._open[key] = (name, track, ordinal, tuple(sorted(args.items())))

    def end(self, key: object, ordinal: Optional[int] = None, **args) -> None:
        """Close the span opened under ``key`` (no-op if absent)."""
        if ordinal is None:
            ordinal = self.next_ordinal()
        with self._lock:
            opened = self._open.pop(key, None)
        if opened is None:
            return
        name, track, start, base_args = opened
        merged = tuple(sorted(dict(base_args, **args).items()))
        self._append(TraceSpan(name, track, start, max(start, ordinal),
                               "span", merged))

    def complete(self, name: str, track: str, start: int,
                 ordinal: Optional[int] = None, cat: str = "span",
                 **args) -> None:
        """Append an already-finished span from ``start`` to now."""
        if ordinal is None:
            ordinal = self.next_ordinal()
        self._append(TraceSpan(name, track, start, max(start, ordinal), cat,
                               tuple(sorted(args.items()))))

    def _append(self, span: TraceSpan) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[TraceSpan]:
        """The buffered spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._open.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_chrome(self) -> dict:
        """The buffer as a Chrome trace-event document.

        Spans begun but not yet ended — a task blocked right now —
        are included as begin events, so scraping ``/spans`` during a
        deadlock shows the stuck tasks instead of an empty document.
        """
        with self._lock:
            closed = list(self._spans)
            open_ = [
                (name, track, start, dict(args))
                for name, track, start, args in self._open.values()
            ]
        return spans_to_chrome(closed, open_)


class NullTracer(Tracer):
    """The disabled tracer: every recording call is a no-op."""

    enabled = False

    def __init__(self) -> None:  # no buffer, no lock contention
        super().__init__(maxlen=1)

    def event(self, name, track, ordinal=None, cat="event", **args) -> None:
        return None

    def begin(self, name, track, key, ordinal=None, cat="span", **args) -> None:
        return None

    def end(self, key, ordinal=None, **args) -> None:
        return None

    def complete(self, name, track, start, ordinal=None, cat="span",
                 **args) -> None:
        return None

    def spans(self) -> List[TraceSpan]:
        return []


#: The process-wide disabled tracer — the default ``tracer=`` value
#: throughout the stack (shared; it holds no state).
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# replay-side origin tracking and report enrichment
# ---------------------------------------------------------------------------
class OriginTracker:
    """Tracks, per task, the record that published its analysed status.

    Fed every record of a replay in order (:meth:`observe`), it answers
    "which record put this task's status into the checked view":
    ``block`` records for local statuses, ``publish``/``publish_delta``
    records (with site, stream and per-stream seq) for distributed
    ones.  Later records override earlier ones — matching the analysed
    view, where a publish supersedes the local block it mirrors.

    Both replay engines drive one tracker with identical inputs, which
    is what keeps enriched reports equal between engines.
    """

    __slots__ = ("origins", "walls", "last_ordinal", "_site_tasks", "_kinds")

    def __init__(self) -> None:
        # Imported here, not at module level: repro.trace pulls this
        # module in through replay, so a top-level import would be
        # circular.  Caching the enum per tracker keeps the per-record
        # fold free of import-machinery lookups.
        from repro.trace.events import RecordKind

        self.origins: Dict[object, RecordOrigin] = {}
        #: task -> perf_counter at origin (volatile lag only; never
        #: reaches a report).
        self.walls: Dict[object, float] = {}
        self.last_ordinal = 0
        self._site_tasks: Dict[str, Set[str]] = {}
        self._kinds = RecordKind

    def _set(self, task, origin: RecordOrigin) -> None:
        self.origins[task] = origin
        self.walls[task] = time.perf_counter()

    def _drop(self, task) -> None:
        self.origins.pop(task, None)
        self.walls.pop(task, None)

    def observe(self, rec) -> None:
        """Fold one trace record into the origin map."""
        RecordKind = self._kinds

        self.last_ordinal = rec.seq
        kind = rec.kind
        if kind is RecordKind.BLOCK:
            self._set(rec.task, RecordOrigin(rec.seq, "block"))
        elif kind is RecordKind.UNBLOCK:
            origin = self.origins.get(rec.task)
            if origin is not None and origin.site is None:
                self._drop(rec.task)
        elif kind is RecordKind.PUBLISH:
            owned = self._site_tasks.get(rec.site, set())
            tasks = set(rec.payload)
            for gone in owned - tasks:
                self._drop(gone)
            origin = RecordOrigin(rec.seq, "publish", site=rec.site)
            for task in rec.payload:
                self._set(task, origin)
            self._site_tasks[rec.site] = tasks
        elif kind is RecordKind.PUBLISH_DELTA:
            payload = rec.payload
            origin = RecordOrigin(
                rec.seq, "publish_delta", site=rec.site,
                stream=payload["stream"], seq=payload["seq"],
            )
            owned = self._site_tasks.setdefault(rec.site, set())
            if payload["kind"] == "snapshot":
                tasks = set(payload["set"])
                for gone in owned - tasks:
                    self._drop(gone)
                owned = tasks
            else:
                for task in payload["clear"]:
                    self._drop(task)
                    owned.discard(task)
                for task in payload["restore"]:
                    owned.add(task)
                for task in payload["set"]:
                    owned.add(task)
            for task in itertools.chain(payload["set"], payload["restore"]):
                self._set(task, origin)
            self._site_tasks[rec.site] = owned
        # REGISTER / ADVANCE: context only — the ordinal already moved.


def _attribution_index(report: DeadlockReport, statuses):
    """Precompute SG-vertex attribution for one report.

    Returns ``(waiters, min_task)`` where ``waiters`` maps each awaited
    event to the minimal (string-ordered) report task whose status
    waits on it, and ``min_task`` is the minimal report task overall
    (the no-waiter fallback).  One pass over the report's tasks replaces
    the per-vertex scan the old code sorted out for every cycle edge.
    """
    waiters: Dict[object, Tuple[str, object]] = {}
    min_key: Optional[Tuple[str, object]] = None
    for task in report.tasks:
        key = (str(task), task)
        if min_key is None or key < min_key:
            min_key = key
        if task not in statuses:
            continue
        for event in statuses[task].waits:
            held = waiters.get(event)
            if held is None or key < held:
                waiters[event] = key
    min_task = None if min_key is None else min_key[1]
    return waiters, min_task


def _attribute(vertex, report: DeadlockReport, statuses,
               tracker: OriginTracker,
               index=None) -> Tuple[RecordOrigin, str]:
    """Attribute one cycle vertex to ``(origin, task)``.

    A WFG vertex *is* a task: its own origin.  An SG vertex is an
    event: attributed to the minimal (string-ordered) report task whose
    status waits on it.  Missing origins (an avoidance-refused block
    never entered the view) fall back to the current ordinal.
    """
    fallback = RecordOrigin(tracker.last_ordinal, "block")
    if vertex in tracker.origins:
        return tracker.origins[vertex], str(vertex)
    if vertex in statuses or not report.tasks:
        # A task vertex without a tracked origin (avoidance refusal).
        return fallback, str(vertex)
    if index is None:
        index = _attribution_index(report, statuses)
    waiters, min_task = index
    held = waiters.get(vertex)
    task = min_task if held is None else held[1]
    return tracker.origins.get(task, fallback), str(task)


def attach_provenance(
    report: DeadlockReport, tracker: OriginTracker, statuses
) -> Tuple[DeadlockReport, float]:
    """Enrich ``report`` with per-edge provenance and detection lag.

    ``statuses`` is the task→status mapping of the analysed view (used
    to attribute SG event vertices to waiting tasks).  Returns the
    enriched report plus the *wall-clock* lag since the closing record
    (volatile; callers feed it to the seconds histogram only).
    """
    current = tracker.last_ordinal
    edges: List[EdgeProvenance] = []
    index = _attribution_index(report, statuses)
    for a, b in zip(report.cycle, report.cycle[1:]):
        origin_a, task_a = _attribute(a, report, statuses, tracker, index)
        origin_b, task_b = _attribute(b, report, statuses, tracker, index)
        edges.append(EdgeProvenance(
            source=str(a), target=str(b),
            source_task=task_a, target_task=task_b,
            source_origin=origin_a, target_origin=origin_b,
        ))
    # The closing edge: the latest origin among the cycle's tasks (ties
    # broken by task string, for a deterministic wall-clock anchor).
    closing_ord, closing_task = 0, None
    for task in report.tasks:
        origin = tracker.origins.get(task)
        if origin is None:
            continue
        key = (origin.ordinal, str(task))
        if closing_task is None or key > (closing_ord, str(closing_task)):
            closing_ord, closing_task = origin.ordinal, task
    if closing_task is None:
        closing_ord = current
    lag = max(0, current - closing_ord)
    wall = tracker.walls.get(closing_task)
    lag_s = 0.0 if wall is None else max(0.0, time.perf_counter() - wall)
    enriched = replace(
        report,
        provenance=tuple(edges),
        detection_lag=lag,
        detected_at=current,
    )
    return enriched, lag_s


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
def spans_to_chrome(
    spans: Sequence[TraceSpan],
    open_spans: Sequence[Tuple[str, str, int, dict]] = (),
) -> dict:
    """Render spans as a Chrome trace-event document (Perfetto-loadable).

    Ordinals map to microsecond timestamps, tracks to thread ids in
    sorted-name order — so the document bytes are a pure function of
    the spans.  ``open_spans`` are begun-but-unfinished spans as
    ``(name, track, start, args)`` tuples; they become begin (``B``)
    events, which Perfetto renders as slices still running at the end
    of the trace — without them a deadlocked snapshot (every task
    blocked *right now*) would show nothing at all.
    """
    tracks = sorted(
        {s.track for s in spans} | {track for _, track, _, _ in open_spans}
    )
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    events: List[dict] = []
    for track in tracks:
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tids[track],
            "args": {"name": track},
        })
    for span in sorted(spans, key=lambda s: (s.start, s.track, s.name, s.end)):
        entry = {
            "name": span.name,
            "cat": span.cat,
            "pid": 1,
            "tid": tids[span.track],
            "ts": span.start,
            "args": dict(sorted(dict(span.args, span_id=span.id).items())),
        }
        if span.instant:
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = span.end - span.start
        events.append(entry)
    for name, track, start, args in sorted(
        open_spans, key=lambda o: (o[2], o[1], o[0])
    ):
        events.append({
            "name": name,
            "cat": "span",
            "ph": "B",
            "pid": 1,
            "tid": tids[track],
            "ts": start,
            "args": dict(
                sorted(dict(args, span_id=span_id(name, track, start)).items())
            ),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.tracing", "clock": "record-ordinals"},
    }


def chrome_trace_from_records(
    records: Iterable, reports: Sequence[DeadlockReport] = ()
) -> dict:
    """Build the Chrome document straight from trace records.

    Task blocked intervals become duration spans, publications instant
    events on per-site tracks, and each (enriched) report an instant
    event on the checker track carrying its cycle and lag.
    """
    from repro.trace.events import RecordKind

    spans: List[TraceSpan] = []
    open_blocks: Dict[object, int] = {}
    last = 0
    for rec in records:
        last = rec.seq
        kind = rec.kind
        if kind is RecordKind.BLOCK:
            open_blocks[rec.task] = rec.seq
        elif kind is RecordKind.UNBLOCK:
            start = open_blocks.pop(rec.task, None)
            if start is not None:
                spans.append(TraceSpan(
                    "task.blocked", f"task:{rec.task}", start, rec.seq,
                ))
        elif kind is RecordKind.PUBLISH:
            spans.append(TraceSpan(
                "site.publish", f"site:{rec.site}", rec.seq, rec.seq,
                cat="publish", args=(("tasks", len(rec.payload)),),
            ))
        elif kind is RecordKind.PUBLISH_DELTA:
            payload = rec.payload
            spans.append(TraceSpan(
                "site.publish_delta", f"site:{rec.site}", rec.seq, rec.seq,
                cat="publish",
                args=(
                    ("delta_kind", payload["kind"]),
                    ("seq", payload["seq"]),
                    ("stream", payload["stream"]),
                ),
            ))
    for task, start in sorted(open_blocks.items(), key=lambda kv: str(kv[0])):
        spans.append(TraceSpan("task.blocked", f"task:{task}", start, last))
    for number, report in enumerate(reports, 1):
        args: List[Tuple[str, object]] = [
            ("cycle", " -> ".join(str(v) for v in report.cycle)),
            ("model", report.model_used.value),
            ("number", number),
        ]
        if report.detection_lag is not None:
            args.append(("detection_lag_records", report.detection_lag))
        spans.append(TraceSpan(
            "deadlock.report", "checker",
            report.detected_at if report.detected_at is not None else last,
            report.detected_at if report.detected_at is not None else last,
            cat="report", args=tuple(sorted(args)),
        ))
    return spans_to_chrome(spans)


def validate_chrome_trace(doc: dict) -> None:
    """Schema-check a Chrome trace-event document (raises ValueError).

    Verifies the invariants Perfetto's JSON importer relies on: a
    ``traceEvents`` array whose entries carry ``name``/``ph``/``pid``/
    ``tid``, numeric non-negative ``ts`` on all non-metadata events,
    and a non-negative ``dur`` on every complete (``X``) event.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("chrome trace must be an object with a traceEvents array")
    for i, entry in enumerate(doc["traceEvents"]):
        if not isinstance(entry, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in entry:
                raise ValueError(f"traceEvents[{i}] missing {field!r}")
        ph = entry["ph"]
        if ph not in ("X", "i", "M", "B", "E"):
            raise ValueError(f"traceEvents[{i}] has unknown phase {ph!r}")
        if ph == "M":
            continue
        ts = entry.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{i}] has invalid ts {ts!r}")
        if ph == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}] has invalid dur {dur!r}")
        if ph == "i" and entry.get("s") not in ("t", "p", "g"):
            raise ValueError(f"traceEvents[{i}] instant missing scope")


# ---------------------------------------------------------------------------
# text waterfall
# ---------------------------------------------------------------------------
def _waterfall_rows(report: DeadlockReport) -> List[Tuple[str, RecordOrigin]]:
    rows: List[Tuple[str, RecordOrigin]] = []
    seen = set()
    for edge in report.provenance or ():
        for task, origin in (
            (edge.source_task, edge.source_origin),
            (edge.target_task, edge.target_origin),
        ):
            key = (task, origin.ordinal)
            if key not in seen:
                seen.add(key)
                rows.append((task, origin))
    return rows


def render_report_provenance(report: DeadlockReport, number: int) -> str:
    """The text waterfall for one enriched report (deterministic)."""
    lines = [f"report {number}: {report.describe().splitlines()[0]}"]
    lines.append("  cycle: " + " -> ".join(str(v) for v in report.cycle))
    if report.detection_lag is None or report.detected_at is None:
        lines.append("  provenance: not attached")
        return "\n".join(lines)
    closed = report.detected_at - report.detection_lag
    lines.append(
        f"  closed @record {closed}, reported @record {report.detected_at}, "
        f"detection lag {report.detection_lag} record(s)"
    )
    lines.append("  edges:")
    for edge in report.provenance or ():
        source = edge.source
        if edge.source_task != edge.source:
            source += f" [{edge.source_task}]"
        target = edge.target
        if edge.target_task != edge.target:
            target += f" [{edge.target_task}]"
        lines.append(
            f"    {source} <- {edge.source_origin.describe()}"
            f"  ->  {target} <- {edge.target_origin.describe()}"
        )
    rows = _waterfall_rows(report)
    if rows:
        lo = min(origin.ordinal for _, origin in rows)
        hi = max(report.detected_at, lo)
        span = max(1, hi - lo)
        width = WATERFALL_WIDTH
        labels = [f"{task}  {origin.describe()}" for task, origin in rows]
        pad = max(len(label) for label in labels)
        lines.append(f"  waterfall (records {lo}..{hi}):")
        for (task, origin), label in zip(rows, labels):
            offset = ((origin.ordinal - lo) * (width - 1)) // span
            bar = "." * offset + "=" * (width - offset)
            lines.append(f"    {label.ljust(pad)}  |{bar}|")
    return "\n".join(lines)


def render_chrome_json(doc: dict) -> str:
    """Canonical JSON text for a Chrome document (sorted, compact)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
