"""PL: the paper's core phaser-based language (Section 3).

PL abstracts user-level barrier programs as instruction sequences over
nine constructs (task creation, forking, phaser creation, registration,
deregistration, phase advance, await, loop, skip).  The package provides:

* :mod:`repro.pl.syntax` — the abstract syntax and a small builder DSL;
* :mod:`repro.pl.phaser` — the phaser data structure and its three
  mutating operations plus the ``await`` predicate (Figure 4, top);
* :mod:`repro.pl.state` — PL states ``(M, T)``;
* :mod:`repro.pl.semantics` — the small-step operational semantics
  (Figure 4), exposing every enabled reduction of a state;
* :mod:`repro.pl.deadlock` — the ground-truth deadlock characterisation
  (Definitions 3.1 and 3.2), independent of any graph analysis;
* :mod:`repro.pl.interpreter` — a seeded nondeterministic scheduler with
  verification hooks;
* :mod:`repro.pl.programs` — the paper's running example (Figure 3) and a
  library of barrier synchronisation patterns;
* :mod:`repro.pl.generator` — a random program generator for
  property-based testing of the soundness/completeness theorems.
"""

from repro.pl.syntax import (
    Instruction,
    NewTid,
    Fork,
    NewPhaser,
    Reg,
    Dereg,
    Adv,
    Await,
    Loop,
    Skip,
    seq,
)
from repro.pl.phaser import Phaser, await_holds
from repro.pl.state import State
from repro.pl.semantics import enabled_steps, step_task, reduce_once, is_stuck
from repro.pl.deadlock import (
    is_totally_deadlocked,
    is_deadlocked,
    deadlocked_subset,
    blocked_tasks,
    to_snapshot,
)
from repro.pl.interpreter import Interpreter, RunResult
from repro.pl.parser import parse, PLSyntaxError

__all__ = [
    "Instruction",
    "NewTid",
    "Fork",
    "NewPhaser",
    "Reg",
    "Dereg",
    "Adv",
    "Await",
    "Loop",
    "Skip",
    "seq",
    "Phaser",
    "await_holds",
    "State",
    "enabled_steps",
    "step_task",
    "reduce_once",
    "is_stuck",
    "is_totally_deadlocked",
    "is_deadlocked",
    "deadlocked_subset",
    "blocked_tasks",
    "to_snapshot",
    "Interpreter",
    "RunResult",
    "parse",
    "PLSyntaxError",
]
