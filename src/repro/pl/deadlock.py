"""Ground-truth deadlock characterisation (Definitions 3.1 and 3.2).

These definitions are *independent of any graph analysis* — they inspect
the state directly.  The soundness and completeness theorems relate them
to cycle detection on the graphs of Section 4, and the property-based
tests in ``tests/test_theorems.py`` check both directions on random
states and random programs.

* **Totally deadlocked** (Def. 3.1): every task is blocked on an
  ``await`` and is impeded by some task *of the same state*.
* **Deadlocked on T** (Def. 3.2): some sub-task-map ``T`` of the state is
  totally deadlocked (the remaining tasks may still be able to run).

:func:`deadlocked_subset` computes the *largest* totally-deadlocked
sub-map as a greatest fixed point: start from all awaiting tasks and
repeatedly discard tasks whose await is not impeded by a remaining task.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.dependency import DependencySnapshot
from repro.core.events import BlockedStatus, Event
from repro.pl.state import State
from repro.pl.syntax import Await, Name


def awaiting_tasks(state: State) -> Dict[Name, Tuple[Name, int]]:
    """Tasks whose next instruction is ``await(p)`` with ``p`` membership.

    Returns ``task -> (phaser, local phase)``.  A task awaiting a phaser
    it is not registered with is an error state, not a blocked task, and
    is excluded (the paper's Def. 3.1 requires ``M(p)(t) = n``).
    """
    out: Dict[Name, Tuple[Name, int]] = {}
    for task, body in state.tasks.items():
        if not body:
            continue
        head = body[0]
        if not isinstance(head, Await):
            continue
        phaser = state.phasers.get(head.phaser)
        if phaser is None or task not in phaser:
            continue
        out[task] = (head.phaser, phaser[task])
    return out


def blocked_tasks(state: State) -> FrozenSet[Name]:
    """Awaiting tasks whose ``await`` predicate does not (yet) hold."""
    blocked = set()
    for task, (p, n) in awaiting_tasks(state).items():
        phaser = state.phasers[p]
        if any(m < n for m in phaser.values()):
            blocked.add(task)
    return frozenset(blocked)


def is_totally_deadlocked(state: State) -> bool:
    """Definition 3.1, checked verbatim.

    ``T`` must be non-empty; every task must be of the form
    ``await(p); s`` with ``M(p)(t) = n``; and some task *of this state*
    must be registered below ``n`` on the same phaser.
    """
    if not state.tasks:
        return False
    awaiting = awaiting_tasks(state)
    if set(awaiting) != set(state.tasks):
        return False
    for task, (p, n) in awaiting.items():
        phaser = state.phasers[p]
        if not any(
            phaser.phase_of(other) is not None and phaser[other] < n
            for other in state.tasks
        ):
            return False
    return True


def deadlocked_subset(state: State) -> FrozenSet[Name]:
    """The largest task set ``B`` such that ``(M, T|B)`` is totally
    deadlocked; empty when the state is not deadlocked.

    Greatest-fixed-point iteration: begin with every awaiting task and
    remove any task whose awaited phase is not impeded by a *remaining*
    task; repeat to a fixed point.
    """
    awaiting = awaiting_tasks(state)
    candidates = set(awaiting)
    changed = True
    while changed:
        changed = False
        for task in list(candidates):
            p, n = awaiting[task]
            phaser = state.phasers[p]
            if not any(
                other in candidates
                and phaser.phase_of(other) is not None
                and phaser[other] < n
                for other in candidates
            ):
                candidates.discard(task)
                changed = True
    return frozenset(candidates)


def is_deadlocked(state: State) -> bool:
    """Definition 3.2: some sub-task-map is totally deadlocked."""
    return bool(deadlocked_subset(state))


def to_snapshot(state: State, only_blocked: bool = True) -> DependencySnapshot:
    """The resource-dependency abstraction ``phi(M, T)`` (Definition 4.1).

    Maps every awaiting task to a :class:`BlockedStatus`: it waits on the
    event ``(p, n)`` where ``n`` is its local phase, and it registers the
    local phases of all its phasers (from which the ``I`` map is derived).

    With ``only_blocked=True`` tasks whose await already holds are
    excluded — they are about to reduce via [sync].  Including them is
    harmless for cycle detection (they have no impeders, hence no
    out-edges) but the runtime never reports them, so tests default to the
    runtime's view.
    """
    statuses: Dict[Name, BlockedStatus] = {}
    blocked = blocked_tasks(state)
    for task, (p, n) in awaiting_tasks(state).items():
        if only_blocked and task not in blocked:
            continue
        statuses[task] = BlockedStatus(
            waits=frozenset({Event(p, n)}),
            registered=state.registered_phasers(task),
        )
    return DependencySnapshot(statuses=statuses)


def check_deadlock(state: State) -> Optional[FrozenSet[Name]]:
    """Convenience: the deadlocked task set, or ``None``."""
    subset = deadlocked_subset(state)
    return subset or None
