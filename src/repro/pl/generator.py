"""Random PL states and programs for property-based testing.

Two generators back the theorem tests in ``tests/test_theorems.py``:

* :func:`random_state` draws arbitrary well-formed PL states — phasers
  with random memberships and phases, tasks awaiting random phasers they
  are registered with.  The soundness/completeness theorems quantify over
  states, so this is the direct test vector.
* :func:`random_program` draws well-formed driver programs mixing the
  patterns of :mod:`repro.pl.programs` — SPMD rounds, crossed barrier
  orders, dropped arrivals, dropped deregistrations — some of which
  deadlock and some of which do not.  Running them through the
  interpreter with a checker attached exercises the whole pipeline.

Determinism: both take a :class:`random.Random` so hypothesis can drive
them through seeds.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.pl.phaser import Phaser
from repro.pl.state import State
from repro.pl.syntax import (
    Adv,
    Await,
    Dereg,
    Fork,
    NewPhaser,
    NewTid,
    Reg,
    Seq,
    Skip,
    seq,
)


def random_state(
    rng: random.Random,
    max_tasks: int = 6,
    max_phasers: int = 4,
    max_phase: int = 3,
) -> State:
    """An arbitrary well-formed PL state.

    Every task is either awaiting one of its phasers (body =
    ``await(p); skip``) or running (body = ``skip`` or ``end``).
    Membership and local phases are random; awaiting tasks exist whose
    predicate already holds, tasks blocked for good, and cycles.
    """
    n_tasks = rng.randint(1, max_tasks)
    n_phasers = rng.randint(1, max_phasers)
    task_names = [f"t{i}" for i in range(n_tasks)]
    phaser_names = [f"p{i}" for i in range(n_phasers)]

    phasers = {}
    membership: dict = {t: [] for t in task_names}
    for p in phaser_names:
        members = {}
        for t in task_names:
            if rng.random() < 0.6:
                members[t] = rng.randint(0, max_phase)
                membership[t].append(p)
        if members:
            phasers[p] = Phaser(members)

    tasks = {}
    for t in task_names:
        registered = membership[t]
        roll = rng.random()
        if registered and roll < 0.7:
            p = rng.choice(registered)
            tasks[t] = seq(Await(p), Skip())
        elif roll < 0.85:
            tasks[t] = seq(Skip())
        else:
            tasks[t] = ()
    return State(phasers=phasers, tasks=tasks)


def random_program(
    rng: random.Random,
    max_workers: int = 4,
    max_phasers: int = 3,
    max_rounds: int = 3,
    drop_arrival_p: float = 0.15,
    drop_dereg_p: float = 0.15,
    shuffle_order_p: float = 0.5,
) -> Seq:
    """A random well-formed driver program.

    The driver creates ``k`` phasers, forks ``m`` workers registered with
    a random non-empty subset, and joins via a dedicated join phaser.
    Worker bodies run synchronisation rounds over their phasers in a
    per-worker order (shuffled with probability ``shuffle_order_p`` —
    crossed orders are the classic deadlock seed), skip an arrival with
    probability ``drop_arrival_p`` (missing-participant deadlocks), and
    skip a final deregistration with probability ``drop_dereg_p``
    (starvation of later joiners).
    """
    n_workers = rng.randint(1, max_workers)
    n_phasers = rng.randint(1, max_phasers)
    phasers = [f"p{i}" for i in range(n_phasers)]
    join = "pj"

    driver: List = [NewPhaser(p) for p in phasers]
    driver.append(NewPhaser(join))

    for w in range(n_workers):
        t = f"w{w}"
        mine = [p for p in phasers if rng.random() < 0.7] or [rng.choice(phasers)]
        order = list(mine)
        if rng.random() < shuffle_order_p:
            rng.shuffle(order)
        rounds = rng.randint(1, max_rounds)
        body: List = []
        for _ in range(rounds):
            for p in order:
                if rng.random() < drop_arrival_p:
                    body.append(Skip())
                    continue
                body.append(Adv(p))
                body.append(Await(p))
        for p in mine:
            if rng.random() >= drop_dereg_p:
                body.append(Dereg(p))
        body.append(Dereg(join))
        driver.append(NewTid(t))
        for p in mine:
            driver.append(Reg(task=t, phaser=p))
        driver.append(Reg(task=t, phaser=join))
        driver.append(Fork(task=t, body=seq(*body)))

    # The driver leaves the worker phasers (it was auto-registered by
    # newPhaser) and joins the workers.
    for p in phasers:
        driver.append(Dereg(p))
    driver.append(Adv(join))
    driver.append(Await(join))
    return seq(*driver)


def random_seeded_program(seed: int, **kwargs) -> Seq:
    """Convenience wrapper keyed by an integer seed (hypothesis-friendly)."""
    return random_program(random.Random(seed), **kwargs)


def random_seeded_state(seed: int, **kwargs) -> State:
    """Convenience wrapper keyed by an integer seed (hypothesis-friendly)."""
    return random_state(random.Random(seed), **kwargs)
