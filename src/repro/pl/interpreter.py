"""A seeded nondeterministic interpreter (scheduler) for PL.

Runs a PL state to quiescence by repeatedly firing one enabled reduction
chosen pseudo-randomly.  Because PL's ``loop`` reduces nondeterministically
([i-loop]/[e-loop]), the interpreter exposes an ``unfold_bias`` knob and a
global step budget so that every run terminates.

The interpreter doubles as the *application layer* for verifying PL
programs: with a :class:`~repro.core.checker.DeadlockChecker` attached it
publishes the resource-dependency abstraction ``phi(S)`` whenever the set
of blocked tasks changes — the PL analogue of JArmus intercepting blocking
calls (Section 5.3) — and can run in avoidance or detection style.

For exhaustiveness (small programs only), :func:`explore` enumerates the
full reachable state space and reports every quiescent state, classifying
each as finished, deadlocked, or faulted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.checker import DeadlockChecker
from repro.core.report import DeadlockReport
from repro.pl.deadlock import deadlocked_subset, to_snapshot
from repro.pl.semantics import Step, apply_step, enabled_steps
from repro.pl.state import State
from repro.pl.syntax import Name, Seq


@dataclass
class RunResult:
    """Outcome of one interpreter run."""

    state: State
    steps: int
    #: True when the step budget ran out before quiescence.
    exhausted: bool
    #: The largest totally-deadlocked task subset of the final state.
    deadlocked: FrozenSet[Name]
    #: Reports produced by an attached checker (at most one unless the
    #: deadlock was repeatedly re-confirmed).
    reports: List[DeadlockReport] = field(default_factory=list)

    @property
    def is_deadlocked(self) -> bool:
        return bool(self.deadlocked)

    @property
    def finished(self) -> bool:
        return not self.state.live_tasks()


class Interpreter:
    """Seeded scheduler with optional deadlock verification.

    Parameters
    ----------
    seed:
        Seed for the scheduling RNG (runs are reproducible).
    unfold_bias:
        Probability of choosing [i-loop] over [e-loop] when both are
        offered; lower values terminate loops faster.
    max_steps:
        Global reduction budget.
    checker:
        Optional deadlock checker fed with ``phi(S)`` after every step.
    check_every:
        Check cadence in steps when a checker is attached (the detection
        "period" translated from wall-clock to reduction counts).
    recorder:
        Optional :class:`~repro.trace.recorder.TraceRecorder`; the
        blocked-set *diffs* of each ``phi(S)`` publication are recorded
        as block/unblock records, so PL runs replay exactly like runtime
        runs.  Requires an attached ``checker`` (recording piggybacks on
        its publication points).
    """

    def __init__(
        self,
        seed: int = 0,
        unfold_bias: float = 0.5,
        max_steps: int = 100_000,
        checker: Optional[DeadlockChecker] = None,
        check_every: int = 1,
        recorder=None,
    ) -> None:
        self.rng = random.Random(seed)
        self.unfold_bias = unfold_bias
        self.max_steps = max_steps
        self.checker = checker
        self.check_every = max(1, check_every)
        self.recorder = recorder
        self._published: Dict[Name, object] = {}

    def run(self, start: State) -> RunResult:
        """Reduce ``start`` until no step is enabled or the budget ends."""
        # Each run records a fresh blocked-set stream; stale diff state
        # from a previous run() would suppress or fabricate records.
        self._published = {}
        state = start
        steps = 0
        reports: List[DeadlockReport] = []
        while steps < self.max_steps:
            step = self._choose(enabled_steps(state))
            if step is None:
                break
            state = apply_step(state, step)
            steps += 1
            if self.checker is not None and steps % self.check_every == 0:
                report = self._verify(state)
                if report is not None:
                    reports.append(report)
                    break
        else:
            return RunResult(
                state=state,
                steps=steps,
                exhausted=True,
                deadlocked=deadlocked_subset(state),
                reports=reports,
            )
        if self.checker is not None and not reports:
            report = self._verify(state)
            if report is not None:
                reports.append(report)
        return RunResult(
            state=state,
            steps=steps,
            exhausted=False,
            deadlocked=deadlocked_subset(state),
            reports=reports,
        )

    # ------------------------------------------------------------------
    def _choose(self, steps: List[Step]) -> Optional[Step]:
        if not steps:
            return None
        # Apply the unfold bias: when a task offers both loop rules, keep
        # one of them according to a biased coin flip.
        by_task: Dict[Name, List[Step]] = {}
        for s in steps:
            by_task.setdefault(s.task, []).append(s)
        candidates: List[Step] = []
        for options in by_task.values():
            rules = {s.rule for s in options}
            if rules == {"i-loop", "e-loop"}:
                pick = "i-loop" if self.rng.random() < self.unfold_bias else "e-loop"
                candidates.extend(s for s in options if s.rule == pick)
            else:
                candidates.extend(options)
        return self.rng.choice(candidates)

    def _verify(self, state: State) -> Optional[DeadlockReport]:
        """Publish phi(state) into the checker and run one check."""
        assert self.checker is not None
        snapshot = to_snapshot(state)
        if self.recorder is not None:
            self._record_diff(snapshot.statuses)
        self.checker.dependency.clear_all()
        for task, status in snapshot.statuses.items():
            self.checker.dependency.set_blocked(task, status)
        return self.checker.check()

    def _record_diff(self, statuses) -> None:
        """Record the blocked-set delta of this publication: tasks that
        left the blocked set unblock; new or changed statuses block."""
        for task in list(self._published):
            if task not in statuses:
                self.recorder.record_unblock(task)
                del self._published[task]
        for task, status in statuses.items():
            if self._published.get(task) != status:
                self.recorder.record_block(task, status)
                self._published[task] = status


@dataclass
class ExploreResult:
    """Exhaustive exploration outcome (small programs only)."""

    #: Quiescent states with every task finished.
    finished: List[State] = field(default_factory=list)
    #: Quiescent states with a non-empty deadlocked subset.
    deadlocked: List[State] = field(default_factory=list)
    #: Quiescent states that are stuck for non-await reasons (errors).
    faulted: List[State] = field(default_factory=list)
    #: Number of distinct states visited.
    visited: int = 0
    #: True when exploration hit the state or depth cap.
    truncated: bool = False

    @property
    def can_deadlock(self) -> bool:
        return bool(self.deadlocked)


def explore(
    start: State,
    max_states: int = 50_000,
    max_loop_unfolds: int = 2,
) -> ExploreResult:
    """Enumerate the reachable state space of ``start``.

    ``loop`` bodies are unfolded at most ``max_loop_unfolds`` times per
    branch to keep the space finite; this explores the behaviours of the
    bounded unrollings, which is sufficient for the barrier patterns the
    test-suite model-checks.
    """
    result = ExploreResult()
    seen: Set[Tuple] = set()
    stack: List[Tuple[State, int]] = [(start, 0)]
    while stack:
        state, unfolds = stack.pop()
        key = (_state_key(state), unfolds)
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > max_states:
            result.truncated = True
            break
        steps = enabled_steps(state)
        if unfolds >= max_loop_unfolds:
            steps = [s for s in steps if s.rule != "i-loop"]
        if not steps:
            result.visited = len(seen)
            if not state.live_tasks():
                result.finished.append(state)
            elif deadlocked_subset(state):
                result.deadlocked.append(state)
            else:
                result.faulted.append(state)
            continue
        for step in steps:
            nxt = apply_step(state, step)
            nxt_unfolds = unfolds + (1 if step.rule == "i-loop" else 0)
            stack.append((nxt, nxt_unfolds))
    result.visited = len(seen)
    return result


def _state_key(state: State) -> Tuple:
    phasers = tuple(
        sorted((p, tuple(sorted(ph.items()))) for p, ph in state.phasers.items())
    )
    tasks = tuple(sorted(state.tasks.items()))
    return (phasers, tasks)
