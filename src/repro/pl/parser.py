"""A parser for PL's concrete syntax (the notation of Figure 3).

Accepts the textual form produced by :func:`repro.pl.syntax.pretty` and
used throughout the paper::

    pc = newPhaser();
    t = newTid();
    reg(pc, t);
    fork(t)
      loop
        skip;
        adv(pc); await(pc);
      end;
    end;
    dereg(pc);

``parse`` returns an instruction sequence (:data:`repro.pl.syntax.Seq`);
``pretty`` and ``parse`` round-trip (tested for the whole program
library).  Errors carry line/column positions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.pl.syntax import (
    Adv,
    Await,
    Dereg,
    Fork,
    Instruction,
    Loop,
    NewPhaser,
    NewTid,
    Reg,
    Seq,
    Skip,
)


class PLSyntaxError(ValueError):
    """A parse error with source position."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class _Token:
    kind: str  # IDENT | PUNCT | KEYWORD
    text: str
    line: int
    column: int


_KEYWORDS = {
    "skip",
    "loop",
    "end",
    "fork",
    "reg",
    "dereg",
    "adv",
    "await",
    "newTid",
    "newPhaser",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[=();,])
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, col = 1, 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise PLSyntaxError(
                f"unexpected character {source[pos]!r}", line, col
            )
        text = match.group(0)
        if match.lastgroup == "ident":
            kind = "KEYWORD" if text in _KEYWORDS else "IDENT"
            tokens.append(_Token(kind, text, line, col))
        elif match.lastgroup == "punct":
            tokens.append(_Token("PUNCT", text, line, col))
        # advance the position bookkeeping (newlines reset the column)
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers ----------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else _Token("", "", 1, 1)
            raise PLSyntaxError("unexpected end of input", last.line, last.column)
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise PLSyntaxError(
                f"expected {text!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return token

    def _ident(self) -> str:
        token = self._next()
        if token.kind != "IDENT":
            raise PLSyntaxError(
                f"expected a name, found {token.text!r}", token.line, token.column
            )
        return token.text

    # -- grammar ------------------------------------------------------------
    def sequence(self, closers: Tuple[str, ...] = ()) -> Seq:
        """``stmt*`` until end-of-input or one of ``closers``."""
        out: List[Instruction] = []
        while True:
            token = self._peek()
            if token is None or token.text in closers:
                return tuple(out)
            out.append(self.instruction())

    def instruction(self) -> Instruction:
        token = self._next()
        if token.kind == "IDENT":
            # binder form: IDENT = newTid() ; | IDENT = newPhaser() ;
            self._expect("=")
            ctor = self._next()
            if ctor.text not in ("newTid", "newPhaser"):
                raise PLSyntaxError(
                    f"expected newTid or newPhaser, found {ctor.text!r}",
                    ctor.line,
                    ctor.column,
                )
            self._expect("(")
            self._expect(")")
            self._expect(";")
            if ctor.text == "newTid":
                return NewTid(token.text)
            return NewPhaser(token.text)

        if token.text == "skip":
            self._expect(";")
            return Skip()

        if token.text in ("adv", "await", "dereg"):
            self._expect("(")
            phaser = self._ident()
            self._expect(")")
            self._expect(";")
            return {"adv": Adv, "await": Await, "dereg": Dereg}[token.text](phaser)

        if token.text == "reg":
            # reg(p, t): phaser first, as printed in Figure 3.
            self._expect("(")
            phaser = self._ident()
            self._expect(",")
            task = self._ident()
            self._expect(")")
            self._expect(";")
            return Reg(task=task, phaser=phaser)

        if token.text == "fork":
            self._expect("(")
            task = self._ident()
            self._expect(")")
            body = self.sequence(closers=("end",))
            self._expect("end")
            self._expect(";")
            return Fork(task=task, body=body)

        if token.text == "loop":
            body = self.sequence(closers=("end",))
            self._expect("end")
            self._expect(";")
            return Loop(body=body)

        raise PLSyntaxError(
            f"unexpected token {token.text!r}", token.line, token.column
        )


def parse(source: str) -> Seq:
    """Parse PL concrete syntax into an instruction sequence."""
    parser = _Parser(_tokenize(source))
    seq = parser.sequence()
    trailing = parser._peek()
    if trailing is not None:  # pragma: no cover - sequence() consumes all
        raise PLSyntaxError(
            f"trailing input {trailing.text!r}", trailing.line, trailing.column
        )
    return seq
