"""The phaser data structure (Figure 4, "Phasers" block).

A phaser ``P`` maps task names to local phases.  Three operations mutate
it — ``reg(t, n)``, ``dereg(t)``, ``adv(t)`` — and one predicate observes
it: ``await(P, n)`` holds when every member's local phase is at least
``n``::

    forall t in dom(P): P(t) >= n  =>  await(P, n)

The structure is immutable: each operation returns a new phaser, which
keeps PL states hashable and makes the interpreter's backtracking and the
property-based tests straightforward.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional

from repro.pl.syntax import Name


class Phaser(Mapping[Name, int]):
    """Immutable mapping from member task names to local phases."""

    __slots__ = ("_members",)

    def __init__(self, members: Optional[Mapping[Name, int]] = None) -> None:
        self._members: Dict[Name, int] = dict(members or {})

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, task: Name) -> int:
        return self._members[task]

    def __iter__(self) -> Iterator[Name]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}: {n}" for t, n in sorted(self._members.items()))
        return "{" + inner + "}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Phaser):
            return self._members == other._members
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._members.items()))

    # -- operations (Figure 4) ----------------------------------------------
    def reg(self, task: Name, phase: int) -> "Phaser":
        """Rule [reg]: add member ``task`` at ``phase``.

        The premise ``exists t': P(t') <= n`` forbids registering a task
        "in the past's future": the new member's phase may not exceed every
        existing member's phase, otherwise it could observe an event that
        will never be impeded.  (When the registering task passes its own
        phase — the only way rule [reg] of the state semantics is invoked —
        the premise holds trivially.)
        """
        if task in self._members:
            raise PhaserError(f"task {task!r} already registered")
        if self._members and not any(n <= phase for n in self._members.values()):
            raise PhaserError(
                f"cannot register {task!r} at phase {phase}: "
                f"all members are past it ({self!r})"
            )
        out = dict(self._members)
        out[task] = phase
        return Phaser(out)

    def dereg(self, task: Name) -> "Phaser":
        """Rule [dereg]: revoke ``task``'s membership."""
        if task not in self._members:
            raise PhaserError(f"task {task!r} not registered")
        out = dict(self._members)
        del out[task]
        return Phaser(out)

    def adv(self, task: Name) -> "Phaser":
        """Rule [adv]: increment ``task``'s local phase."""
        if task not in self._members:
            raise PhaserError(f"task {task!r} not registered")
        out = dict(self._members)
        out[task] += 1
        return Phaser(out)

    # -- observation ---------------------------------------------------------
    def phase_of(self, task: Name) -> Optional[int]:
        return self._members.get(task)


def await_holds(phaser: Phaser, phase: int) -> bool:
    """The ``await(P, n)`` predicate: every member is at least at ``phase``.

    Vacuously true for a memberless phaser (universal quantification over
    an empty domain) — a task deregistered by everyone else can always
    proceed.
    """
    return all(n >= phase for n in phaser.values())


class PhaserError(RuntimeError):
    """An ill-formed phaser operation (violated rule premise)."""
