"""A library of PL programs: the paper's running example and the barrier
synchronisation patterns surveyed in Sections 2 and 3.

Each builder returns the *body of the driver task*; wrap it with
``State.initial(...)`` to obtain the initial state.  Programs marked
"deadlocks" reach a deadlocked state under every schedule that lets all
workers start (the test-suite model-checks the small instances).
"""

from __future__ import annotations

from repro.pl.state import State
from repro.pl.syntax import (
    Adv,
    Await,
    Dereg,
    Fork,
    NewPhaser,
    NewTid,
    Reg,
    Seq,
    Skip,
    seq,
)


def worker_body(J: int, cyclic: str, join: str) -> Seq:
    """The worker of Figure 3: J iterations of the two-step averaging loop,
    then deregistration from both barriers (unrolled; PL's ``loop`` is
    nondeterministic, so tests prefer the deterministic unrolling)."""
    one_iter = seq(
        Skip(),  # read neighbours
        Adv(cyclic),
        Await(cyclic),
        Skip(),  # write average
        Adv(cyclic),
        Await(cyclic),
    )
    body: list = []
    for _ in range(J):
        body.append(one_iter)
    body.append(Dereg(cyclic))
    body.append(Dereg(join))  # notify finish
    return seq(*body)


def running_example(I: int = 3, J: int = 1) -> Seq:
    """Figure 3: the deadlocking parallel 1-D iterative averaging driver.

    The driver creates the cyclic barrier ``pc`` (implicitly registering
    itself) and the join barrier ``pb``, spawns ``I`` workers registered
    with both, then joins on ``pb`` — without ever advancing or leaving
    ``pc``.  All workers block on their first ``await(pc)`` forever:
    deadlock (Example 4.1 is this program with I=3 at the first await).
    """
    body: list = [NewPhaser("pc"), NewPhaser("pb")]
    for i in range(I):
        t = f"w{i}"
        body += [
            NewTid(t),
            Reg(task=t, phaser="pc"),
            Reg(task=t, phaser="pb"),
            Fork(task=t, body=worker_body(J, "pc", "pb")),
        ]
    body += [Adv("pb"), Await("pb"), Skip()]  # join barrier step; handle(a)
    return seq(*body)


def running_example_fixed(I: int = 3, J: int = 1) -> Seq:
    """The fix from Section 2.1: the driver drops its ``pc`` membership
    before joining (the PL rendering of inserting ``c.drop()``)."""
    body: list = [NewPhaser("pc"), NewPhaser("pb")]
    for i in range(I):
        t = f"w{i}"
        body += [
            NewTid(t),
            Reg(task=t, phaser="pc"),
            Reg(task=t, phaser="pb"),
            Fork(task=t, body=worker_body(J, "pc", "pb")),
        ]
    body += [Dereg("pc"), Adv("pb"), Await("pb"), Skip()]
    return seq(*body)


def two_barrier_cross() -> Seq:
    """Two tasks arrive at two phasers in opposite orders: the classic
    crossed-barrier deadlock (group synchronisation gone wrong).

    t0: adv(a); await(a); adv(b); await(b)
    t1: adv(b); await(b); adv(a); await(a)

    Both registered with both phasers: t0 blocks on ``a@1`` (t1 is at
    ``a@0``), t1 blocks on ``b@1`` (t0 is at ``b@0``).  Deadlocks.
    """
    t0 = seq(Adv("a"), Await("a"), Adv("b"), Await("b"), Dereg("a"), Dereg("b"))
    t1 = seq(Adv("b"), Await("b"), Adv("a"), Await("a"), Dereg("a"), Dereg("b"))
    return seq(
        NewPhaser("a"),
        NewPhaser("b"),
        NewTid("x"),
        Reg(task="x", phaser="a"),
        Reg(task="x", phaser="b"),
        NewTid("y"),
        Reg(task="y", phaser="a"),
        Reg(task="y", phaser="b"),
        Fork(task="x", body=t0),
        Fork(task="y", body=t1),
        # The driver leaves both phasers so only the workers synchronise.
        Dereg("a"),
        Dereg("b"),
    )


def two_barrier_aligned() -> Seq:
    """The deadlock-free variant: both tasks take the phasers in the same
    order."""
    t = seq(Adv("a"), Await("a"), Adv("b"), Await("b"), Dereg("a"), Dereg("b"))
    return seq(
        NewPhaser("a"),
        NewPhaser("b"),
        NewTid("x"),
        Reg(task="x", phaser="a"),
        Reg(task="x", phaser="b"),
        NewTid("y"),
        Reg(task="y", phaser="a"),
        Reg(task="y", phaser="b"),
        Fork(task="x", body=t),
        Fork(task="y", body=t),
        Dereg("a"),
        Dereg("b"),
    )


def split_phase(n: int = 2, work_len: int = 3) -> Seq:
    """Split-phase (fuzzy) barrier: each task *arrives* early (``adv``),
    overlaps local work, and *awaits* later.  Deadlock-free; exercises the
    adv/await decoupling that MPI calls non-blocking collectives."""
    work = tuple(Skip() for _ in range(work_len))
    body = seq(Adv("p"), *work, Await("p"), Dereg("p"))
    out: list = [NewPhaser("p")]
    for i in range(n):
        t = f"w{i}"
        out += [NewTid(t), Reg(task=t, phaser="p"), Fork(task=t, body=body)]
    out += [Adv("p"), Await("p"), Dereg("p")]
    return seq(*out)


def spmd_rounds(n: int = 3, rounds: int = 2) -> Seq:
    """SPMD stepping: ``n`` workers synchronise ``rounds`` times on one
    phaser; the driver leaves the phaser after spawning.  Deadlock-free."""
    step = seq(Skip(), Adv("p"), Await("p"))
    body = seq(*([step] * rounds), Dereg("p"))
    out: list = [NewPhaser("p")]
    for i in range(n):
        t = f"w{i}"
        out += [NewTid(t), Reg(task=t, phaser="p"), Fork(task=t, body=body)]
    out.append(Dereg("p"))
    return seq(*out)


def fork_join(n: int = 3) -> Seq:
    """The finish/join-barrier pattern alone: workers signal completion by
    deregistering; the driver awaits.  Deadlock-free."""
    out: list = [NewPhaser("pb")]
    for i in range(n):
        t = f"w{i}"
        out += [
            NewTid(t),
            Reg(task=t, phaser="pb"),
            Fork(task=t, body=seq(Skip(), Dereg("pb"))),
        ]
    out += [Adv("pb"), Await("pb")]
    return seq(*out)


def missing_participant(n: int = 3) -> Seq:
    """One worker of ``n`` terminates without arriving at the cyclic
    barrier while still registered.  The remaining workers block forever,
    yet the state is **not** deadlocked by Definition 3.2: the impeding
    task is terminated, not awaiting, so no totally-deadlocked subset
    exists.  This is *starvation*, outside the circular-wait class Armus
    verifies — and outside what can happen in X10/HJ, where tasks
    deregister upon termination (Section 7, "Deadlock avoidance").  The
    tests use this program to probe the soundness boundary: the checker
    must stay silent here.
    """
    good = seq(Adv("p"), Await("p"), Dereg("p"))
    bad = seq(Skip())  # terminates without adv or dereg
    out: list = [NewPhaser("p")]
    for i in range(n):
        t = f"w{i}"
        body = bad if i == 0 else good
        out += [NewTid(t), Reg(task=t, phaser="p"), Fork(task=t, body=body)]
    out.append(Dereg("p"))
    return seq(*out)


def dynamic_membership(n: int = 3) -> Seq:
    """Workers join the barrier, synchronise once, and leave one by one
    while the remainder keeps synchronising — legal dynamic membership,
    deadlock-free.  Worker ``i`` performs ``i+1`` synchronisations."""
    out: list = [NewPhaser("p")]
    for i in range(n):
        t = f"w{i}"
        steps = []
        for _ in range(i + 1):
            steps += [Adv("p"), Await("p")]
        steps.append(Dereg("p"))
        out += [NewTid(t), Reg(task=t, phaser="p"), Fork(task=t, body=seq(*steps))]
    out.append(Dereg("p"))
    return seq(*out)


def nested_fork_join(width: int = 2) -> Seq:
    """Two-level nested finish: the driver joins ``width`` middle tasks,
    each of which joins ``width`` leaves.  Deadlock-free; a task is
    registered with every enclosing join barrier, as in X10."""
    out: list = [NewPhaser("outer")]
    for i in range(width):
        mid = f"m{i}"
        inner_name = f"inner{i}"
        mid_body: list = [NewPhaser(inner_name)]
        for j in range(width):
            leaf = f"l{i}_{j}"
            mid_body += [
                NewTid(leaf),
                Reg(task=leaf, phaser=inner_name),
                Fork(task=leaf, body=seq(Skip(), Dereg(inner_name))),
            ]
        mid_body += [Adv(inner_name), Await(inner_name), Dereg("outer")]
        out += [
            NewTid(mid),
            Reg(task=mid, phaser="outer"),
            Fork(task=mid, body=seq(*mid_body)),
        ]
    out += [Adv("outer"), Await("outer")]
    return seq(*out)


def smallest_deadlock() -> Seq:
    """The smallest circular deadlock: two tasks, two phasers, each task
    awaiting an event only the other can enable (length-2 WFG cycle).

    d is registered with ``a``+``b``; w likewise.  w advances+awaits ``a``
    (needs d to advance ``a``); d advances+awaits ``b`` (needs w to
    advance ``b``).  Both block: deadlocked by Definition 3.2.
    """
    return seq(
        NewPhaser("a"),
        NewPhaser("b"),
        NewTid("w"),
        Reg(task="w", phaser="a"),
        Reg(task="w", phaser="b"),
        Fork(task="w", body=seq(Adv("a"), Await("a"))),
        Adv("b"),
        Await("b"),
    )


def initial(body: Seq) -> State:
    """Wrap a driver body into the canonical initial state."""
    return State.initial(body)
