"""Small-step operational semantics of PL (Figure 4).

The semantics is presented as in the paper: a reduction relation over
states.  :func:`enabled_steps` enumerates every reduction a state offers
(a task may offer two — a ``loop`` can unfold, [i-loop], or exit,
[e-loop]); :func:`apply_step` performs one.  Schedulers (the interpreter,
the model-checking helpers in the tests) choose among enabled steps.

Rule premises that a correct program must establish — registering a task
twice, advancing a phaser one is not a member of — raise
:class:`~repro.pl.phaser.PhaserError` rather than silently blocking: in
PL such a task is *stuck on an error*, which is distinct from being
blocked on ``await`` (only the latter participates in deadlocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.pl.phaser import Phaser, PhaserError, await_holds
from repro.pl.state import State
from repro.pl.syntax import (
    END,
    Adv,
    Await,
    Dereg,
    Fork,
    Loop,
    Name,
    NewPhaser,
    NewTid,
    Reg,
    Seq,
    Skip,
    substitute_seq,
)


@dataclass(frozen=True)
class Step:
    """One enabled reduction: ``task`` may fire ``rule``."""

    task: Name
    rule: str  # skip | i-loop | e-loop | new-t | fork | new-ph | reg | dereg | adv | sync

    def __repr__(self) -> str:
        return f"<{self.task}:{self.rule}>"


def enabled_steps(state: State) -> List[Step]:
    """All reductions ``state`` offers, across all tasks."""
    steps: List[Step] = []
    for task in state.tasks:
        steps.extend(task_steps(state, task))
    return steps


def task_steps(state: State, task: Name) -> List[Step]:
    """The reductions offered by ``task`` (zero, one, or two for loops)."""
    body = state.tasks[task]
    if body == END:
        return []
    head = body[0]
    if isinstance(head, Skip):
        return [Step(task, "skip")]
    if isinstance(head, Loop):
        return [Step(task, "i-loop"), Step(task, "e-loop")]
    if isinstance(head, NewTid):
        return [Step(task, "new-t")]
    if isinstance(head, Fork):
        target = state.tasks.get(head.task)
        # Rule [fork] requires the forked name to exist with body ``end``.
        return [Step(task, "fork")] if target == END else []
    if isinstance(head, NewPhaser):
        return [Step(task, "new-ph")]
    if isinstance(head, Reg):
        phaser = state.phasers.get(head.phaser)
        if phaser is not None and task in phaser and head.task not in phaser:
            return [Step(task, "reg")]
        return []
    if isinstance(head, Dereg):
        phaser = state.phasers.get(head.phaser)
        if phaser is not None and task in phaser:
            return [Step(task, "dereg")]
        return []
    if isinstance(head, Adv):
        phaser = state.phasers.get(head.phaser)
        if phaser is not None and task in phaser:
            return [Step(task, "adv")]
        return []
    if isinstance(head, Await):
        phaser = state.phasers.get(head.phaser)
        if phaser is not None and task in phaser:
            if await_holds(phaser, phaser[task]):
                return [Step(task, "sync")]
        return []
    raise TypeError(f"unknown instruction: {head!r}")  # pragma: no cover


def apply_step(state: State, step: Step) -> State:
    """Perform ``step`` on ``state`` (the reduction relation of Figure 4)."""
    task = step.task
    body = state.tasks[task]
    if body == END:
        raise PhaserError(f"task {task!r} has terminated")
    head, rest = body[0], body[1:]
    rule = step.rule

    if rule == "skip":
        assert isinstance(head, Skip)
        return state.with_task(task, rest)

    if rule == "i-loop":
        assert isinstance(head, Loop)
        return state.with_task(task, head.body + (head,) + rest)

    if rule == "e-loop":
        assert isinstance(head, Loop)
        return state.with_task(task, rest)

    if rule == "new-t":
        assert isinstance(head, NewTid)
        fresh = state.fresh_task_name()
        return state.with_tasks(
            {task: substitute_seq(rest, head.var, fresh), fresh: END}
        )

    if rule == "fork":
        assert isinstance(head, Fork)
        if state.tasks.get(head.task) != END:
            raise PhaserError(
                f"fork target {head.task!r} is not an idle task name"
            )
        return state.with_tasks({task: rest, head.task: head.body})

    if rule == "new-ph":
        assert isinstance(head, NewPhaser)
        fresh = state.fresh_phaser_name()
        return state.with_phaser(fresh, Phaser({task: 0})).with_task(
            task, substitute_seq(rest, head.var, fresh)
        )

    if rule == "reg":
        assert isinstance(head, Reg)
        phaser = _member_phaser(state, task, head.phaser)
        phase = phaser[task]
        return state.with_phaser(
            head.phaser, phaser.reg(head.task, phase)
        ).with_task(task, rest)

    if rule == "dereg":
        assert isinstance(head, Dereg)
        phaser = _member_phaser(state, task, head.phaser)
        return state.with_phaser(head.phaser, phaser.dereg(task)).with_task(
            task, rest
        )

    if rule == "adv":
        assert isinstance(head, Adv)
        phaser = _member_phaser(state, task, head.phaser)
        return state.with_phaser(head.phaser, phaser.adv(task)).with_task(
            task, rest
        )

    if rule == "sync":
        assert isinstance(head, Await)
        phaser = _member_phaser(state, task, head.phaser)
        if not await_holds(phaser, phaser[task]):
            raise PhaserError(f"await({head.phaser}) does not hold for {task!r}")
        return state.with_task(task, rest)

    raise ValueError(f"unknown rule: {rule!r}")  # pragma: no cover


def _member_phaser(state: State, task: Name, phaser_name: Name) -> Phaser:
    phaser = state.phasers.get(phaser_name)
    if phaser is None:
        raise PhaserError(f"no such phaser: {phaser_name!r}")
    if task not in phaser:
        raise PhaserError(f"task {task!r} not registered with {phaser_name!r}")
    return phaser


def step_task(state: State, task: Name, rule: Optional[str] = None) -> State:
    """Reduce ``task`` once; pick its unique enabled rule when ``rule`` is
    omitted (raises if the task is stuck or the choice is ambiguous)."""
    options = task_steps(state, task)
    if rule is not None:
        options = [s for s in options if s.rule == rule]
    if not options:
        raise PhaserError(f"task {task!r} has no enabled step (rule={rule!r})")
    if len(options) > 1:
        raise PhaserError(
            f"task {task!r} offers several steps {options}; specify a rule"
        )
    return apply_step(state, options[0])


def reduce_once(state: State, rng=None) -> Optional[State]:
    """Apply one enabled step chosen by ``rng`` (or the first); ``None``
    when the state offers no reductions."""
    steps = enabled_steps(state)
    if not steps:
        return None
    step = steps[0] if rng is None else rng.choice(steps)
    return apply_step(state, step)


def is_stuck(state: State) -> bool:
    """No reductions and at least one task has instructions left."""
    return bool(state.live_tasks()) and not enabled_steps(state)


def is_finished(state: State) -> bool:
    """Every task reduced to ``end``."""
    return not state.live_tasks()
