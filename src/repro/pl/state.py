"""PL states (Section 3): ``S ::= (M, T)``.

``M`` maps phaser names to phasers; ``T`` maps task names to the
instruction sequence the task still has to execute.  A task whose
sequence is ``end`` (the empty tuple) has terminated but remains in the
task map, exactly as in the paper's [fork] rule, which requires the
forked name to exist with body ``end``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.pl.phaser import Phaser
from repro.pl.syntax import END, Name, Seq


@dataclass(frozen=True)
class State:
    """An immutable PL state ``(M, T)``."""

    phasers: Dict[Name, Phaser] = field(default_factory=dict)
    tasks: Dict[Name, Seq] = field(default_factory=dict)

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def initial(main: Seq, task: Name = "main") -> "State":
        """The canonical initial state: a single task about to run ``main``."""
        return State(phasers={}, tasks={task: main})

    def with_phaser(self, name: Name, phaser: Phaser) -> "State":
        phasers = dict(self.phasers)
        phasers[name] = phaser
        return State(phasers=phasers, tasks=self.tasks)

    def without_phaser(self, name: Name) -> "State":
        phasers = dict(self.phasers)
        del phasers[name]
        return State(phasers=phasers, tasks=self.tasks)

    def with_task(self, name: Name, body: Seq) -> "State":
        tasks = dict(self.tasks)
        tasks[name] = body
        return State(phasers=self.phasers, tasks=tasks)

    def with_tasks(self, updates: Dict[Name, Seq]) -> "State":
        tasks = dict(self.tasks)
        tasks.update(updates)
        return State(phasers=self.phasers, tasks=tasks)

    # -- fresh-name generation -----------------------------------------------
    def fresh_task_name(self, hint: str = "t") -> Name:
        return _fresh(hint, self.tasks.keys())

    def fresh_phaser_name(self, hint: str = "p") -> Name:
        return _fresh(hint, self.phasers.keys())

    # -- observation -----------------------------------------------------------
    def head(self, task: Name) -> Optional[object]:
        """The next instruction of ``task`` (None when terminated)."""
        body = self.tasks[task]
        return body[0] if body else None

    def live_tasks(self) -> Tuple[Name, ...]:
        """Tasks that have instructions left to run."""
        return tuple(t for t, s in self.tasks.items() if s != END)

    def registered_phasers(self, task: Name) -> Dict[Name, int]:
        """``phaser -> local phase`` for every phaser ``task`` belongs to."""
        return {
            p: ph[task]
            for p, ph in self.phasers.items()
            if task in ph
        }

    def describe(self) -> str:
        lines = ["phasers:"]
        for p in sorted(self.phasers):
            lines.append(f"  {p}: {self.phasers[p]!r}")
        lines.append("tasks:")
        for t in sorted(self.tasks):
            body = self.tasks[t]
            head = repr(body[0]) if body else "end"
            lines.append(f"  {t}: {head} (+{max(len(body) - 1, 0)} more)")
        return "\n".join(lines)


def _fresh(hint: str, taken: Iterable[Name]) -> Name:
    taken = set(taken)
    i = len(taken)
    while True:
        candidate = f"{hint}{i}"
        if candidate not in taken:
            return candidate
        i += 1
