"""Abstract syntax of PL (Section 3).

The grammar::

    s ::= c; s | end
    c ::= t = newTid() | fork(t) s | p = newPhaser() | reg(t, p)
        | dereg(p) | adv(p) | await(p) | loop s | skip

An instruction sequence ``s`` is represented as a Python tuple of
:class:`Instruction` values; ``end`` is the empty tuple.  Task and phaser
*variables* are strings; the ``newTid``/``newPhaser`` binders substitute a
fresh concrete name for the bound variable in the continuation (rules
[new-t] and [new-ph] of Figure 4), so a well-formed program only ever
manipulates names introduced by a binder or passed in from the initial
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

Name = str
Seq = Tuple["Instruction", ...]

#: The empty instruction sequence (``end``).
END: Seq = ()


class Instruction:
    """Base class for PL instructions (sum type)."""

    __slots__ = ()

    def substitute(self, var: Name, name: Name) -> "Instruction":
        """Capture-avoiding substitution of ``name`` for ``var``."""
        raise NotImplementedError  # pragma: no cover


@dataclass(frozen=True)
class NewTid(Instruction):
    """``t = newTid()`` — bind a fresh task name to ``var``."""

    var: Name

    def substitute(self, var: Name, name: Name) -> "NewTid":
        # ``var`` is a binder: occurrences underneath are rebound, but the
        # binder itself never needs renaming because fresh names chosen by
        # the semantics cannot collide with programmer-written variables.
        return self


@dataclass(frozen=True)
class Fork(Instruction):
    """``fork(t) s`` — start task ``task`` with body ``body``."""

    task: Name
    body: Seq

    def substitute(self, var: Name, name: Name) -> "Fork":
        return Fork(
            task=name if self.task == var else self.task,
            body=substitute_seq(self.body, var, name),
        )


@dataclass(frozen=True)
class NewPhaser(Instruction):
    """``p = newPhaser()`` — create a phaser, register the current task
    at phase zero, and bind the phaser's name to ``var``."""

    var: Name

    def substitute(self, var: Name, name: Name) -> "NewPhaser":
        return self


@dataclass(frozen=True)
class Reg(Instruction):
    """``reg(t, p)`` — register task ``task`` with phaser ``phaser``;
    the registered task inherits the current task's local phase."""

    task: Name
    phaser: Name

    def substitute(self, var: Name, name: Name) -> "Reg":
        return Reg(
            task=name if self.task == var else self.task,
            phaser=name if self.phaser == var else self.phaser,
        )


@dataclass(frozen=True)
class Dereg(Instruction):
    """``dereg(p)`` — revoke the current task's membership of ``phaser``."""

    phaser: Name

    def substitute(self, var: Name, name: Name) -> "Dereg":
        return Dereg(phaser=name if self.phaser == var else self.phaser)


@dataclass(frozen=True)
class Adv(Instruction):
    """``adv(p)`` — increment the current task's local phase on ``phaser``
    (the non-blocking arrival half of a synchronisation)."""

    phaser: Name

    def substitute(self, var: Name, name: Name) -> "Adv":
        return Adv(phaser=name if self.phaser == var else self.phaser)


@dataclass(frozen=True)
class Await(Instruction):
    """``await(p)`` — block until every member of ``phaser`` reaches the
    current task's local phase (the blocking half; rule [sync])."""

    phaser: Name

    def substitute(self, var: Name, name: Name) -> "Await":
        return Await(phaser=name if self.phaser == var else self.phaser)


@dataclass(frozen=True)
class Loop(Instruction):
    """``loop s`` — unfold the body an arbitrary number of times
    (captures while/for loops and conditionals)."""

    body: Seq

    def substitute(self, var: Name, name: Name) -> "Loop":
        return Loop(body=substitute_seq(self.body, var, name))


@dataclass(frozen=True)
class Skip(Instruction):
    """``skip`` — a data-related operation irrelevant to synchronisation."""

    def substitute(self, var: Name, name: Name) -> "Skip":
        return self


def substitute_seq(s: Seq, var: Name, name: Name) -> Seq:
    """Substitute ``name`` for ``var`` throughout sequence ``s``
    (``s[name/var]`` in the paper's notation).

    Binders scope over the remainder of their sequence: substitution stops
    at a ``newTid``/``newPhaser`` instruction that rebinds ``var``, which
    makes shadowing safe.
    """
    out: list[Instruction] = []
    for i, c in enumerate(s):
        if isinstance(c, (NewTid, NewPhaser)) and c.var == var:
            # ``var`` is rebound from here on; the tail is untouched.
            out.append(c)
            out.extend(s[i + 1:])
            return tuple(out)
        out.append(c.substitute(var, name))
    return tuple(out)


def seq(*instructions: Union[Instruction, Seq]) -> Seq:
    """Build an instruction sequence, splicing nested sequences.

    ``seq(Skip(), seq(Adv("p"), Await("p")))`` flattens to a 3-tuple.
    """
    out: list[Instruction] = []
    for item in instructions:
        if isinstance(item, Instruction):
            out.append(item)
        elif isinstance(item, tuple):
            for sub in item:
                if not isinstance(sub, Instruction):
                    raise TypeError(f"not an instruction: {sub!r}")
                out.append(sub)
        else:
            raise TypeError(f"not an instruction or sequence: {item!r}")
    return tuple(out)


def pretty(s: Seq, indent: int = 0) -> str:
    """Render a sequence in the paper's concrete syntax (for debugging)."""
    pad = "  " * indent
    lines: list[str] = []
    for c in s:
        if isinstance(c, NewTid):
            lines.append(f"{pad}{c.var} = newTid();")
        elif isinstance(c, Fork):
            lines.append(f"{pad}fork({c.task})")
            lines.append(pretty(c.body, indent + 1))
            lines.append(f"{pad}end;")
        elif isinstance(c, NewPhaser):
            lines.append(f"{pad}{c.var} = newPhaser();")
        elif isinstance(c, Reg):
            lines.append(f"{pad}reg({c.phaser}, {c.task});")
        elif isinstance(c, Dereg):
            lines.append(f"{pad}dereg({c.phaser});")
        elif isinstance(c, Adv):
            lines.append(f"{pad}adv({c.phaser});")
        elif isinstance(c, Await):
            lines.append(f"{pad}await({c.phaser});")
        elif isinstance(c, Loop):
            lines.append(f"{pad}loop")
            lines.append(pretty(c.body, indent + 1))
            lines.append(f"{pad}end;")
        elif isinstance(c, Skip):
            lines.append(f"{pad}skip;")
        else:  # pragma: no cover - defensive
            lines.append(f"{pad}{c!r};")
    return "\n".join(lines)
