"""Sound predictive deadlock detection over recorded traces.

All other checking in this codebase is *observed-state*: a report
requires the wait-for cycle to actually form during the recorded run.
This package predicts deadlocks from **ok-traces** — runs where the
cycle did *not* manifest — by reordering the recorded events
consistently with a happens-before partial order, in the spirit of
"Sound Dynamic Deadlock Prediction in Linear Time" (Tunç et al.),
transplanted to the Armus barrier model.

The pipeline has four stages, one module each:

* :mod:`repro.predict.hb` — a vector-clock happens-before model built
  from replayed trace records: program order per task, phase-advance
  release ordering per phaser, and published status ops attributed to
  their tasks (the publish→sync leg of the order);
* :mod:`repro.predict.candidates` — blocked-interval extraction and the
  near-miss enumerator: sets of block records, one per task, whose
  wait-for edges close a cycle and whose intervals are pairwise
  HB-concurrent (some HB-consistent reordering makes them all pend at
  once);
* :mod:`repro.predict.witness` — the sound reordering constructor: each
  candidate becomes a concrete reordered trace (the HB-downclosed
  prefix of every candidate task, in original record order), replayable
  by the ordinary engine;
* :mod:`repro.predict.engine` — the realisability confirmer: every
  witness is replayed through the *existing* detection engine, classic
  and incremental, and only candidates both engines confirm (with
  byte-identical reports) are reported.  Soundness is a tested
  differential, not an assumption.

Everything downstream of the trace bytes is deterministic: candidate
enumeration, witness construction and rendering are pure functions of
the input, byte-identical across hash seeds, worker counts and engines
(pinned by the predict corpus golden).
"""

from repro.predict.candidates import BlockInterval, enumerate_candidates
from repro.predict.engine import (
    PredictResult,
    Prediction,
    Predictor,
    predict_trace,
    render_prediction,
)
from repro.predict.hb import HBModel, build_hb_model
from repro.predict.parallel import CorpusPredictResult, PredictEntry, predict_corpus
from repro.predict.witness import build_witness

__all__ = [
    "BlockInterval",
    "CorpusPredictResult",
    "HBModel",
    "PredictEntry",
    "PredictResult",
    "Prediction",
    "Predictor",
    "build_hb_model",
    "build_witness",
    "enumerate_candidates",
    "predict_corpus",
    "predict_trace",
    "render_prediction",
]
