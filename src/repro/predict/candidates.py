"""Near-miss candidates: block-record sets that could cycle.

A *blocked interval* is one contiguous stretch of a task being blocked
with one status — opened by a ``block`` record (or a published status
op), closed by the matching ``unblock``/``clear`` (or superseded by a
re-publication with a different status; trailing intervals stay open).
Each interval carries the task's vector clock at the block and the
closing event's own-component tick (see :mod:`repro.predict.hb`).

A **candidate** is a set of intervals, one per task, such that

1. the statuses close a wait-for cycle — interval ``i`` waits on an
   event that interval ``i+1``'s status impedes (the Armus relation:
   registered on the phaser below the awaited phase), and
2. every pair of intervals is HB-concurrent: neither interval's close
   happens-before the other's open, so some HB-consistent reordering of
   the run has them all pending at once.

Condition 2 is the vector-clock check made O(1) per pair: the close of
interval ``x`` (an event of ``x.task``) happens-before the open of
``y`` iff ``y``'s block clock has seen ``x.task`` up to the closing
tick.  Intervals that never close constrain nothing.

Enumeration is exhaustive up to explicit, deterministic caps (cycle
length, candidate count, DFS steps) — the caps are surfaced as a
``truncated`` flag, never silently.  Cycles are emitted in canonical
orientation (starting at the lexicographically minimal interval), in a
DFS order that is a pure function of the interval list, so downstream
output is byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.events import BlockedStatus
from repro.core.report import RecordOrigin
from repro.predict.hb import HBModel, TaskEvent, _Builder
from repro.trace.events import Trace, TraceRecord

#: Default enumeration caps (deterministic; surfaced via ``truncated``).
MAX_CYCLE_LEN = 32
MAX_CANDIDATES = 64
MAX_STEPS = 200_000


@dataclass
class BlockInterval:
    """One contiguous blocked stretch of one task."""

    task: str
    status: BlockedStatus
    open_seq: int
    kind: str = "block"
    site: Optional[str] = None
    stream: Optional[str] = None
    stream_seq: Optional[int] = None
    close_seq: Optional[int] = None
    #: The task's vector clock at the opening block.
    block_clock: Dict[str, int] = field(default_factory=dict)
    #: Own-component tick of the closing event (None = never closed).
    close_tick: Optional[int] = None

    def origin(self) -> RecordOrigin:
        """The opening record as provenance (same shape replay attaches)."""
        return RecordOrigin(
            ordinal=self.open_seq, kind=self.kind, site=self.site,
            stream=self.stream, seq=self.stream_seq,
        )


def concurrent(x: BlockInterval, y: BlockInterval) -> bool:
    """Whether some HB-consistent reordering has both intervals pending
    at once (neither close happens-before the other's open)."""
    if x.close_tick is not None and y.block_clock.get(x.task, 0) >= x.close_tick:
        return False
    if y.close_tick is not None and x.block_clock.get(y.task, 0) >= y.close_tick:
        return False
    return True


@dataclass(frozen=True)
class Candidate:
    """One enumerated near-miss: intervals in cycle order (interval
    ``i``'s wait is impeded by interval ``i+1``'s status, wrapping)."""

    intervals: Tuple[BlockInterval, ...]

    @property
    def tasks(self) -> Tuple[str, ...]:
        return tuple(iv.task for iv in self.intervals)

    @property
    def key(self) -> frozenset:
        """Identity for de-duplication: the (task, open record) set."""
        return frozenset((iv.task, iv.open_seq) for iv in self.intervals)


class _IntervalBuilder(_Builder):
    """The HB builder, additionally materialising blocked intervals."""

    def __init__(self) -> None:
        super().__init__()
        self.intervals: List[BlockInterval] = []
        self._open_intervals: Dict[str, BlockInterval] = {}

    def _on_block(self, event: TaskEvent, clock: Dict[str, int]) -> None:
        # A new status while one is open supersedes it: the task moved
        # on, so the old interval closes at this (same-task) event.
        stale = self._open_intervals.get(event.task)
        if stale is not None:
            stale.close_seq, stale.close_tick = event.seq, event.tick
        if event.stream is not None:
            kind = "publish_delta"
        elif event.site is not None:
            kind = "publish"
        else:
            kind = "block"
        interval = BlockInterval(
            task=event.task, status=event.status, open_seq=event.seq,
            kind=kind, site=event.site, stream=event.stream,
            stream_seq=event.stream_seq, block_clock=dict(clock),
        )
        self._open_intervals[event.task] = interval
        self.intervals.append(interval)

    def _on_unblock(self, task: str, seq: int, tick: int) -> None:
        interval = self._open_intervals.pop(task, None)
        if interval is not None:
            interval.close_seq, interval.close_tick = seq, tick


def extract_intervals(
    source: Iterable[TraceRecord],
) -> Tuple[HBModel, List[BlockInterval]]:
    """One pass over the records: the HB model plus every blocked
    interval, in opening order."""
    records = source.records if isinstance(source, Trace) else source
    builder = _IntervalBuilder()
    for rec in records:
        builder.observe(rec)
    return builder.model, builder.intervals


def _build_edges(
    intervals: List[BlockInterval],
) -> List[List[int]]:
    """Adjacency: ``i -> j`` iff ``j``'s status impedes one of ``i``'s
    waits, the tasks differ, and the intervals are HB-concurrent."""
    by_phaser: Dict[str, List[Tuple[int, int]]] = {}
    for j, interval in enumerate(intervals):
        for phaser, phase in interval.status.registered.items():
            by_phaser.setdefault(str(phaser), []).append((phase, j))
    edges: List[List[int]] = [[] for _ in intervals]
    for i, interval in enumerate(intervals):
        out = set()
        for event in interval.status.waits:
            for phase, j in by_phaser.get(str(event.phaser), ()):
                if phase >= event.phase or j == i or j in out:
                    continue
                other = intervals[j]
                if other.task == interval.task:
                    continue
                if concurrent(interval, other):
                    out.add(j)
        edges[i] = sorted(out)
    return edges


def enumerate_candidates(
    intervals: List[BlockInterval],
    max_cycle_len: int = MAX_CYCLE_LEN,
    max_candidates: int = MAX_CANDIDATES,
    max_steps: int = MAX_STEPS,
) -> Tuple[List[Candidate], bool]:
    """All wait-for cycles over HB-concurrent intervals, one per task.

    Returns ``(candidates, truncated)``; ``truncated`` is True when a
    cap cut the enumeration short (deterministically — the DFS order is
    fixed, so the same prefix is found every run).
    """
    order = sorted(
        range(len(intervals)),
        key=lambda i: (intervals[i].open_seq, str(intervals[i].task)),
    )
    rank = {idx: pos for pos, idx in enumerate(order)}
    edges = _build_edges(intervals)
    candidates: List[Candidate] = []
    seen_keys = set()
    steps = 0
    truncated = False

    def dfs(start: int, path: List[int]) -> bool:
        """Extend ``path`` (a simple impedes-chain from ``start``);
        returns False when a cap fired and enumeration must stop."""
        nonlocal steps, truncated
        head = path[-1]
        for nxt in edges[head]:
            steps += 1
            if steps > max_steps or len(candidates) >= max_candidates:
                truncated = True
                return False
            if nxt == start and len(path) >= 2:
                cycle = Candidate(
                    intervals=tuple(intervals[i] for i in path)
                )
                if cycle.key not in seen_keys:
                    seen_keys.add(cycle.key)
                    candidates.append(cycle)
                continue
            # Canonical orientation: only the minimal-rank node starts a
            # cycle, and paths never revisit a task.
            if rank[nxt] <= rank[start] or len(path) >= max_cycle_len:
                continue
            if any(intervals[i].task == intervals[nxt].task for i in path):
                continue
            if not all(
                concurrent(intervals[i], intervals[nxt]) for i in path
            ):
                continue
            path.append(nxt)
            ok = dfs(start, path)
            path.pop()
            if not ok:
                return False
        return True

    for start in order:
        if not edges[start]:
            continue
        if not dfs(start, [start]):
            break
    return candidates, truncated


__all__ = [
    "BlockInterval",
    "Candidate",
    "concurrent",
    "enumerate_candidates",
    "extract_intervals",
]
