"""Realisability confirmation: predictions the real engine vouches for.

The enumerator's candidates are *optimistic* — the HB model is
deliberately sparse (see :mod:`repro.predict.hb`), so a candidate may
still be unrealisable.  This module closes the loop: every candidate's
witness trace is replayed through the **existing** detection engine,
classic and incremental, and a candidate is reported only when

* both engines find the witness deadlocked,
* both produce identical report lists (the usual engine differential),
* and one of those reports names exactly the candidate's task set.

Soundness is therefore a tested property of the shipped engine, not an
assumption about the predictor: a predicted report *is* an engine
report of a concrete replayable trace.  The prediction re-homes that
report's per-edge :class:`~repro.core.report.EdgeProvenance` onto the
original trace's records (the blocks the candidate was mined from), and
clears ``detection_lag``/``detected_at`` — a prediction has no closing
record in the recorded run; that is the point.

Everything observable is deterministic: candidates are confirmed in
enumeration order, reports and rendering are pure functions of the
trace bytes.  Wall-clock goes only to volatile metrics
(``repro_predict_*_seconds``), never to output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Union

from repro.core.report import DeadlockReport, EdgeProvenance
from repro.core.selection import GraphModel
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_TRACER
from repro.predict.candidates import (
    MAX_CANDIDATES,
    MAX_CYCLE_LEN,
    MAX_STEPS,
    BlockInterval,
    Candidate,
    enumerate_candidates,
    extract_intervals,
)
from repro.predict.witness import build_witness
from repro.trace.codec import load_trace
from repro.trace.events import Trace, TraceRecord
from repro.trace.replay import DETECTION, replay

#: PredictResult.outcome values.
MANIFEST = "manifest"  #: the recorded run already deadlocked — nothing to predict
CLEAN = "clean"  #: no realisable candidate survived confirmation
PREDICTED = "predicted"  #: at least one engine-confirmed prediction


@dataclass(frozen=True)
class Prediction:
    """One engine-confirmed prediction."""

    #: The enumerated candidate (intervals in cycle order).
    candidate: Candidate
    #: The confirming engine report, re-homed onto the original trace:
    #: per-edge provenance points at the mined block records,
    #: ``detection_lag``/``detected_at`` cleared.
    report: DeadlockReport
    #: The concrete reordered trace the engines confirmed.
    witness: Trace


@dataclass
class PredictResult:
    """Outcome of predicting over one trace."""

    outcome: str
    records: int = 0
    #: Reports from replaying the *recorded* run (manifest path only).
    manifest_reports: List[DeadlockReport] = field(default_factory=list)
    candidates_scanned: int = 0
    confirmed: List[Prediction] = field(default_factory=list)
    refuted: int = 0
    #: True when an enumeration cap cut the scan short.
    truncated: bool = False
    duration_s: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def predicted(self) -> bool:
        return bool(self.confirmed)


def _rehome_provenance(
    report: DeadlockReport, by_task: Dict[str, BlockInterval]
) -> DeadlockReport:
    """The witness-replay report with origins mapped back to the
    original trace's records (witness ordinals mean nothing outside
    the witness file)."""
    edges: List[EdgeProvenance] = []
    for edge in report.provenance or ():
        source = by_task.get(edge.source_task)
        target = by_task.get(edge.target_task)
        edges.append(replace(
            edge,
            source_origin=source.origin() if source else edge.source_origin,
            target_origin=target.origin() if target else edge.target_origin,
        ))
    return replace(
        report,
        provenance=tuple(edges) if edges else None,
        detection_lag=None,
        detected_at=None,
    )


class Predictor:
    """The four-stage pipeline over one trace (see package docstring).

    Parameters mirror the enumeration caps; ``metrics``/``tracer``
    follow the stack-wide conventions (fold into a caller registry,
    guard span emission on ``tracer.enabled``).
    """

    def __init__(
        self,
        max_cycle_len: int = MAX_CYCLE_LEN,
        max_candidates: int = MAX_CANDIDATES,
        max_steps: int = MAX_STEPS,
        metrics: Optional[MetricsRegistry] = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.max_cycle_len = max_cycle_len
        self.max_candidates = max_candidates
        self.max_steps = max_steps
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer

    # -- witness confirmation ------------------------------------------
    def _confirm(self, candidate: Candidate, witness: Trace):
        """Replay the witness through both engines; return the matching
        classic report, or None when either engine demurs."""
        classic = replay(witness, mode=DETECTION, model=GraphModel.AUTO,
                         check_every=1)
        incremental = replay(witness, mode=DETECTION, model=GraphModel.AUTO,
                             check_every=1, incremental=True)
        if not classic.deadlocked or not incremental.deadlocked:
            return None
        if classic.reports != incremental.reports:
            return None
        wanted = frozenset(candidate.tasks)
        for report in classic.reports:
            if frozenset(str(t) for t in report.tasks) == wanted:
                return report
        return None

    # -- the pipeline --------------------------------------------------
    def predict(self, source: Union[Trace, str]) -> PredictResult:
        """Predict over one trace (a :class:`Trace` or a path)."""
        if not isinstance(source, Trace):
            source = load_trace(source)
        start = time.perf_counter()
        metrics = self.metrics
        traces_total = metrics.counter(
            "repro_predict_traces_total",
            "Traces scanned by the predictor, by outcome.",
            labels=("outcome",),
        )
        candidates_total = metrics.counter(
            "repro_predict_candidates_total",
            "Near-miss candidates, by confirmation outcome "
            "(every candidate is counted as scanned).",
            labels=("outcome",),
        )
        witness_records = metrics.histogram(
            "repro_predict_witness_records",
            "Records per constructed witness trace.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        trace_seconds = metrics.histogram(
            "repro_predict_trace_seconds",
            "Wall-clock duration of predicting over one trace.",
            buckets=DEFAULT_LATENCY_BUCKETS_S,
            volatile=True,
        )
        candidate_seconds = metrics.histogram(
            "repro_predict_candidate_seconds",
            "Wall-clock duration of one candidate's witness "
            "construction and confirmation replays.",
            buckets=DEFAULT_LATENCY_BUCKETS_S,
            volatile=True,
        )

        result = PredictResult(outcome=CLEAN, records=len(source.records),
                               metrics=metrics)

        # Stage 0: the recorded run itself.  A manifest deadlock is the
        # observed-state checkers' job; prediction is for ok-traces.
        recorded = replay(source, mode=DETECTION, model=GraphModel.AUTO,
                          check_every=1)
        if recorded.deadlocked:
            result.outcome = MANIFEST
            result.manifest_reports = list(recorded.reports)
            traces_total.inc(outcome=MANIFEST)
            trace_seconds.observe(time.perf_counter() - start)
            result.duration_s = time.perf_counter() - start
            return result

        # Stages 1+2: HB model, intervals, candidate cycles.
        model, intervals = extract_intervals(source)
        candidates, truncated = enumerate_candidates(
            intervals,
            max_cycle_len=self.max_cycle_len,
            max_candidates=self.max_candidates,
            max_steps=self.max_steps,
        )
        result.truncated = truncated
        if truncated:
            metrics.counter(
                "repro_predict_truncated_total",
                "Scans cut short by an enumeration cap.",
            ).inc()
        if self.tracer.enabled:
            self.tracer.event(
                "predict.scan", "predict", ordinal=result.records,
                cat="predict", intervals=len(intervals),
                candidates=len(candidates), truncated=truncated,
            )

        # Stages 3+4: witness per candidate, engine confirmation.
        for index, candidate in enumerate(candidates):
            candidate_start = time.perf_counter()
            result.candidates_scanned += 1
            candidates_total.inc(outcome="scanned")
            witness = build_witness(source, model, candidate, index=index)
            witness_records.observe(len(witness.records))
            report = self._confirm(candidate, witness)
            if report is None:
                result.refuted += 1
                candidates_total.inc(outcome="refuted")
            else:
                by_task = {str(iv.task): iv for iv in candidate.intervals}
                result.confirmed.append(Prediction(
                    candidate=candidate,
                    report=_rehome_provenance(report, by_task),
                    witness=witness,
                ))
                candidates_total.inc(outcome="confirmed")
            if self.tracer.enabled:
                self.tracer.event(
                    "predict.confirm", "predict",
                    ordinal=min(iv.open_seq for iv in candidate.intervals),
                    cat="predict", candidate=index,
                    tasks=", ".join(candidate.tasks),
                    verdict="refuted" if report is None else "confirmed",
                )
            candidate_seconds.observe(time.perf_counter() - candidate_start)

        result.outcome = PREDICTED if result.confirmed else CLEAN
        traces_total.inc(outcome=result.outcome)
        result.duration_s = time.perf_counter() - start
        trace_seconds.observe(result.duration_s)
        return result


def predict_trace(
    source: Union[Trace, str],
    max_cycle_len: int = MAX_CYCLE_LEN,
    max_candidates: int = MAX_CANDIDATES,
    max_steps: int = MAX_STEPS,
    metrics: Optional[MetricsRegistry] = None,
    tracer=NULL_TRACER,
) -> PredictResult:
    """Convenience front door mirroring :func:`repro.trace.replay.replay`."""
    return Predictor(
        max_cycle_len=max_cycle_len,
        max_candidates=max_candidates,
        max_steps=max_steps,
        metrics=metrics,
        tracer=tracer,
    ).predict(source)


def render_prediction(prediction: Prediction, number: int) -> str:
    """The text block for one prediction (deterministic; the predict
    CLI's analogue of ``render_report_provenance``)."""
    report = prediction.report
    lines = [
        f"prediction {number}: {report.describe().splitlines()[0]}",
        "  cycle: " + " -> ".join(str(v) for v in report.cycle),
        f"  witness: {len(prediction.witness.records)} record(s), "
        f"confirmed by classic+incremental replay",
    ]
    lines.append("  mined from:")
    for interval in prediction.candidate.intervals:
        waits = ", ".join(sorted(str(e) for e in interval.status.waits))
        lines.append(
            f"    {interval.task} waiting on {waits} "
            f"<- {interval.origin().describe()}"
        )
    if report.provenance:
        lines.append("  edges:")
        for edge in report.provenance:
            source = edge.source
            if edge.source_task != edge.source:
                source += f" [{edge.source_task}]"
            target = edge.target
            if edge.target_task != edge.target:
                target += f" [{edge.target_task}]"
            lines.append(
                f"    {source} <- {edge.source_origin.describe()}"
                f"  ->  {target} <- {edge.target_origin.describe()}"
            )
    return "\n".join(lines)


__all__ = [
    "CLEAN",
    "MANIFEST",
    "PREDICTED",
    "PredictResult",
    "Prediction",
    "Predictor",
    "predict_trace",
    "render_prediction",
]
