"""The happens-before model predictions reorder against.

Deadlock prediction asks: *could* these block records all have been
pending at once, under some reordering of the recorded run?  The
answer is sound only relative to a happens-before partial order — a
reordering may permute concurrent events freely but must preserve every
HB edge.  This module builds that order from one pass over the record
stream, as vector clocks:

* **Program order.**  Every record is attributed to an acting task
  (``block``/``unblock``/``register``/``advance`` carry it directly;
  the per-task ops inside ``publish``/``publish_delta`` payloads are
  attributed to the task whose status they set or clear — the
  publish→sync leg: a published status is causally after everything its
  task did, wherever the publishing site sits in the stream).  A task's
  records are totally ordered.
* **Release order.**  A barrier wait completes only because other
  registered tasks arrived: the ``unblock`` that ends a wait on phaser
  ``p`` happens-after every ``advance`` on ``p`` seen so far.  This is
  deliberately conservative (it joins *all* phases of ``p``, not just
  the satisfying one): extra HB edges can only suppress predictions,
  never unsound ones, and it is exactly what excludes cross-round
  barrier "cycles" — round ``r`` exists only because round ``r-1``
  completed, so statuses from different rounds are never concurrent.

What the model deliberately does **not** order: records of different
tasks that merely share a site's publish stream.  A delta stream
records the order a site *observed* status changes, not causality
between distinct tasks; serialising them would silence every
distributed near-miss.  Any resulting optimism is caught downstream —
every candidate's witness must be confirmed by a real replay before it
is reported (see :mod:`repro.predict.engine`).

Clocks are sparse dicts keyed by task.  The standard vector-clock fact
makes concurrency checks O(1): an event *e* of task *t* happens-before
event *f* iff ``clock(f)[t] >= clock(e)[t]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.events import BlockedStatus
from repro.trace.events import RecordKind, Trace, TraceRecord, status_from_obj

#: Record kinds whose payloads carry per-task status ops.
_PUBLISH_KINDS = (RecordKind.PUBLISH, RecordKind.PUBLISH_DELTA)


@dataclass
class TaskEvent:
    """One HB-relevant event attributed to a task.

    ``tick`` is the task's own program-order counter at the event (the
    task's component of its clock); ``seq`` the originating record's
    trace ordinal.  Published status events additionally carry the
    site/stream coordinates for provenance.
    """

    task: str
    tick: int
    seq: int
    kind: str
    status: Optional[BlockedStatus] = None
    phaser: Optional[str] = None
    phase: Optional[int] = None
    site: Optional[str] = None
    stream: Optional[str] = None
    stream_seq: Optional[int] = None


@dataclass
class HBModel:
    """The finished model: per-task event lists plus helper queries."""

    #: task -> its HB-relevant events, in program order.
    events: Dict[str, List[TaskEvent]] = field(default_factory=dict)
    #: Number of records folded in (the scan's accounting).
    records_seen: int = 0

    def tasks(self) -> List[str]:
        """All acting tasks, in canonical (string-sorted) order."""
        return sorted(self.events, key=str)


class _Builder:
    """Single-pass fold of a record stream into clocks and events."""

    def __init__(self) -> None:
        self.model = HBModel()
        #: task -> sparse vector clock (task -> tick).
        self.clocks: Dict[str, Dict[str, int]] = {}
        #: phaser -> join of every advancing task's clock at its advance.
        self.advances: Dict[str, Dict[str, int]] = {}
        #: task -> the waits of its currently-open block (release join).
        self.open_waits: Dict[str, frozenset] = {}
        #: task -> currently-published status (dedups republications).
        self.current: Dict[str, BlockedStatus] = {}
        #: site -> tasks its bucket currently carries (publish diffing).
        self.site_tasks: Dict[str, set] = {}

    def _tick(self, task: str) -> Tuple[Dict[str, int], int]:
        clock = self.clocks.setdefault(task, {})
        tick = clock.get(task, 0) + 1
        clock[task] = tick
        return clock, tick

    def _event(self, task: str, seq: int, kind: str, **extra) -> TaskEvent:
        _, tick = self._tick(task)
        event = TaskEvent(task=task, tick=tick, seq=seq, kind=kind, **extra)
        self.model.events.setdefault(task, []).append(event)
        return event

    def _join(self, into: Dict[str, int], other: Dict[str, int]) -> None:
        for key, value in other.items():
            if into.get(key, 0) < value:
                into[key] = value

    # -- extension points (the candidate extractor snapshots clocks) ---
    def _on_block(self, event: TaskEvent, clock: Dict[str, int]) -> None:
        """Called after a block event, with the task's live clock."""

    def _on_unblock(self, task: str, seq: int, tick: int) -> None:
        """Called after an unblock event (release joins applied)."""

    # -- the per-semantic-event folds ----------------------------------
    def block(self, task: str, seq: int, status: BlockedStatus,
              site: Optional[str] = None, stream: Optional[str] = None,
              stream_seq: Optional[int] = None) -> None:
        # Re-publication of an unchanged status (a snapshot checkpoint
        # re-listing its bucket) is not a new block event.
        if self.current.get(task) == status:
            return
        self.current[task] = status
        event = self._event(task, seq, "block", status=status, site=site,
                            stream=stream, stream_seq=stream_seq)
        self.open_waits[task] = status.waits
        self._on_block(event, self.clocks[task])

    def unblock(self, task: str, seq: int) -> None:
        if task not in self.current:
            return
        del self.current[task]
        clock, tick = self._tick(task)
        waits = self.open_waits.pop(task, frozenset())
        for event in waits:
            adv = self.advances.get(str(event.phaser))
            if adv:
                self._join(clock, adv)
        self.model.events.setdefault(task, []).append(
            TaskEvent(task=task, tick=tick, seq=seq, kind="unblock")
        )
        self._on_unblock(task, seq, tick)

    def advance(self, task: str, seq: int, phaser: str,
                phase: Optional[int] = None) -> None:
        self._event(task, seq, "advance", phaser=phaser, phase=phase)
        self._join(self.advances.setdefault(phaser, {}), self.clocks[task])

    def register(self, task: str, seq: int, phaser: Optional[str] = None,
                 phase: Optional[int] = None) -> None:
        self._event(task, seq, "register", phaser=phaser, phase=phase)

    # -- record dispatch -----------------------------------------------
    def observe(self, rec: TraceRecord) -> None:
        self.model.records_seen += 1
        kind = rec.kind
        if kind is RecordKind.BLOCK:
            self.block(str(rec.task), rec.seq, rec.status)
        elif kind is RecordKind.UNBLOCK:
            self.unblock(str(rec.task), rec.seq)
        elif kind is RecordKind.ADVANCE:
            self.advance(str(rec.task), rec.seq, str(rec.phaser), rec.phase)
        elif kind is RecordKind.REGISTER:
            self.register(str(rec.task), rec.seq, str(rec.phaser), rec.phase)
        elif kind is RecordKind.PUBLISH:
            self._observe_publish(rec)
        elif kind is RecordKind.PUBLISH_DELTA:
            self._observe_delta(rec)

    def _observe_publish(self, rec: TraceRecord) -> None:
        # Whole-bucket republication: diff against the site's previous
        # bucket — vanished tasks unblocked, (re)listed tasks block.
        owned = self.site_tasks.get(rec.site, set())
        listed = set(rec.payload)
        for task in sorted(owned - listed, key=str):
            self.unblock(str(task), rec.seq)
        for task in sorted(listed, key=str):
            self.block(
                str(task), rec.seq, status_from_obj(rec.payload[task]),
                site=str(rec.site),
            )
        self.site_tasks[rec.site] = listed

    def _observe_delta(self, rec: TraceRecord) -> None:
        payload = rec.payload
        site, stream = str(rec.site), str(payload["stream"])
        stream_seq = int(payload["seq"])
        owned = self.site_tasks.setdefault(rec.site, set())
        if payload["kind"] == "snapshot":
            listed = set(payload["set"])
            for task in sorted(owned - listed, key=str):
                self.unblock(str(task), rec.seq)
            self.site_tasks[rec.site] = listed
        else:
            for task in sorted(payload["clear"], key=str):
                self.unblock(str(task), rec.seq)
                owned.discard(task)
            owned.update(payload["set"])
            owned.update(payload["restore"])
        for section in ("set", "restore"):
            for task in sorted(payload[section], key=str):
                self.block(
                    str(task), rec.seq,
                    status_from_obj(payload[section][task]),
                    site=site, stream=stream, stream_seq=stream_seq,
                )


def build_hb_model(source: Iterable[TraceRecord]) -> HBModel:
    """Fold a record stream (or :class:`~repro.trace.events.Trace`)
    into an :class:`HBModel` plus the per-block clocks the candidate
    extractor reads (see :mod:`repro.predict.candidates`, which drives
    the same builder and keeps the clocks)."""
    records = source.records if isinstance(source, Trace) else source
    builder = _Builder()
    for rec in records:
        builder.observe(rec)
    return builder.model


__all__ = ["HBModel", "TaskEvent", "build_hb_model"]
