"""Multi-process corpus prediction with deterministic merging.

The predict analogue of :mod:`repro.trace.parallel`: one worker
predicts over one trace file, the work-list is discovered in sorted
path order and merged in submission order, and everything a golden
pins (per-file outcomes, predictions, rendered provenance, non-volatile
metrics) is byte-identical for any ``processes`` value — only
``duration_s`` changes.  Pinned by the predict CLI golden, which CI
diffs between ``--parallel 1`` and ``--parallel 4``.
"""

from __future__ import annotations

import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.registry import MetricsRegistry
from repro.predict.candidates import MAX_CANDIDATES, MAX_CYCLE_LEN, MAX_STEPS
from repro.predict.engine import PREDICTED, PredictResult, Predictor
from repro.trace.codec import PathLike, load_trace
from repro.trace.parallel import discover_traces


@dataclass
class PredictEntry:
    """One file's prediction outcome inside a corpus run."""

    path: pathlib.Path
    meta: dict
    result: PredictResult

    @property
    def expected(self) -> Optional[bool]:
        """The trace's self-declared prediction verdict, if any
        (``expect_prediction`` in the header meta — the NearMiss
        family stamps it)."""
        value = self.meta.get("expect_prediction")
        return None if value is None else bool(value)

    @property
    def verdict_ok(self) -> bool:
        """Whether the outcome matched the expected verdict (vacuously
        true for traces without one)."""
        expected = self.expected
        if expected is None:
            return True
        return (self.result.outcome == PREDICTED) == expected


@dataclass
class CorpusPredictResult:
    """The merged outcome of predicting over a corpus."""

    processes: int
    entries: List[PredictEntry] = field(default_factory=list)
    #: Order-insensitive fold of every file's predict registry.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    duration_s: float = 0.0

    @property
    def candidates_scanned(self) -> int:
        return sum(e.result.candidates_scanned for e in self.entries)

    @property
    def confirmed(self) -> int:
        return sum(len(e.result.confirmed) for e in self.entries)

    @property
    def refuted(self) -> int:
        return sum(e.result.refuted for e in self.entries)

    @property
    def mismatches(self) -> List[PredictEntry]:
        """Entries whose outcome contradicts their metadata."""
        return [e for e in self.entries if not e.verdict_ok]


def _predict_one(
    args: Tuple[str, int, int, int]
) -> Tuple[dict, PredictResult]:
    """Worker body: predict over one file; module-level picklable."""
    path, max_cycle_len, max_candidates, max_steps = args
    trace = load_trace(path)
    predictor = Predictor(
        max_cycle_len=max_cycle_len,
        max_candidates=max_candidates,
        max_steps=max_steps,
    )
    return dict(trace.header.meta), predictor.predict(trace)


def predict_corpus(
    sources: Union[PathLike, Sequence[PathLike]],
    max_cycle_len: int = MAX_CYCLE_LEN,
    max_candidates: int = MAX_CANDIDATES,
    max_steps: int = MAX_STEPS,
    processes: int = 1,
) -> CorpusPredictResult:
    """Predict over every trace under ``sources``.

    ``processes <= 1`` is the serial reference; any N merges to the
    identical result (minus wall clock).
    """
    paths = discover_traces(sources)
    if not paths:
        raise ValueError(f"no trace files found under {sources!r}")
    work = [
        (str(p), max_cycle_len, max_candidates, max_steps) for p in paths
    ]
    t0 = time.perf_counter()
    if processes <= 1 or len(paths) == 1:
        outcomes: Iterable[Tuple[dict, PredictResult]] = list(
            map(_predict_one, work)
        )
    else:
        with ProcessPoolExecutor(max_workers=min(processes, len(paths))) as pool:
            outcomes = list(pool.map(_predict_one, work))
    merged = CorpusPredictResult(processes=max(1, processes))
    for path, (meta, result) in zip(paths, outcomes):
        merged.entries.append(
            PredictEntry(path=path, meta=meta, result=result)
        )
        merged.metrics.merge(result.metrics)
    merged.duration_s = time.perf_counter() - t0
    return merged


__all__ = ["CorpusPredictResult", "PredictEntry", "predict_corpus"]
