"""Sound reordering constructor: candidate -> concrete witness trace.

A candidate (see :mod:`repro.predict.candidates`) claims some
HB-consistent reordering of the recorded run leaves its tasks all
blocked in a wait-for cycle.  This module *builds* that reordering as
an ordinary v3 trace, so the claim can be checked by the real engine
instead of trusted.

Construction: for each candidate task, take the task's own event
prefix up to and including the chosen block (its program order — which
by the HB model's publish→sync leg includes status ops a site published
on its behalf), then interleave the prefixes by original record order
and re-sequence from zero.  Because every cross-task HB edge in the
model points *into an unblock* (release edges) and each prefix ends at
a block, the prefix set is downward-closed under happens-before: the
witness is a legal reordering, not just a record soup.

Published status ops are re-emitted as plain local ``block``/
``unblock`` records.  Local and distributed folds are already pinned
equivalent by the corpus suite, and a witness must stand alone — a
reconstructed delta stream would have sequence gaps the decoder
rightly rejects.

The output is a pure function of (trace bytes, candidate): header meta,
record order and sequencing are all deterministic, so witness files are
byte-stable across runs, workers and hash seeds.
"""

from __future__ import annotations

from typing import List, Tuple

import repro.trace.events as ev
from repro.predict.candidates import Candidate
from repro.predict.hb import HBModel, TaskEvent
from repro.trace.events import Trace, TraceHeader, TraceRecord


def _task_prefix(model: HBModel, task: str, open_seq: int) -> List[TaskEvent]:
    """The task's events up to and including the block at ``open_seq``."""
    events = model.events.get(task, [])
    for idx, event in enumerate(events):
        if event.kind == "block" and event.seq == open_seq:
            return events[: idx + 1]
    raise ValueError(
        f"candidate interval has no block event: task={task!r} seq={open_seq}"
    )


def _emit(event: TaskEvent, seq: int) -> TraceRecord:
    if event.kind == "block":
        return ev.block(seq, event.task, event.status)
    if event.kind == "unblock":
        return ev.unblock(seq, event.task)
    if event.kind == "advance":
        return ev.advance(seq, event.task, event.phaser, event.phase or 0)
    if event.kind == "register":
        return ev.register(seq, event.task, event.phaser, event.phase or 0)
    raise ValueError(f"unexpected event kind in witness: {event.kind!r}")


def build_witness(
    trace: Trace, model: HBModel, candidate: Candidate, index: int = 0
) -> Trace:
    """The reordered trace realising ``candidate``, ending with every
    candidate task blocked on its cycle status."""
    merged: List[Tuple[int, str, int, TaskEvent]] = []
    for interval in candidate.intervals:
        prefix = _task_prefix(model, interval.task, interval.open_seq)
        for pos, event in enumerate(prefix):
            merged.append((event.seq, str(event.task), pos, event))
    merged.sort(key=lambda item: item[:3])
    records = [_emit(event, seq) for seq, (_, _, _, event) in enumerate(merged)]
    source_meta = trace.header.meta or {}
    meta = {
        "generator": "repro.predict",
        "kind": "witness",
        "candidate": index,
        "tasks": sorted(candidate.tasks, key=str),
        "open_records": sorted(iv.open_seq for iv in candidate.intervals),
        "expect_deadlock": True,
    }
    for key in ("scenario", "family"):
        if key in source_meta:
            meta[f"source_{key}"] = source_meta[key]
    return Trace(header=TraceHeader(version=3, meta=meta), records=records)


__all__ = ["build_witness"]
