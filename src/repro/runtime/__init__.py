"""The instrumented concurrent runtime: Python's JArmus/Armus-X10.

This package is the *application layer* of the tool architecture
(Section 5): barrier abstractions whose blocking operations are woven
with verification hooks.  Where JArmus rewrites Java bytecode, we build
the hooks directly into the barrier classes — the observation points are
identical (block entry, unblock, register/deregister/advance).

Public surface:

* :class:`~repro.runtime.verifier.ArmusRuntime` — configuration (mode,
  graph model, check interval), task registry, checker and monitor;
* :class:`~repro.runtime.tasks.Task` / ``spawn`` — cancellable tasks;
* :class:`~repro.runtime.phaser.Phaser` — the Java-``Phaser``-style API
  (register / arrive / arriveAndAwaitAdvance / arriveAndDeregister /
  awaitAdvance, split-phase);
* :class:`~repro.runtime.clock.Clock` and
  :class:`~repro.runtime.finish.Finish` — the X10-style API
  (``advance``/``resume``/``drop``, lexically-scoped join barriers,
  clocked spawns);
* :class:`~repro.runtime.barriers.CyclicBarrier`,
  :class:`~repro.runtime.barriers.CountDownLatch` — the JArmus-supported
  ``java.util.concurrent`` classes, with JArmus-style registration;
* :class:`~repro.runtime.clocked_var.ClockedVar` — clocked variables
  (Atkins et al.), used by the Section 6.3 course programs;
* :class:`~repro.runtime.locks.ArmusLock` — reentrant locks folded into
  the same event-based analysis.
"""

from repro.core.report import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    DeadlockError,
    DeadlockReport,
)
from repro.core.selection import GraphModel
from repro.runtime.verifier import ArmusRuntime, VerificationMode
from repro.runtime.tasks import Task, TaskFailedError, current_task
from repro.runtime.modes import RegistrationMode
from repro.runtime.phaser import Phaser
from repro.runtime.clock import Clock
from repro.runtime.finish import Finish
from repro.runtime.barriers import CyclicBarrier, CountDownLatch, BrokenBarrierError
from repro.runtime.clocked_var import ClockedVar
from repro.runtime.locks import ArmusLock

__all__ = [
    "ArmusRuntime",
    "VerificationMode",
    "GraphModel",
    "Task",
    "TaskFailedError",
    "current_task",
    "Phaser",
    "RegistrationMode",
    "Clock",
    "Finish",
    "CyclicBarrier",
    "CountDownLatch",
    "BrokenBarrierError",
    "ClockedVar",
    "ArmusLock",
    "DeadlockReport",
    "DeadlockError",
    "DeadlockDetectedError",
    "DeadlockAvoidedError",
]
