"""JArmus-supported ``java.util.concurrent`` barrier classes.

JArmus verifies ``CountDownLatch``, ``CyclicBarrier`` and ``Phaser``
(Section 5.3).  Java leaves the participants of these barriers implicit
— "the programmer declares the number of participants and then shares
the object" — so JArmus requires each task to announce its participation
with ``JArmus.register(b)``.  This module mirrors that design: tasks
call :meth:`CyclicBarrier.register` (or are registered at spawn) before
synchronising, and :meth:`CountDownLatch.register` declares the intent
to count down.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.core.events import Event
from repro.runtime.observer import WaitSpec, blocked_status, verified_wait
from repro.runtime.phaser import PhaserMembershipError
from repro.runtime.tasks import Task
from repro.runtime.verifier import ArmusRuntime, get_default_runtime


class BrokenBarrierError(RuntimeError):
    """A barrier was used inconsistently with its declared parties."""


class CyclicBarrier:
    """A fixed-parties cyclic barrier (also X10's ``SPMDBarrier``).

    Semantics follow ``java.util.concurrent.CyclicBarrier``: the barrier
    trips when ``parties`` arrivals accumulate, then resets for the next
    *generation*.  Verification bookkeeping is the event mapping of
    Section 4.1 applied to generations: generation ``g``'s trip is the
    event ``(barrier, g+1)``; a registered task that has completed ``k``
    trips has local phase ``k`` and impedes every later trip event.
    """

    def __init__(
        self,
        parties: int,
        runtime: Optional[ArmusRuntime] = None,
        name: Optional[str] = None,
    ) -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.parties = parties
        self.runtime = runtime if runtime is not None else get_default_runtime()
        self._rid = self.runtime.new_resource_id(name or "barrier")
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived = 0
        # Verification only: declared participants and their trip counts.
        self._trips: Dict[Task, int] = {}

    # -- participation annotations (JArmus.register) ------------------------
    def register(self, task: Optional[Task] = None) -> None:
        """Announce participation (the JArmus.register annotation)."""
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            if task in self._trips:
                raise PhaserMembershipError(
                    f"{task.name} already registered with {self._rid}"
                )
            if len(self._trips) >= self.parties:
                raise BrokenBarrierError(
                    f"barrier already has {self.parties} registered parties"
                )
            self._trips[task] = self._generation
            task._add_registration(self)

    def register_child(self, child: Task, parent: Optional[Task] = None) -> None:
        """Register a not-yet-started task (spawn-time registration)."""
        if child.started:
            raise PhaserMembershipError(
                f"register_child({child.name}) after the task started"
            )
        with self._cond:
            if len(self._trips) >= self.parties:
                raise BrokenBarrierError(
                    f"barrier already has {self.parties} registered parties"
                )
            self._trips[child] = self._generation
            child._add_registration(self)

    def deregister(self, task: Optional[Task] = None) -> None:
        """Withdraw the participation annotation."""
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            self._trips.pop(task, None)
            task._remove_registration(self)

    @property
    def registered_parties(self) -> int:
        with self._cond:
            return len(self._trips)

    # -- synchronisation -----------------------------------------------------
    def await_barrier(self) -> int:
        """Block until all ``parties`` tasks arrive (Java ``await()``).

        Returns the generation tripped.  The last arriver trips the
        barrier and releases everyone; the barrier then resets (cyclic).
        """
        my_generation, spec = self._arrive_begin()
        if spec is not None:
            verified_wait(spec)
        return my_generation

    def _arrive_begin(self):
        """Count the arrival; returns ``(generation, spec)`` where
        ``spec`` is the wait for the trip (``None`` when this arrival
        tripped the barrier itself)."""
        task = self.runtime.current_task()
        with self._cond:
            my_generation = self._generation
            self._arrived += 1
            if task in self._trips:
                self._trips[task] = my_generation + 1
            if self._arrived == self.parties:
                self._arrived = 0
                self._generation += 1
                self._cond.notify_all()
                return my_generation, None

        def ready() -> bool:
            return self._generation > my_generation

        def status():
            return blocked_status(task, Event(self._rid, my_generation + 1))

        return my_generation, WaitSpec(self._cond, ready, task, status)

    # -- observer protocol ------------------------------------------------------
    def _phase_of(self, task: Task) -> Optional[int]:
        with self._cond:
            return self._trips.get(task)

    def _leave_on_termination(self, task: Task) -> None:
        """A terminated party can no longer arrive.  Its absence is
        starvation (Java would eventually break the barrier), not a
        circular wait, so it simply leaves the verification maps."""
        with self._cond:
            self._trips.pop(task, None)

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"<CyclicBarrier {self._rid} parties={self.parties} "
                f"generation={self._generation} arrived={self._arrived}>"
            )


class CountDownLatch:
    """A one-shot latch: ``count_down()`` is non-blocking, ``await_latch``
    blocks until the count reaches zero.

    Verification view: the latch release is the single event
    ``(latch, 1)``.  Tasks that :meth:`register` owe a count-down and
    impede the event (local phase 0) until they have counted down at
    least once (phase 1).  Awaiting tasks wait on the event without
    membership — dynamic membership in its simplest form.
    """

    def __init__(
        self,
        count: int,
        runtime: Optional[ArmusRuntime] = None,
        name: Optional[str] = None,
    ) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self.runtime = runtime if runtime is not None else get_default_runtime()
        self._rid = self.runtime.new_resource_id(name or "latch")
        self._cond = threading.Condition()
        self._count = count
        self._obligations: Dict[Task, int] = {}  # task -> 0 (owes) or 1 (done)

    # -- verification annotations -----------------------------------------
    def register(self, task: Optional[Task] = None) -> None:
        """Declare that ``task`` will count this latch down."""
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            if task in self._obligations:
                raise PhaserMembershipError(
                    f"{task.name} already registered with {self._rid}"
                )
            self._obligations[task] = 0
            task._add_registration(self)

    def register_child(self, child: Task, parent: Optional[Task] = None) -> None:
        if child.started:
            raise PhaserMembershipError(
                f"register_child({child.name}) after the task started"
            )
        with self._cond:
            self._obligations[child] = 0
            child._add_registration(self)

    # -- latch API ---------------------------------------------------------
    @property
    def count(self) -> int:
        with self._cond:
            return self._count

    def count_down(self) -> None:
        """Decrement the count; never blocks (Java ``countDown()``)."""
        task = self.runtime.current_task()
        with self._cond:
            if self._count > 0:
                self._count -= 1
            if task in self._obligations:
                self._obligations[task] = 1
            if self._count == 0:
                self._cond.notify_all()

    def await_latch(self) -> None:
        """Block until the count reaches zero (Java ``await()``)."""
        verified_wait(self._await_spec())

    def _await_spec(self) -> WaitSpec:
        task = self.runtime.current_task()

        def ready() -> bool:
            return self._count == 0

        def status():
            return blocked_status(task, Event(self._rid, 1))

        return WaitSpec(self._cond, ready, task, status)

    # -- observer protocol ----------------------------------------------------
    def _phase_of(self, task: Task) -> Optional[int]:
        with self._cond:
            return self._obligations.get(task)

    def _leave_on_termination(self, task: Task) -> None:
        """A terminated task can no longer count down: treat its
        obligation as discharged so survivors' analyses do not blame it
        (its missing count-down is starvation, not circular wait)."""
        with self._cond:
            self._obligations.pop(task, None)

    def __repr__(self) -> str:
        with self._cond:
            return f"<CountDownLatch {self._rid} count={self._count}>"
