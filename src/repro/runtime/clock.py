"""X10-style clocks (Section 2.1).

A clock is a phaser with the X10 vocabulary: ``advance()`` blocks until
all registered tasks advance (Figure 1's ``c.advance()``); ``resume()``
initiates a split-phase advance that ``advance()`` later completes;
``drop()`` revokes membership.  The creating task is implicitly
registered, and children are registered at spawn via
``runtime.spawn(fn, register=[clock])`` — the ``async clocked(c)`` idiom.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.phaser import Phaser
from repro.runtime.tasks import Task
from repro.runtime.verifier import ArmusRuntime


class Clock(Phaser):
    """An X10 clock: a phaser with implicit creator registration."""

    def __init__(
        self,
        runtime: Optional[ArmusRuntime] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(runtime, register_self=True, name=name or "clock")
        self._resumed: dict[Task, int] = {}

    @staticmethod
    def make(runtime: Optional[ArmusRuntime] = None) -> "Clock":
        """X10 spelling: ``Clock.make()``."""
        return Clock(runtime)

    def advance(self) -> int:
        """The clock step: arrive and wait for all registered tasks.

        Completes a pending :meth:`resume` instead of arriving twice
        (X10's resume/advance pairing).
        """
        task = self.runtime.current_task()
        with self._cond:
            pending = self._resumed.pop(task, None)
        if pending is not None:
            self.await_advance(pending)
            return pending
        return self.arrive_and_await_advance()

    def resume(self) -> int:
        """Split-phase initiation: signal arrival without waiting.

        The task keeps running; the matching :meth:`advance` only waits.
        """
        task = self.runtime.current_task()
        phase = self.arrive()
        with self._cond:
            self._resumed[task] = phase
        return phase

    def drop(self) -> None:
        """Revoke the caller's registration (X10 ``c.drop()``)."""
        task = self.runtime.current_task()
        with self._cond:
            self._resumed.pop(task, None)
        self.deregister(task)
