"""Clocked variables (Atkins, Potanin, Groves — Section 2.2, Section 6.3).

A clocked variable pairs a barrier (an X10 clock) with a value and gives
phased read/write access: readers see the value *committed at their
current phase*; writers prepare the value for the *next* phase; the
clock's ``advance`` commits.  Data races are excluded by construction —
writes only become visible across a synchronisation.

The protocol (per registered task, per phase ``n``)::

    v = cv.get()     # the value committed at phase n
    cv.set(f(v))     # propose the value for phase n+1
    cv.next()        # advance the clock: everyone moves to phase n+1

The course programs of Section 6.3 (FI, FR, SE) are built on this
abstraction; their task:barrier ratios are what stress the graph-model
selection.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.runtime.clock import Clock
from repro.runtime.tasks import Task
from repro.runtime.verifier import ArmusRuntime, get_default_runtime


class ClockedVar:
    """A value mediated by its own clock.

    Parameters
    ----------
    initial:
        The value committed at phase 0.
    reducer:
        Optional combiner for concurrent same-phase writes
        (e.g. ``operator.add`` turns the variable into a phased
        accumulator, the pattern of parallel reductions).  Default:
        last-write-wins.
    runtime, clock:
        Runtime and clock; a fresh clock is created when none is given
        (the creating task becomes registered, as with any clock).
    """

    def __init__(
        self,
        initial: Any = None,
        reducer: Optional[Callable[[Any, Any], Any]] = None,
        runtime: Optional[ArmusRuntime] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.runtime = runtime if runtime is not None else get_default_runtime()
        self.clock = clock if clock is not None else Clock(self.runtime, name="cvar")
        self._reducer = reducer
        self._lock = threading.Lock()
        self._committed: Dict[int, Any] = {0: initial}
        self._latest_phase = 0

    # ------------------------------------------------------------------
    def _my_phase(self, task: Optional[Task] = None) -> int:
        phase = self.clock.local_phase(task)
        if phase is None:
            raise RuntimeError("task not registered with the clocked variable")
        return phase

    def get(self) -> Any:
        """The value committed at the caller's current phase."""
        phase = self._my_phase()
        with self._lock:
            # Phases without an explicit write inherit the previous value.
            p = phase
            while p > 0 and p not in self._committed:
                p -= 1
            return self._committed.get(p)

    def set(self, value: Any) -> None:
        """Propose the value observed after the next synchronisation."""
        phase = self._my_phase()
        with self._lock:
            target = phase + 1
            if self._reducer is not None and target in self._committed:
                self._committed[target] = self._reducer(
                    self._committed[target], value
                )
            else:
                self._committed[target] = value
            self._latest_phase = max(self._latest_phase, target)

    def next(self) -> int:
        """Advance the clock (commit boundary); returns the new phase."""
        return self.clock.advance()

    # -- registration passthroughs (so spawn(register=[cv]) works) --------
    def register(self, task: Optional[Task] = None) -> None:
        self.clock.register(task)

    def register_child(self, child: Task, parent: Optional[Task] = None) -> None:
        self.clock.register_child(child, parent)

    def drop(self) -> None:
        self.clock.drop()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<ClockedVar phase<={self._latest_phase} "
                f"value={self._committed.get(self._latest_phase)!r}>"
            )
