"""X10-style ``finish`` blocks: lexically-scoped join barriers.

``finish { ... async S ... }`` waits for every task transitively spawned
in its scope.  The paper encodes the join barrier as a phaser (Figure 3):
children are registered at spawn and deregister on termination; the owner
advances and awaits.  Nested finishes follow X10's rule that "a task
spawned within the scope of three finishes is registered with three join
barriers" (Section 2.2): each task carries a stack of active finish
scopes, children inherit it at spawn (handled centrally by
``ArmusRuntime.spawn``), and every spawn registers the child with each
enclosing join barrier.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.core.report import DeadlockError
from repro.runtime.phaser import Phaser
from repro.runtime.tasks import Task, TaskFailedError
from repro.runtime.verifier import ArmusRuntime, get_default_runtime


class Finish:
    """A join barrier used as a context manager.

    >>> with Finish(runtime) as f:
    ...     for i in range(4):
    ...         f.spawn(work, i)
    ... # exiting the block joins the four tasks

    Child failures are collected and re-raised when the block exits,
    after every child finished — the closest Python analogue of X10's
    rooted exceptions.  Deadlock verification errors raised inside
    children propagate unwrapped so callers can observe them directly.
    """

    def __init__(self, runtime: Optional[ArmusRuntime] = None) -> None:
        self.runtime = runtime if runtime is not None else get_default_runtime()
        self._phaser = Phaser(self.runtime, register_self=False, name="finish")
        self._owner: Optional[Task] = None
        self._children: List[Task] = []

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Finish":
        self._owner = self.runtime.current_task()
        self._phaser.register(self._owner)
        _finish_stack(self._owner).append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        owner = self._owner
        assert owner is not None
        stack = _finish_stack(owner)
        assert stack and stack[-1] is self, "unbalanced finish scopes"
        stack.pop()
        if exc is not None:
            # The block body failed; detach from the join barrier so
            # children do not block on the owner forever.
            self._phaser.arrive_and_deregister()
            return
        # The join step of Figure 3: adv(pb); await(pb).
        self._phaser.arrive()
        try:
            self._phaser.await_advance()
        finally:
            if self._phaser.is_registered(owner):
                self._phaser.deregister(owner)
        self._raise_child_failures()

    def _raise_child_failures(self) -> None:
        failed = [t for t in self._children if t.exception is not None]
        if not failed:
            return
        cause = failed[0].exception
        assert cause is not None
        if isinstance(cause, DeadlockError):
            raise cause
        raise TaskFailedError(failed[0], cause) from cause

    # -- spawning ----------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        clocks: Iterable[object] = (),
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> Task:
        """``async clocked(...) S`` within this finish.

        Registration with this finish (and any outer ones) happens through
        the spawning task's finish stack; ``clocks`` adds X10 clock
        registrations.  Must be called from a task inside the finish's
        dynamic scope.
        """
        parent = self.runtime.current_task()
        if self not in _finish_stack(parent):
            raise RuntimeError(
                "Finish.spawn called outside the finish's dynamic scope"
            )
        return self.runtime.spawn(fn, *args, name=name, register=clocks, **kwargs)

    # -- spawn adoption (called by ArmusRuntime.spawn) -----------------------
    def _adopt_spawn(self, child: Task, parent: Task) -> None:
        self._phaser.register_child(child, parent)
        self._children.append(child)

    @property
    def pending_children(self) -> int:
        """Children still registered (not yet terminated)."""
        owner_registered = (
            1
            if self._owner is not None and self._phaser.is_registered(self._owner)
            else 0
        )
        return self._phaser.registered_parties - owner_registered


def _finish_stack(task: Task) -> list:
    stack = getattr(task, "_finish_scopes", None)
    if stack is None:
        stack = []
        task._finish_scopes = stack  # type: ignore[attr-defined]
    return stack


def finish(runtime: Optional[ArmusRuntime] = None) -> Finish:
    """Convenience spelling: ``with finish(rt) as f: ...``."""
    return Finish(runtime)
