"""Reentrant locks folded into the event-based analysis.

JArmus instruments ``ReentrantLock`` "without annotations"
(Section 5.3): lock acquisition order deadlocks and mixed lock/barrier
deadlocks fall out of the same graph analysis.  The event mapping treats
each lock as a logical clock of *release events*: the ``k``-th release is
the event ``(lock, k+1)``.

* A holder that acquired during epoch ``k`` is "registered at phase
  ``k``": it impedes the release event ``(lock, k+1)`` until it lets go.
* A blocked acquirer waits on ``(lock, k+1)``.

A waits-for chain of locks, or a lock held across a barrier wait, thus
shows up as an ordinary cycle in the WFG/SG.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.events import Event
from repro.runtime.observer import WaitSpec, blocked_status, verified_wait
from repro.runtime.tasks import Task
from repro.runtime.verifier import ArmusRuntime, get_default_runtime


class ArmusLock:
    """A verified reentrant lock."""

    def __init__(
        self,
        runtime: Optional[ArmusRuntime] = None,
        name: Optional[str] = None,
    ) -> None:
        self.runtime = runtime if runtime is not None else get_default_runtime()
        self._rid = self.runtime.new_resource_id(name or "lock")
        self._cond = threading.Condition()
        self._owner: Optional[Task] = None
        self._depth = 0
        self._epoch = 0  # number of completed hold periods (releases)

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Take the lock, blocking (with verification) while held by
        another task.  Reentrant for the owner."""
        while True:
            spec = self._acquire_attempt()
            if spec is None:
                return
            # Nothing to deregister on avoidance: the waiter holds no new
            # resource yet.  Another task may win the wake-up race, hence
            # the retry loop.
            verified_wait(spec)

    def _acquire_attempt(self, task: Optional[Task] = None) -> Optional[WaitSpec]:
        """Try to take the lock; returns ``None`` on success or the wait
        for the current holder's release event."""
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            if self._owner is task:
                self._depth += 1
                return None
            if self._owner is None:
                self._take(task)
                return None
            wait_event = Event(self._rid, self._epoch + 1)

        def ready() -> bool:
            return self._owner is None or self._owner is task

        def status(event=wait_event):
            return blocked_status(task, event)

        return WaitSpec(self._cond, ready, task, status)

    def _take(self, task: Task) -> None:
        self._owner = task
        self._depth = 1
        task._add_registration(self)

    def release(self) -> None:
        task = self.runtime.current_task()
        with self._cond:
            if self._owner is not task:
                raise RuntimeError(f"{task.name} does not hold {self._rid}")
            self._depth -= 1
            if self._depth == 0:
                self._owner = None
                self._epoch += 1
                task._remove_registration(self)
                self._cond.notify_all()

    def __enter__(self) -> "ArmusLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        with self._cond:
            return self._owner is not None

    # -- observer protocol ---------------------------------------------------
    def _phase_of(self, task: Task) -> Optional[int]:
        with self._cond:
            if self._owner is task:
                return self._epoch
            return None

    def _leave_on_termination(self, task: Task) -> None:
        with self._cond:
            if self._owner is task:  # leaked lock: release it
                self._owner = None
                self._depth = 0
                self._epoch += 1
                self._cond.notify_all()

    def __repr__(self) -> str:
        with self._cond:
            owner = self._owner.name if self._owner else None
            return f"<ArmusLock {self._rid} owner={owner} epoch={self._epoch}>"
