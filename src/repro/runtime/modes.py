"""HJ-style phaser registration modes (the paper's §8 future work).

Habanero-Java phasers register tasks in a *mode* that bounds their
capabilities (Shirako et al., ICS'08):

* ``SIG_WAIT`` — the full barrier member (the only mode in PL/X10/Java):
  arrives and waits;
* ``SIG`` — signal-only (a producer): arrives, never waits, hence can
  run ahead of the phase;
* ``WAIT`` — wait-only (a consumer): waits for signals, never arrives,
  hence never gates anyone.

Verification semantics under the event-based representation:

* signal-side members (``SIG``/``SIG_WAIT``) impede the phaser's signal
  events ``(p, n)`` until they arrive at ``n``;
* ``WAIT`` members impede **nothing** on the signal side — the key
  difference: a consumer's absence can never deadlock the producers
  (unless the phaser is *bounded*, below);
* a *bounded* phaser (the bounded producer-consumer of HJ) gives the
  wait side its own resource ``p/w``: consumers "arrive" on it whenever
  they complete a wait, and a producer more than ``bound`` phases ahead
  blocks waiting on the event ``(p/w, n - bound)`` — so a stuck
  consumer shows up as an ordinary impeder and producer-side deadlocks
  are detected by the unchanged graph analysis.
"""

from __future__ import annotations

import enum


class RegistrationMode(enum.Enum):
    """How a task participates in a phaser's synchronisation."""

    SIG_WAIT = "sig_wait"
    SIG = "sig"
    WAIT = "wait"

    @property
    def signals(self) -> bool:
        return self in (RegistrationMode.SIG_WAIT, RegistrationMode.SIG)

    @property
    def waits(self) -> bool:
        return self in (RegistrationMode.SIG_WAIT, RegistrationMode.WAIT)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
