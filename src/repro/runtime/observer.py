"""The task observer: instrumented blocking for every synchronizer.

This module is the one place where "a task blocks" meets "the verifier
learns about it" (the *task observer* component of JArmus/Armus-X10,
Section 5.3).  The design is deliberately transport-neutral: a
synchronizer expresses its wait as a :class:`WaitSpec` — a condition, a
predicate, the waiting task, a blocked-status factory and an optional
avoidance cleanup — and a *driver* weaves the verification in:

1. a fast path (no verification traffic when the wait would not block);
2. the avoidance check before blocking (raising instead of
   deadlocking) — :func:`begin_blocked`;
3. status publication for the detection monitor while blocked;
4. cancellation polling, so detected deadlocks abort the wait;
5. guaranteed status withdrawal on every exit path —
   :func:`end_blocked`.

Two drivers consume the same spec: :func:`verified_wait` here blocks a
*thread* on the spec's :class:`threading.Condition`, and
:func:`repro.aio.observer.averified_wait` parks an *asyncio task* on an
event-loop notifier.  Because both route through
:func:`begin_blocked`/:func:`end_blocked`, the verifier (and any
attached :class:`~repro.trace.recorder.TraceRecorder`) observes an
identical protocol whichever backend ran the task.

The hooks are also exactly the *delta contract* of
:class:`~repro.core.incremental.IncrementalChecker`:
:func:`begin_blocked` is a publish delta and :func:`end_blocked` a
withdraw delta, so a runtime constructed with ``incremental=True``
feeds the maintained analysis graph directly from either driver — the
detection monitor then polls in O(1) instead of snapshotting.

The blocked status is built *once*, at block entry: a blocked task cannot
arrive at, register with, or leave any synchronizer, so its local view is
immutable for the duration of the wait — the insight that makes per-task
consistency purely local (Section 2.1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.core.events import BlockedStatus, Event
from repro.core.report import DeadlockAvoidedError, DeadlockReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.tasks import Task


def registered_phases(task: "Task") -> Dict[str, int]:
    """The local half of the event-based representation for ``task``:
    ``resource id -> local phase`` over every synchronizer the task is a
    member of (phasers, clocks, finish blocks, latch obligations, held
    locks).

    Synchronizers with several resource sides (e.g. a bounded phaser's
    signal and wait clocks) implement ``_registrations_of`` and return
    the whole mapping; the common case implements ``_phase_of`` for the
    synchronizer's single ``_rid``.
    """
    phases: Dict[str, int] = {}
    for sync in task.registered_synchronizers():
        multi = getattr(sync, "_registrations_of", None)
        if multi is not None:
            phases.update(multi(task))
            continue
        phase = sync._phase_of(task)  # noqa: SLF001 - observer protocol
        if phase is not None:
            phases[sync._rid] = phase  # noqa: SLF001
    return phases


def blocked_status(task: "Task", *events: Event) -> BlockedStatus:
    """Assemble the :class:`BlockedStatus` for ``task`` waiting on
    ``events``."""
    return BlockedStatus(
        waits=frozenset(events), registered=registered_phases(task)
    )


@dataclass
class WaitSpec:
    """One instrumented wait, described transport-neutrally.

    Synchronizers build specs (their ``_*_spec`` methods); drivers
    consume them.  ``predicate`` must be cheap and is always evaluated
    with ``cond``'s lock held; ``status_factory`` runs once, at block
    entry.  ``on_avoided`` is the pre-raise cleanup of avoidance mode
    (synchronizers deregister the doomed task there, following the
    paper: "an exception is raised ... and the tasks become
    deregistered").  ``target`` carries the operation-specific result
    (e.g. the awaited phase) to the post-wait bookkeeping step.
    """

    cond: threading.Condition
    predicate: Callable[[], bool]
    task: "Task"
    status_factory: Callable[[], BlockedStatus]
    on_avoided: Optional[Callable[[DeadlockReport], None]] = None
    target: Optional[int] = None


def begin_blocked(
    task: "Task",
    status_factory: Callable[[], BlockedStatus],
    on_avoided: Optional[Callable[[DeadlockReport], None]] = None,
) -> None:
    """Publish the about-to-block status through the **task's** runtime.

    Verification traffic goes through the task's runtime, not the
    synchronizer's: a distributed clock is shared across sites, and each
    site monitors its own tasks (Section 5.2's locality).  Raises
    :class:`DeadlockAvoidedError` when blocking would complete a
    deadlock (avoidance mode), after running ``on_avoided``.
    """
    status = status_factory()
    report = task.runtime.block_entry(task, status)
    if report is not None:
        if on_avoided is not None:
            on_avoided(report)
        raise DeadlockAvoidedError(report)


def end_blocked(task: "Task") -> None:
    """Withdraw the published status (success, error or abort alike)."""
    task.runtime.block_exit(task)


def verified_wait(spec: WaitSpec) -> None:
    """The thread driver: block on ``spec.cond`` until the predicate
    holds, with verification.  ``spec.cond`` must *not* be held by the
    caller.
    """
    task = spec.task
    # A task condemned by the detection monitor raises at its next
    # synchronisation point, even if the operation could proceed — this
    # keeps the outcome of a detected deadlock deterministic (all tasks
    # of the cycle observe the report, not just the unlucky ones).
    task.check_cancelled()
    with spec.cond:
        if spec.predicate():
            return
    begin_blocked(task, spec.status_factory, spec.on_avoided)
    try:
        with spec.cond:
            while True:
                task.check_cancelled()
                if spec.predicate():
                    return
                spec.cond.wait(task.runtime.poll_s)
    finally:
        end_blocked(task)
