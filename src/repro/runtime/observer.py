"""The task observer: instrumented blocking for every synchronizer.

This module is the one place where "a task blocks" meets "the verifier
learns about it" (the *task observer* component of JArmus/Armus-X10,
Section 5.3).  Synchronizers express their wait as a condition +
predicate and a blocked-status factory; :func:`verified_wait` weaves in:

1. a fast path (no verification traffic when the wait would not block);
2. the avoidance check before blocking (raising instead of deadlocking);
3. status publication for the detection monitor while blocked;
4. cancellation polling, so detected deadlocks abort the wait;
5. guaranteed status withdrawal on every exit path.

The blocked status is built *once*, at block entry: a blocked task cannot
arrive at, register with, or leave any synchronizer, so its local view is
immutable for the duration of the wait — the insight that makes per-task
consistency purely local (Section 2.1).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.core.events import BlockedStatus, Event
from repro.core.report import DeadlockAvoidedError, DeadlockReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.tasks import Task
    from repro.runtime.verifier import ArmusRuntime


def registered_phases(task: "Task") -> Dict[str, int]:
    """The local half of the event-based representation for ``task``:
    ``resource id -> local phase`` over every synchronizer the task is a
    member of (phasers, clocks, finish blocks, latch obligations, held
    locks).

    Synchronizers with several resource sides (e.g. a bounded phaser's
    signal and wait clocks) implement ``_registrations_of`` and return
    the whole mapping; the common case implements ``_phase_of`` for the
    synchronizer's single ``_rid``.
    """
    phases: Dict[str, int] = {}
    for sync in task.registered_synchronizers():
        multi = getattr(sync, "_registrations_of", None)
        if multi is not None:
            phases.update(multi(task))
            continue
        phase = sync._phase_of(task)  # noqa: SLF001 - observer protocol
        if phase is not None:
            phases[sync._rid] = phase  # noqa: SLF001
    return phases


def blocked_status(task: "Task", *events: Event) -> BlockedStatus:
    """Assemble the :class:`BlockedStatus` for ``task`` waiting on
    ``events``."""
    return BlockedStatus(
        waits=frozenset(events), registered=registered_phases(task)
    )


def verified_wait(
    runtime: "ArmusRuntime",
    cond: threading.Condition,
    predicate: Callable[[], bool],
    task: "Task",
    status_factory: Callable[[], BlockedStatus],
    on_avoided: Optional[Callable[[DeadlockReport], None]] = None,
) -> None:
    """Block on ``cond`` until ``predicate()`` holds, with verification.

    ``on_avoided`` runs before raising :class:`DeadlockAvoidedError`
    (synchronizers deregister the task there, following the paper: "an
    exception is raised ... and the tasks become deregistered").
    ``cond`` must *not* be held by the caller.

    Verification traffic goes through the **task's** runtime, not the
    synchronizer's: a distributed clock is shared across sites, and each
    site monitors its own tasks (Section 5.2's locality).
    """
    runtime = task.runtime
    # A task condemned by the detection monitor raises at its next
    # synchronisation point, even if the operation could proceed — this
    # keeps the outcome of a detected deadlock deterministic (all tasks
    # of the cycle observe the report, not just the unlucky ones).
    task.check_cancelled()
    with cond:
        if predicate():
            return
    status = status_factory()
    report = runtime.block_entry(task, status)
    if report is not None:
        if on_avoided is not None:
            on_avoided(report)
        raise DeadlockAvoidedError(report)
    try:
        with cond:
            while True:
                task.check_cancelled()
                if predicate():
                    return
                cond.wait(runtime.poll_s)
    finally:
        runtime.block_exit(task)
