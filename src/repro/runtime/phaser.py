"""The runtime Phaser: the central synchronizer (Sections 2.2 and 5.3).

Phasers generalise barrier synchronisation — group synchronisation,
dynamic membership, split-phase operation and future-phase waits — and
subsume the other barrier abstractions of this package (clocks, finish
blocks are thin layers over :class:`Phaser`).

The API mirrors ``java.util.concurrent.Phaser`` (Figure 2), with one
deliberate difference inherited from JArmus: registration always binds a
*task*, because the verification needs to know which tasks participate in
a synchronisation.  Where Java code writes ``new Phaser(1)`` and shares
the object, this runtime registers the creating task explicitly
(``register_self=True``) and registers children at spawn
(``runtime.spawn(fn, register=[phaser])``, the X10 ``clocked`` idiom) or
from the task's own body (``phaser.register()``, the JArmus annotation).

Every member has a *local phase*, exactly the phaser map of the PL
semantics (Figure 4); the synchronisation event ``(p, n)`` is observed
once every signalling member's local phase reaches ``n``.

Beyond the paper's PL model, the runtime phaser supports HJ
*registration modes* (:mod:`repro.runtime.modes`) including the bounded
producer-consumer configuration the paper lists as future work: pass
``bound=k`` and register producers in ``SIG`` and consumers in ``WAIT``
mode; a producer more than ``k`` phases ahead blocks — observably, so
the deadlock analysis covers producer-side cycles too.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.core.events import Event
from repro.core.report import DeadlockReport
from repro.runtime.modes import RegistrationMode
from repro.runtime.observer import WaitSpec, blocked_status, verified_wait
from repro.runtime.tasks import Task
from repro.runtime.verifier import ArmusRuntime, get_default_runtime


class PhaserMembershipError(RuntimeError):
    """An operation that requires (non-)membership was misused."""


class Phaser:
    """A verified phaser with dynamic membership and HJ modes.

    Parameters
    ----------
    runtime:
        The owning runtime (defaults to the process-wide one).
    register_self:
        Register the creating task at phase 0 in ``SIG_WAIT`` mode (PL's
        ``newPhaser`` and X10's clock-creation semantics).
    name:
        Label used in deadlock reports.
    bound:
        Optional producer-consumer bound: a signalling member may run at
        most ``bound`` phases ahead of the slowest ``WAIT``-mode member.
        ``None`` (default) means unbounded (pure barrier semantics).
    """

    def __init__(
        self,
        runtime: Optional[ArmusRuntime] = None,
        register_self: bool = True,
        name: Optional[str] = None,
        bound: Optional[int] = None,
    ) -> None:
        self.runtime = runtime if runtime is not None else get_default_runtime()
        self._rid = self.runtime.new_resource_id(name or "phaser")
        #: The wait-side resource of a bounded phaser (consumers' clock).
        self._rid_wait = f"{self._rid}/w"
        if bound is not None and bound < 0:
            raise ValueError("bound must be non-negative")
        self.bound = bound
        self._cond = threading.Condition()
        #: Signal-side members (SIG, SIG_WAIT): task -> local signal phase.
        self._members: Dict[Task, int] = {}
        #: Wait-only members (WAIT): task -> local wait phase.
        self._wait_members: Dict[Task, int] = {}
        self._modes: Dict[Task, RegistrationMode] = {}
        if register_self:
            self.register()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(
        self,
        task: Optional[Task] = None,
        mode: RegistrationMode = RegistrationMode.SIG_WAIT,
    ) -> int:
        """Register ``task`` (default: the caller) at the current phase.

        Returns the phase joined at.  Registering an already-registered
        task raises (rule [reg] premise).
        """
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            if task in self._modes:
                raise PhaserMembershipError(
                    f"{task.name} already registered with {self._rid}"
                )
            phase = self._observed_phase_locked()
            self._enroll(task, mode, phase)
            return phase

    def register_child(
        self,
        child: Task,
        parent: Optional[Task] = None,
        mode: RegistrationMode = RegistrationMode.SIG_WAIT,
    ) -> int:
        """Register a not-yet-started task, inheriting the parent's phase.

        This is PL's ``reg(t, p)`` and X10's ``async clocked(c)``: the
        child can never miss the phase its parent spawned it in.  Must run
        before the child starts (a running task manages its own
        registrations; see Section 2.2 on the registration race).
        """
        if child.started:
            raise PhaserMembershipError(
                f"register_child({child.name}) after the task started"
            )
        if parent is None:
            parent = self.runtime.current_task()
        with self._cond:
            if child in self._modes:
                raise PhaserMembershipError(
                    f"{child.name} already registered with {self._rid}"
                )
            phase = self._members.get(parent)
            if phase is None:
                phase = self._observed_phase_locked()
            self._enroll(child, mode, phase)
            return phase

    def _enroll(self, task: Task, mode: RegistrationMode, phase: int) -> None:
        self._modes[task] = mode
        if mode.signals:
            self._members[task] = phase
        if mode is RegistrationMode.WAIT:
            self._wait_members[task] = phase
        task._add_registration(self)
        # Trace context: membership changes are recorded through the
        # task's runtime (a shared phaser spans runtimes/sites).
        task.runtime.notify_register(task, self._rid, phase)

    def in_mode(self, mode: RegistrationMode) -> "_ModalRegistrar":
        """A spawn-time registration handle carrying a mode.

        ``runtime.spawn(fn, register=[ph.in_mode(RegistrationMode.WAIT)])``
        registers the child as a consumer *before it starts* — the only
        race-free way to guarantee the bound is engaged from the first
        item (cf. Section 2.2's registration race).
        """
        return _ModalRegistrar(self, mode)

    def deregister(self, task: Optional[Task] = None) -> None:
        """Revoke membership (PL ``dereg``; X10 ``drop``).

        Leaving may complete a pending synchronisation (or relax the
        producer bound), so waiters are notified.
        """
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            if task not in self._modes:
                raise PhaserMembershipError(
                    f"{task.name} not registered with {self._rid}"
                )
            self._evict(task)
            self._cond.notify_all()

    def _evict(self, task: Task) -> None:
        self._modes.pop(task, None)
        self._members.pop(task, None)
        self._wait_members.pop(task, None)
        task._remove_registration(self)

    def is_registered(self, task: Optional[Task] = None) -> bool:
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            return task in self._modes

    def mode_of(self, task: Optional[Task] = None) -> Optional[RegistrationMode]:
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            return self._modes.get(task)

    @property
    def registered_parties(self) -> int:
        with self._cond:
            return len(self._modes)

    # ------------------------------------------------------------------
    # synchronisation
    # ------------------------------------------------------------------
    def arrive(self) -> int:
        """Arrive without waiting (PL ``adv``; split-phase initiation).

        Returns the phase the arrival completes (the caller's new local
        phase).  On a bounded phaser with ``WAIT`` members, arrival
        first blocks (observably) until the producer is within ``bound``
        phases of the slowest consumer.
        """
        task, target, bound_spec = self._arrive_begin()
        if bound_spec is not None:
            verified_wait(bound_spec)
        return self._arrive_commit(task, target)

    def _arrive_begin(self):
        """Validate membership and resolve the arrival target; returns
        ``(task, target, bound_spec)`` where ``bound_spec`` is the wait
        a bounded producer must perform first (or ``None``)."""
        task = self.runtime.current_task()
        with self._cond:
            mode = self._modes.get(task)
            if mode is None or not mode.signals:
                raise PhaserMembershipError(
                    f"{task.name} cannot arrive at {self._rid}: "
                    f"{'wait-only member' if mode else 'not registered'}"
                )
            target = self._members[task] + 1
        return task, target, self._bound_spec(task, target)

    def _bound_spec(self, task: Task, target: int) -> Optional[WaitSpec]:
        """The wait that makes signalling ``target`` respect the bound."""
        if self.bound is None:
            return None
        threshold = target - self.bound  # consumers must have reached this
        if threshold <= 0:
            return None

        def ready() -> bool:
            if not self._wait_members:
                return True
            return min(self._wait_members.values()) >= threshold

        def status():
            return blocked_status(task, Event(self._rid_wait, threshold))

        return WaitSpec(self._cond, ready, task, status)

    def _arrive_commit(self, task: Task, target: int) -> int:
        """Publish the arrival and notify waiters."""
        with self._cond:
            if task in self._members:  # may have been evicted meanwhile
                self._members[task] = target
            self._cond.notify_all()
        task.runtime.notify_advance(task, self._rid, target)
        return target

    def await_advance(self, phase: Optional[int] = None) -> None:
        """Block until every signalling member's local phase is at least
        ``phase`` (PL ``await``; the split-phase completion).

        ``phase`` defaults to the caller's local phase — for ``WAIT``
        members, their wait phase plus one (each await observes the next
        signal event).  Non-members may await an explicit phase
        (HJ-style observers and future-phase waits).  Signal-only
        members cannot wait.
        """
        spec = self._await_spec(phase)
        verified_wait(spec)
        self._await_finish(spec)

    def _await_spec(self, phase: Optional[int] = None) -> WaitSpec:
        """Resolve the awaited phase and describe the wait."""
        task = self.runtime.current_task()
        with self._cond:
            mode = self._modes.get(task)
            if mode is RegistrationMode.SIG:
                raise PhaserMembershipError(
                    f"{task.name} is signal-only on {self._rid}: cannot wait"
                )
            if phase is None:
                if mode is RegistrationMode.SIG_WAIT:
                    phase = self._members[task]
                elif mode is RegistrationMode.WAIT:
                    phase = self._wait_members[task] + 1
                else:
                    raise PhaserMembershipError(
                        f"{task.name} must pass a phase: not registered "
                        f"with {self._rid}"
                    )
        target = phase

        def ready() -> bool:
            return self._ready_locked(target)

        def status():
            return blocked_status(task, Event(self._rid, target))

        def on_avoided(report: DeadlockReport) -> None:
            # Deregister before raising, as Armus does for clocks, so the
            # survivors can make progress without the doomed task.
            with self._cond:
                if task in self._modes:
                    self._evict(task)
                    self._cond.notify_all()

        return WaitSpec(
            self._cond, ready, task, status, on_avoided, target=target
        )

    def _await_finish(self, spec: WaitSpec) -> None:
        """Post-wait bookkeeping: a ``WAIT`` member observed the event."""
        task, target = spec.task, spec.target
        with self._cond:
            if self._modes.get(task) is RegistrationMode.WAIT:
                current = self._wait_members.get(task, 0)
                self._wait_members[task] = max(current, target)
                # Consumer progress may unblock bounded producers.
                self._cond.notify_all()

    def arrive_and_await_advance(self) -> int:
        """The barrier step: arrive, then wait for everyone (Figure 2's
        ``arriveAndAwaitAdvance``).  Returns the phase synchronised on."""
        phase = self.arrive()
        self.await_advance(phase)
        return phase

    def arrive_and_deregister(self) -> None:
        """Arrive and immediately leave (Figure 2's join-barrier signal).

        The combined operation stops the caller from impeding the next
        event without making it wait — ``adv`` then ``dereg`` of PL, done
        atomically.
        """
        task = self.runtime.current_task()
        with self._cond:
            if task not in self._modes:
                raise PhaserMembershipError(
                    f"{task.name} not registered with {self._rid}"
                )
            self._evict(task)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def phase(self) -> int:
        """The observed phase: the least local phase among signalling
        members (0 for a memberless phaser)."""
        with self._cond:
            return self._observed_phase_locked()

    def local_phase(self, task: Optional[Task] = None) -> Optional[int]:
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            return self._members.get(task)

    def wait_phase(self, task: Optional[Task] = None) -> Optional[int]:
        """A ``WAIT`` member's progress (observed signal events)."""
        if task is None:
            task = self.runtime.current_task()
        with self._cond:
            return self._wait_members.get(task)

    def _observed_phase_locked(self) -> int:
        if not self._members:
            return 0
        return min(self._members.values())

    def _ready_locked(self, phase: int) -> bool:
        """``await(P, n)``: every signalling member at least at ``phase``.

        Must be called with ``self._cond`` held — the predicate handed to
        :func:`verified_wait` runs under the condition's lock.
        """
        return all(p >= phase for p in self._members.values())

    # ------------------------------------------------------------------
    # observer protocol (used by repro.runtime.observer)
    # ------------------------------------------------------------------
    def _phase_of(self, task: Task) -> Optional[int]:
        with self._cond:
            return self._members.get(task)

    def _registrations_of(self, task: Task) -> Dict[str, int]:
        """Both resource sides: signal members impede ``rid`` events;
        WAIT members impede only the wait-side ``rid/w`` events that gate
        bounded producers."""
        with self._cond:
            out: Dict[str, int] = {}
            if task in self._members:
                out[self._rid] = self._members[task]
            if task in self._wait_members:
                out[self._rid_wait] = self._wait_members[task]
            return out

    def _leave_on_termination(self, task: Task) -> None:
        """X10/HJ semantics: terminated tasks deregister everywhere."""
        with self._cond:
            if task in self._modes:
                self._evict(task)
                self._cond.notify_all()

    def __repr__(self) -> str:
        with self._cond:
            bound = f" bound={self.bound}" if self.bound is not None else ""
            return (
                f"<Phaser {self._rid} phase={self._observed_phase_locked()} "
                f"parties={len(self._modes)}{bound}>"
            )


class _ModalRegistrar:
    """Adapter so ``spawn(register=[...])`` can carry a mode."""

    def __init__(self, phaser: Phaser, mode: RegistrationMode) -> None:
        self.phaser = phaser
        self.mode = mode

    def register_child(
        self, child: Task, parent: Optional[Task] = None
    ) -> int:
        return self.phaser.register_child(child, parent, mode=self.mode)
