"""JArmus-style registration annotations.

Java leaves barrier participation implicit, so JArmus requires each task
to announce the barriers it uses: ``JArmus.register(c, b)`` before the
synchronisation loop (Section 2.2).  :func:`register` is that annotation;
it accepts any mix of this package's synchronizers and registers the
*calling* task with each.

X10-style code does not need it — clocks register at creation/spawn, and
``Finish`` scopes register automatically — but the Java-flavoured
workloads (the NPB/JGF ports) use it verbatim.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.tasks import Task


def register(*synchronizers: object, task: Optional[Task] = None) -> None:
    """Announce that the calling task participates in ``synchronizers``.

    The JArmus annotation: ``register(c, b)`` mirrors
    ``JArmus.register(c, b)`` in Figure 2's fixed version.
    """
    for sync in synchronizers:
        reg = getattr(sync, "register", None)
        if reg is None:
            raise TypeError(f"{sync!r} is not a registrable synchronizer")
        reg(task) if task is not None else reg()


def deregister(*synchronizers: object, task: Optional[Task] = None) -> None:
    """Leave ``synchronizers`` (dynamic-membership departure)."""
    for sync in synchronizers:
        dereg = getattr(sync, "deregister", None) or getattr(sync, "drop", None)
        if dereg is None:
            raise TypeError(f"{sync!r} cannot be deregistered from")
        try:
            dereg(task) if task is not None else dereg()
        except TypeError:
            dereg()
