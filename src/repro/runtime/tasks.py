"""Cancellable tasks: the runtime's unit of concurrency.

A :class:`Task` wraps a thread with the machinery verification needs:

* an identity the checker can reference in reports;
* the set of synchronizers the task is registered with (the *resource
  mapper* input: the local half of the event-based representation);
* a cancellation flag checked by every instrumented blocking operation,
  so that the detection monitor can abort deadlocked tasks — the Python
  analogue of the paper's deadlock reporting (a real deadlock would
  otherwise hang the process, and the test-suite, forever);
* automatic deregistration from all synchronizers on termination — the
  X10/HJ semantics that prevents terminated-but-registered members from
  starving the survivors (Section 7, "Deadlock avoidance").
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.core.report import DeadlockDetectedError, DeadlockError, DeadlockReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.verifier import ArmusRuntime


class TaskFailedError(RuntimeError):
    """Raised by :meth:`Task.join` when the task body raised."""

    def __init__(self, task: "Task", cause: BaseException):
        super().__init__(f"task {task.name} failed: {cause!r}")
        self.task = task
        self.cause = cause


# Process-global task identity.  Tasks of *different* runtimes (the
# distributed sites of repro.distributed) share synchronizers, so both
# the thread->task binding and the id->task directory must be global.
_registry_lock = threading.Lock()
_by_ident: Dict[int, "Task"] = {}
_by_task_id: Dict[str, "Task"] = {}

# Context resolvers consulted by current_task() *before* the
# thread-ident map.  A backend whose unit of concurrency is finer than
# a thread (repro.aio binds tasks to asyncio coroutines, all sharing
# the event-loop thread) installs one; with none installed, resolution
# is purely thread-based, as before.
_task_resolvers: list = []


def register_task_resolver(resolver: Callable[[], Optional["Task"]]) -> None:
    """Install a calling-context resolver (idempotent).

    ``resolver()`` must be cheap, must never raise, and returns the
    :class:`Task` of the calling context or ``None`` to fall through to
    thread-ident lookup.
    """
    if resolver not in _task_resolvers:
        _task_resolvers.append(resolver)


def _bind(ident: int, task: "Task") -> None:
    with _registry_lock:
        _by_ident[ident] = task


def _unbind(ident: int, task: "Task") -> None:
    with _registry_lock:
        if _by_ident.get(ident) is task:
            del _by_ident[ident]


def _lookup_ident(ident: int) -> Optional["Task"]:
    with _registry_lock:
        return _by_ident.get(ident)


def lookup_task(task_id: str) -> Optional["Task"]:
    """Find a task by id anywhere in the process (any runtime/site)."""
    with _registry_lock:
        return _by_task_id.get(task_id)


class Task:
    """A runtime task (thread) known to the verifier.

    Tasks are created through :meth:`ArmusRuntime.spawn` (or adopted from
    foreign threads by :func:`current_task`); user code normally only
    ``join``\\ s them.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(
        self,
        runtime: "ArmusRuntime",
        fn: Optional[Callable[..., Any]] = None,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        name: Optional[str] = None,
    ) -> None:
        with Task._counter_lock:
            Task._counter += 1
            seq = Task._counter
        self.task_id = f"T{seq}"
        self.name = name or self.task_id
        with _registry_lock:
            _by_task_id[self.task_id] = self
        self.runtime = runtime
        #: Adopted tasks (foreign threads) have no body; unlike spawned
        #: tasks they re-home to whichever runtime they interact with.
        self.is_adopted = fn is None
        self._fn = fn
        self._args = args
        self._kwargs = kwargs or {}
        # Synchronizers this task is a member of (the resource-mapper
        # input); maintained by the synchronizers themselves.
        self._registered_lock = threading.Lock()
        self._registered: Dict[object, None] = {}
        # Cancellation (deadlock abort) machinery.
        self._cancelled = threading.Event()
        self._cancel_report: Optional[DeadlockReport] = None
        # Completion.
        self._done = threading.Event()
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # -- registration bookkeeping (called by synchronizers) ----------------
    def _add_registration(self, sync: object) -> None:
        with self._registered_lock:
            self._registered[sync] = None

    def _remove_registration(self, sync: object) -> None:
        with self._registered_lock:
            self._registered.pop(sync, None)

    def registered_synchronizers(self) -> list:
        with self._registered_lock:
            return list(self._registered)

    # -- cancellation ---------------------------------------------------------
    def cancel(self, report: DeadlockReport) -> None:
        """Mark the task for abortion; its next blocking poll raises."""
        self._cancel_report = report
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def check_cancelled(self) -> None:
        """Raise :class:`DeadlockDetectedError` if the task was cancelled.

        Delivery is one-shot: the flag clears as the error is raised, so a
        task (typically the adopted main thread) that catches the report
        can keep using the runtime afterwards.
        """
        if self._cancelled.is_set():
            report = self._cancel_report
            assert report is not None
            self._cancelled.clear()
            self._cancel_report = None
            raise DeadlockDetectedError(report)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "Task":
        if self._fn is None:
            raise RuntimeError("cannot start an adopted task")
        if self._started:
            raise RuntimeError(f"task {self.name} already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    @property
    def started(self) -> bool:
        return self._started

    def _run(self) -> None:
        ident = threading.get_ident()
        _bind(ident, self)
        try:
            self.result = self._fn(*self._args, **self._kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via join
            self.exception = exc
        finally:
            try:
                self._teardown()
            finally:
                _unbind(ident, self)
                self._done.set()

    def _teardown(self) -> None:
        """Leave every synchronizer (X10/HJ terminate-and-deregister)."""
        for sync in self.registered_synchronizers():
            leave = getattr(sync, "_leave_on_termination", None)
            if leave is not None:
                try:
                    leave(self)
                except Exception:  # pragma: no cover - best effort
                    pass
        # Whatever happened, this task is no longer blocked.
        self.runtime.checker.clear(self.task_id)

    def join(self, timeout: Optional[float] = None) -> Any:
        """Wait for completion; re-raise the task's failure, if any.

        Deadlock errors raised inside the task propagate as-is (they are
        the verification outcome the caller wants to observe); other
        failures are wrapped in :class:`TaskFailedError`.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"task {self.name} still running")
        return self._resolve_join()

    def _resolve_join(self) -> Any:
        """The join outcome of a finished task (shared with async joins)."""
        if self.exception is not None:
            if isinstance(self.exception, DeadlockError):
                raise self.exception
            raise TaskFailedError(self, self.exception) from self.exception
        return self.result

    def done(self) -> bool:
        return self._done.is_set()

    def __repr__(self) -> str:
        state = "done" if self.done() else ("running" if self._started else "new")
        return f"<Task {self.name} ({state})>"


def current_task(adopting_runtime: Optional["ArmusRuntime"] = None) -> Task:
    """The :class:`Task` of the calling thread.

    Foreign threads (e.g. the main thread, pytest workers) are adopted on
    first use — into ``adopting_runtime`` when given, else the default
    runtime — mirroring how JArmus treats the JVM main thread.
    """
    for resolver in _task_resolvers:
        task = resolver()
        if task is not None:
            return task
    ident = threading.get_ident()
    task = _lookup_ident(ident)
    if task is not None:
        # An adopted task follows usage: when the main thread starts
        # working with a fresh runtime (each test/benchmark builds its
        # own), its verification traffic must flow there, not to the
        # runtime that first adopted it.
        if (
            task.is_adopted
            and adopting_runtime is not None
            and task.runtime is not adopting_runtime
        ):
            task.runtime = adopting_runtime
        return task
    if adopting_runtime is None:
        from repro.runtime.verifier import get_default_runtime

        adopting_runtime = get_default_runtime()
    task = Task(adopting_runtime, name=f"adopted-{ident}")
    task._started = True
    _bind(ident, task)
    return task
