"""The runtime verifier: configuration, task registry, observer hooks.

:class:`ArmusRuntime` ties the core checker to a population of tasks and
instrumented synchronizers.  It plays the role of the Armus *tool*
configuration (Section 5): a verification mode (off / detection /
avoidance), a graph-model selection (fixed WFG, fixed SG, adaptive), and
the check cadence.  Synchronizers call two hooks:

* :meth:`ArmusRuntime.block_entry` — the task observer's "task is about
  to block" notification, carrying the event-based blocked status.  In
  avoidance mode this runs a synchronous check and reports a would-be
  deadlock *before* the task blocks; in detection mode it merely
  publishes the status for the periodic monitor.
* :meth:`ArmusRuntime.block_exit` — the task unblocked (or gave up).

On a detection hit the runtime cancels every task in the report, which
makes their blocking operations raise
:class:`~repro.core.report.DeadlockDetectedError` — deadlocked programs
terminate with a report instead of hanging.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.core.checker import DeadlockChecker
from repro.core.dependency import ResourceDependency
from repro.core.events import BlockedStatus
from repro.core.incremental import IncrementalChecker
from repro.core.monitor import DetectionMonitor
from repro.core.report import DeadlockReport
from repro.core.selection import DEFAULT_THRESHOLD_FACTOR, GraphModel
from repro.runtime.tasks import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.recorder import TraceRecorder


class VerificationMode(enum.Enum):
    """Which verification strategy the runtime applies (Section 5)."""

    #: No verification: the uninstrumented baseline of the benchmarks.
    OFF = "off"
    #: Periodic checking by a dedicated monitor; reports existing deadlocks.
    DETECTION = "detection"
    #: Check before every block; raise instead of entering a deadlock.
    AVOIDANCE = "avoidance"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ArmusRuntime:
    """A verified task runtime.

    Parameters
    ----------
    mode:
        Verification mode; :attr:`VerificationMode.OFF` disables checking
        (hooks become cheap no-ops — the unchecked baseline).
    model:
        Graph-model selection handed to the checker.
    interval_s:
        Detection period (the paper: 100 ms local, 200 ms distributed).
    poll_s:
        Cancellation poll granularity of instrumented waits.
    cancel_on_detect:
        Whether a detection hit cancels the deadlocked tasks (keeps test
        processes alive; disable to only collect reports).
    dependency:
        Optional shared blocked-status store (distributed sites share one
        global store through this hook).
    recorder:
        Optional :class:`~repro.trace.recorder.TraceRecorder`; when set,
        every block/unblock (and the synchronizers' register/advance
        context) is appended to it — recording works in *any* mode,
        including OFF (record cheaply now, replay offline later).
    incremental:
        Use the delta-maintained
        :class:`~repro.core.incremental.IncrementalChecker`: the
        observer hooks (``block_entry``/``block_exit``, whichever driver
        — thread or asyncio — invoked them) become graph deltas, the
        detection monitor's periodic poll stops snapshotting (O(1) while
        no deadlock exists), and avoidance checks only pay for a graph
        build when the tentative block actually closes a cycle.
        Reports are identical to the classic checker's.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When an
        enabled registry is passed, the checker's instruments bind into
        it and the runtime adds its own: a live blocked-task gauge and
        block/unblock/report counters — the surface
        ``python -m repro.obs serve`` exposes.  Defaults to the no-op
        registry: zero telemetry, zero overhead beyond a few no-op
        calls per hook.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When an enabled
        tracer is passed, every observer hook opens/closes a
        ``task.blocked`` span on the task's track — the runtime end of
        the causal chain runtime → publish → store → check → report.
        Defaults to the no-op tracer.
    """

    def __init__(
        self,
        mode: VerificationMode = VerificationMode.OFF,
        model: GraphModel = GraphModel.AUTO,
        interval_s: float = 0.1,
        poll_s: float = 0.005,
        cancel_on_detect: bool = True,
        threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
        dependency: Optional[ResourceDependency] = None,
        recorder: Optional["TraceRecorder"] = None,
        incremental: bool = False,
        metrics=None,
        tracer=None,
    ) -> None:
        self.mode = mode
        self.poll_s = poll_s
        self.cancel_on_detect = cancel_on_detect
        self.recorder = recorder
        if metrics is None:
            from repro.obs.registry import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self.metrics = metrics
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        checker_cls = IncrementalChecker if incremental else DeadlockChecker
        self.checker = checker_cls(
            model=model, threshold_factor=threshold_factor,
            dependency=dependency, metrics=metrics,
        )
        self.monitor = DetectionMonitor(
            self.checker, interval_s=interval_s,
            on_deadlock=self._on_deadlock, metrics=metrics,
        )
        self.reports: List[DeadlockReport] = []
        self._reports_lock = threading.Lock()
        self._started = False
        self._m_blocked = metrics.gauge(
            "repro_blocked_tasks",
            "Tasks currently published as blocked.",
            volatile=True,
        )
        self._m_blocks = metrics.counter(
            "repro_block_events_total",
            "Observer hook invocations, by direction.",
            labels=("hook",), volatile=True,
        )
        self._m_block_entry = self._m_blocks.labels(hook="entry")
        self._m_block_exit = self._m_blocks.labels(hook="exit")
        self._m_reports = metrics.counter(
            "repro_deadlock_reports_total",
            "Deadlock reports collected by the runtime, by origin.",
            labels=("origin",), volatile=True,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ArmusRuntime":
        """Start background machinery (the detection monitor, if needed)."""
        if self._started:
            return self
        self._started = True
        if self.mode is VerificationMode.DETECTION:
            self.monitor.start()
        return self

    def stop(self) -> None:
        self.monitor.stop()
        self._started = False

    def __enter__(self) -> "ArmusRuntime":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # task registry
    # ------------------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        register: Iterable[object] = (),
        **kwargs: Any,
    ) -> Task:
        """Create and start a task; optionally register it with
        synchronizers *before* it starts (X10's ``async clocked(...)``).

        Registration-before-start inherits the spawning task's phase and
        guarantees a child can never miss the phase it was spawned in —
        the race Section 2.2 warns about when the parent is simply not
        registered.
        """
        task = Task(self, fn, args, kwargs, name=name)
        self.adopt_spawn_context(task, self.current_task(), register)
        task.start()
        return task

    def adopt_spawn_context(
        self, task: Task, parent: Task, register: Iterable[object] = ()
    ) -> None:
        """Inherit ``parent``'s spawn context into a not-yet-started task.

        X10 nested-finish semantics: children inherit the spawning
        task's enclosing finish scopes and register with each of their
        join barriers (Section 2.2); spawn-time registrations follow.
        Shared by thread spawns and :func:`repro.aio.aio_spawn`.
        """
        enclosing = tuple(getattr(parent, "_finish_scopes", ()))
        for scope in enclosing:
            scope._adopt_spawn(task, parent)
        task._finish_scopes = list(enclosing)  # type: ignore[attr-defined]
        for sync in register:
            register_child = getattr(sync, "register_child")
            register_child(task, parent)

    def current_task(self) -> Task:
        """The calling thread's task, adopting foreign threads on demand."""
        from repro.runtime.tasks import current_task

        return current_task(adopting_runtime=self)

    def task_by_id(self, task_id: str) -> Optional[Task]:
        """Find a task by id; the directory is process-global, so tasks of
        other sites are visible too (cancellation across sites)."""
        from repro.runtime.tasks import lookup_task

        return lookup_task(task_id)

    # ------------------------------------------------------------------
    # resource ids
    # ------------------------------------------------------------------
    def new_resource_id(self, label: str) -> str:
        """A unique, readable id for a synchronizer (the resource mapper).

        Ids are unique process-wide: a synchronizer shared by several
        sites (a distributed clock) must name the same resource in every
        site's constraints.
        """
        with _rid_lock:
            global _rid_counter
            _rid_counter += 1
            return f"{label}#{_rid_counter}"

    # ------------------------------------------------------------------
    # observer hooks (called by synchronizers around blocking waits)
    # ------------------------------------------------------------------
    def block_entry(
        self, task: Task, status: BlockedStatus
    ) -> Optional[DeadlockReport]:
        """Notify that ``task`` is about to block with ``status``.

        Returns ``None`` when the task may proceed to wait (the status is
        now published); returns the report when blocking would complete a
        deadlock (avoidance mode) — the caller must *not* block and should
        raise :class:`DeadlockAvoidedError` after any cleanup
        (deregistration) it performs.
        """
        if self.recorder is not None:
            self.recorder.record_block(task.task_id, status)
        if self.tracer.enabled:
            self.tracer.begin(
                "task.blocked", f"task:{task.task_id}", key=task.task_id,
                waits=" ".join(sorted(str(e) for e in status.waits)),
            )
        if self.mode is VerificationMode.OFF:
            return None
        self._m_block_entry.inc()
        if self.mode is VerificationMode.DETECTION:
            self.checker.set_blocked(task.task_id, status)
            self._sync_blocked_gauge()
            return None
        report, _stamped = self.checker.check_before_block(task.task_id, status)
        self._sync_blocked_gauge()
        if report is not None:
            self._m_reports.inc(origin="avoidance")
            with self._reports_lock:
                self.reports.append(report)
        return report

    def block_exit(self, task: Task) -> None:
        """Notify that ``task`` stopped waiting (success, error or abort)."""
        if self.recorder is not None:
            self.recorder.record_unblock(task.task_id)
        if self.tracer.enabled:
            self.tracer.end(task.task_id)
        if self.mode is VerificationMode.OFF:
            return
        self._m_block_exit.inc()
        self.checker.clear(task.task_id)
        self._sync_blocked_gauge()

    def _sync_blocked_gauge(self) -> None:
        """Publish the authoritative blocked count (drift-free under
        republication, unlike inc/dec pairs)."""
        if self.metrics.enabled:
            self._m_blocked.set(self.checker.dependency.blocked_count())

    # ------------------------------------------------------------------
    # trace-context hooks (no verification effect; recording only)
    # ------------------------------------------------------------------
    def notify_register(self, task: Task, resource_id: str, phase: int) -> None:
        """Record that ``task`` joined ``resource_id`` at ``phase``."""
        if self.recorder is not None:
            self.recorder.record_register(task.task_id, resource_id, phase)

    def notify_advance(self, task: Task, resource_id: str, phase: int) -> None:
        """Record that ``task`` arrived at ``resource_id``, reaching
        ``phase``."""
        if self.recorder is not None:
            self.recorder.record_advance(task.task_id, resource_id, phase)

    # ------------------------------------------------------------------
    # detection callback
    # ------------------------------------------------------------------
    def _on_deadlock(self, report: DeadlockReport) -> None:
        self._m_reports.inc(origin="detection")
        with self._reports_lock:
            self.reports.append(report)
        if not self.cancel_on_detect:
            return
        for task_id in report.tasks:
            task = self.task_by_id(task_id)
            if task is not None:
                task.cancel(report)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Checker accounting (edge counts, models used, check times)."""
        return self.checker.stats


_rid_lock = threading.Lock()
_rid_counter = 0

_default_lock = threading.Lock()
_default_runtime: Optional[ArmusRuntime] = None


def get_default_runtime() -> ArmusRuntime:
    """The process-wide runtime used when none is passed explicitly."""
    global _default_runtime
    with _default_lock:
        if _default_runtime is None:
            _default_runtime = ArmusRuntime()
        return _default_runtime


def set_default_runtime(runtime: ArmusRuntime) -> None:
    global _default_runtime
    with _default_lock:
        _default_runtime = runtime
