"""repro.trace — event-trace capture, offline replay, scenario corpora.

The trace subsystem makes the verification layer's input durable: a
*trace* is the recorded stream of blocked-status events (Section 4.1's
event-based representation) that any live run — runtime workloads,
PL interpreter programs, distributed sites — produces through its
observation hooks.  Once on disk, a trace can be replayed through the
:class:`~repro.core.checker.DeadlockChecker` deterministically, under
any graph model, at batch throughput; and the corpus generator writes
parameterised scenario traces (cycle length × fan-out × site count
grids) without running a single thread.

Typical use::

    from repro.trace import TraceRecorder, replay, load_trace
    rec = TraceRecorder()
    runtime = ArmusRuntime(mode=VerificationMode.DETECTION, recorder=rec)
    ...                         # run the program
    rec.save("run.trace")       # persist (binary codec by extension)
    result = replay("run.trace")  # offline, deterministic
    assert result.reports == runtime.reports

For scale, the subsystem streams and shards: :func:`iter_load` replays
files of any length in O(frame) memory, :class:`StreamingRecorder`
spills records to disk as they happen, and :func:`replay_corpus` fans a
trace corpus out over worker processes with deterministic, byte-stable
merged output (see ``repro.trace.stream`` / ``repro.trace.parallel``).

Command line: ``python -m repro.trace {record,replay,gen,stats}``.
"""

from repro.trace.events import (
    Trace,
    TraceFormatError,
    TraceHeader,
    TraceRecord,
    RecordKind,
    TRACE_VERSION,
    report_from_obj,
    report_to_obj,
)
from repro.trace.codec import (
    BinaryCodec,
    JsonlCodec,
    load_trace,
    save_trace,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayEngine, ReplayResult, replay
from repro.trace.stream import StreamedTrace, StreamingRecorder, iter_load
from repro.trace.parallel import (
    CorpusEntry,
    CorpusReplayResult,
    discover_traces,
    replay_corpus,
)
from repro.trace.corpus import (
    AioSpec,
    ChurnSpec,
    ScenarioSpec,
    aio_grid_specs,
    aio_trace,
    build_trace,
    churn_grid_specs,
    churn_trace,
    generate_corpus,
    grid_specs,
    scenario_trace,
    verify_corpus,
    write_corpus,
)
from repro.trace.normalize import canonical_trace

__all__ = [
    "Trace",
    "TraceHeader",
    "TraceRecord",
    "TraceFormatError",
    "RecordKind",
    "TRACE_VERSION",
    "report_to_obj",
    "report_from_obj",
    "JsonlCodec",
    "BinaryCodec",
    "load_trace",
    "save_trace",
    "TraceRecorder",
    "StreamingRecorder",
    "StreamedTrace",
    "iter_load",
    "ReplayEngine",
    "ReplayResult",
    "replay",
    "replay_corpus",
    "CorpusEntry",
    "CorpusReplayResult",
    "discover_traces",
    "ScenarioSpec",
    "ChurnSpec",
    "AioSpec",
    "scenario_trace",
    "churn_trace",
    "aio_trace",
    "build_trace",
    "grid_specs",
    "churn_grid_specs",
    "aio_grid_specs",
    "generate_corpus",
    "write_corpus",
    "verify_corpus",
    "canonical_trace",
]
