"""The ``python -m repro.trace`` command line.

Six subcommands cover the record → persist → analyse → explain loop:

* ``record`` — run a built-in scenario under a recording runtime and
  save the trace (``--scenario crossed|averaging|barrier``;
  ``--stream`` spills records to disk as they happen instead of
  buffering the run);
* ``replay`` — replay one trace file, several, or whole corpus
  directories through the checker.  ``--parallel N`` fans a corpus out
  over N worker processes; ``--stream`` reads each file in O(frame)
  memory; ``--shard-components`` checks connected components
  independently; ``--incremental`` selects the delta-maintained engine
  (same reports, O(N) instead of O(N²) at ``check_every=1``).  Corpus
  output on stdout is byte-identical for any ``--parallel`` value and
  either engine (timing goes to stderr, buffered and emitted once after
  the merge) — CI diffs serial against parallel and incremental output
  to pin it;
* ``gen`` — write a scenario corpus over parameter grids
  (``--families cycle,churn,aio``; the aio family generates the
  asyncio backend's thousand-task shapes, ``--task-counts`` scales
  them); ``--smoke`` verifies a small grid in memory (``--parallel N``
  fans the verification out) — the CI sanity job;
* ``stats`` — summarise a trace file (header, record-kind counts,
  population);
* ``explain`` — deadlock provenance: replay trace file(s) or corpus
  directories and, for every report, print which trace records put
  each cycle edge's statuses into the analysed view, the detection lag
  (record ordinals from cycle-closing record to reporting check), and
  a text waterfall of the contributing records.  Output is a pure
  function of the trace bytes — byte-identical across hash seeds,
  ``--parallel`` values and both engines.  ``--chrome OUT.json``
  additionally writes a Chrome trace-event document (load it in
  Perfetto or ``about:tracing``; single trace input only);
* ``predict`` — sound predictive deadlock detection over ok-traces
  (see :mod:`repro.predict`): build a happens-before model, enumerate
  near-miss candidates, construct a concrete reordered witness trace
  per candidate and report only candidates the existing engine
  confirms by replaying the witness (classic *and* incremental).
  ``--emit-witness DIR`` saves each confirmed witness as an ordinary
  replayable trace file; ``--parallel N`` fans a corpus out; stdout is
  byte-identical across worker counts and hash seeds (same pin as
  replay/explain).

Examples::

    python -m repro.trace record --scenario crossed --out crossed.trace
    python -m repro.trace replay crossed.trace --mode detection
    python -m repro.trace replay corpus/ --parallel 4 --stream
    python -m repro.trace gen --out corpus/ --cycle-lens 2,3,4
    python -m repro.trace gen --smoke --parallel 2
    python -m repro.trace stats corpus/cycle-L3-F2-S1-R2-dl.jsonl
    python -m repro.trace explain crossed.trace --report 1
    python -m repro.trace explain corpus/ --parallel 4
    python -m repro.trace predict corpus/ --parallel 4
    python -m repro.trace predict near-miss.jsonl --emit-witness out/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.core.selection import GraphModel
from repro.trace.codec import load_trace
from repro.trace.corpus import (
    DEFAULT_AIO_GRID,
    DEFAULT_BOUNDED_GRID,
    DEFAULT_CHURN_GRID,
    DEFAULT_GRID,
    DEFAULT_KNOT_GRID,
    DEFAULT_NEARMISS_GRID,
    SMOKE_AIO_GRID,
    SMOKE_BOUNDED_GRID,
    SMOKE_CHURN_GRID,
    SMOKE_GRID,
    SMOKE_KNOT_GRID,
    SMOKE_NEARMISS_GRID,
    aio_grid_specs,
    bounded_grid_specs,
    churn_grid_specs,
    grid_specs,
    knot_grid_specs,
    nearmiss_grid_specs,
    verify_corpus,
    write_corpus,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import replay as run_replay

#: Scenario families ``gen`` knows how to write.
FAMILIES = ("cycle", "churn", "aio", "bounded", "knot", "nearmiss")


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


# ---------------------------------------------------------------------------
# record: built-in recordable scenarios
# ---------------------------------------------------------------------------
def _record_crossed(runtime) -> None:
    """Two tasks in a crossed two-phaser deadlock, blocked in sequence."""
    import threading

    from repro.core.report import DeadlockError
    from repro.runtime.phaser import Phaser

    ph1 = Phaser(runtime, register_self=False, name="p")
    ph2 = Phaser(runtime, register_self=False, name="q")
    # Workers hold at the gate until everyone is registered — without
    # it the first task can sail through before the second exists.
    gate = threading.Event()

    def first() -> None:
        gate.wait(10)
        ph1.arrive_and_await_advance()

    def second() -> None:
        gate.wait(10)
        # Serialise the two blocks: t2 enters its wait only after t1 is
        # published, so the recorded order is deterministic.
        _await_blocked(runtime, 1)
        ph2.arrive_and_await_advance()

    t1 = runtime.spawn(first, register=[ph1, ph2], name="t1")
    t2 = runtime.spawn(second, register=[ph1, ph2], name="t2")
    gate.set()
    _await_blocked(runtime, 2)
    if not runtime.reports:
        runtime.monitor.poll_once()
    for task in (t1, t2):
        try:
            task.join(10)
        except DeadlockError:
            pass
        except Exception:
            pass


def _record_averaging(runtime) -> None:
    """The paper's running example (Figures 1-2), bug included."""
    from repro.core.report import DeadlockError
    from repro.runtime.clock import Clock
    from repro.runtime.phaser import Phaser

    c = Clock(runtime)
    b = Phaser(runtime, register_self=True, name="join")

    def worker() -> None:
        c.advance()
        c.drop()
        b.arrive_and_deregister()

    for i in range(3):
        runtime.spawn(worker, register=[c, b], name=f"w{i}")
    try:
        b.arrive_and_await_advance()
    except DeadlockError:
        pass


def _record_barrier(runtime, n_tasks: int = 4, rounds: int = 3) -> None:
    """A deadlock-free SPMD barrier loop (records a clean trace)."""
    import threading

    from repro.runtime.phaser import Phaser

    ph = Phaser(runtime, register_self=False, name="bar")
    gate = threading.Event()

    def worker() -> None:
        gate.wait(10)
        for _ in range(rounds):
            ph.arrive_and_await_advance()

    tasks = [
        runtime.spawn(worker, register=[ph], name=f"w{i}") for i in range(n_tasks)
    ]
    gate.set()
    for task in tasks:
        task.join(30)


def _await_blocked(runtime, count: int, timeout_s: float = 10.0) -> None:
    """Poll until ``count`` tasks are blocked — or a report already
    resolved the deadlock (detection can win the race)."""
    import time

    deadline = time.monotonic() + timeout_s
    while runtime.checker.dependency.blocked_count() < count:
        if runtime.reports:
            return
        if time.monotonic() > deadline:
            raise TimeoutError(f"never saw {count} blocked task(s)")
        time.sleep(0.002)


SCENARIOS = {
    "crossed": _record_crossed,
    "averaging": _record_averaging,
    "barrier": _record_barrier,
}


def _emit_metrics(registry, args: argparse.Namespace, volatile: bool) -> None:
    """Write a metrics snapshot where ``--metrics-json``/``--metrics-stdout``
    asked.  Replay passes ``volatile=False`` — the deterministic slice,
    byte-identical across ``--parallel`` values; record passes ``True``
    (live telemetry includes the wall-clock instruments)."""
    if not (args.metrics_json or args.metrics_stdout):
        return
    from repro.obs.export import to_json

    text = to_json(registry, volatile=volatile)
    if args.metrics_json:
        pathlib.Path(args.metrics_json).write_text(text, encoding="utf-8")
    if args.metrics_stdout:
        sys.stdout.write(text)


def cmd_record(args: argparse.Namespace) -> int:
    """Run ``--scenario`` under a recording runtime; save ``--out``."""
    from repro.runtime.verifier import ArmusRuntime, VerificationMode

    if args.scenario != "barrier" and args.mode == "off":
        print("record: deadlocking scenarios need --mode detection|avoidance",
              file=sys.stderr)
        return 2
    meta = {"scenario": args.scenario, "mode": args.mode}
    if args.stream:
        from repro.trace.stream import StreamingRecorder

        recorder = StreamingRecorder(args.out, meta=meta)
    else:
        recorder = TraceRecorder(meta=meta)
    metrics = None
    if args.metrics_json or args.metrics_stdout:
        from repro.obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
    runtime = ArmusRuntime(
        mode=VerificationMode(args.mode),
        interval_s=0.02,
        poll_s=0.002,
        recorder=recorder,
        metrics=metrics,
    ).start()
    try:
        SCENARIOS[args.scenario](runtime)
    finally:
        runtime.stop()
    path = recorder.save(args.out)
    print(f"recorded {len(recorder)} event(s) from '{args.scenario}' "
          f"({args.mode}) -> {path}")
    for report in runtime.reports:
        print(report.describe())
    if metrics is not None:
        _emit_metrics(metrics, args, volatile=True)
    return 0


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------
def cmd_replay(args: argparse.Namespace) -> int:
    """Replay trace file(s)/director(ies); print reports and throughput."""
    from repro.trace.parallel import discover_traces

    paths = discover_traces(args.trace)
    if not paths:
        print(f"replay: no trace files under {args.trace}", file=sys.stderr)
        return 2
    # Corpus mode is a property of the *input* (a directory or several
    # files), never of --parallel: the same invocation must print the
    # same stdout whatever the worker count, even for a one-file corpus.
    corpus_input = len(paths) > 1 or any(
        pathlib.Path(src).is_dir() for src in args.trace
    )
    if args.profile is None:
        if not corpus_input:
            return _replay_single(pathlib.Path(paths[0]), args)
        return _replay_corpus(paths, args)
    # --profile wraps the whole replay (load + engine + reporting) so
    # the stats show where the wall-clock actually goes; the stats file
    # is written even when replay fails, so slow *failing* runs can be
    # profiled too.
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        if not corpus_input:
            return _replay_single(pathlib.Path(paths[0]), args)
        return _replay_corpus(paths, args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"profile: wrote {args.profile} "
              "(inspect with `python -m pstats`)", file=sys.stderr)


def _replay_single(path: pathlib.Path, args: argparse.Namespace) -> int:
    """One file, in process — the PR-1 output format, plus --stream."""
    if args.stream:
        from repro.trace.stream import iter_load

        source = iter_load(path)
        meta = dict(source.header.meta)
        described = f"streamed, meta={meta}"
    else:
        source = load_trace(path)
        meta = dict(source.header.meta)
        described = f"{len(source)} records, meta={meta}"
    result = run_replay(
        source,
        mode=args.mode,
        model=GraphModel(args.model),
        check_every=args.check_every,
        shard_components=args.shard_components,
        incremental=args.incremental,
    )
    print(f"trace: {path} ({described})")
    print(
        f"replayed {result.records_processed} record(s), "
        f"{result.checks_run} check(s) in {result.duration_s * 1e3:.1f} ms "
        f"({result.events_per_sec:,.0f} events/sec, mode={result.mode})"
    )
    if not result.reports:
        print("no deadlock found")
    for report in result.reports:
        print(report.describe())
    _emit_metrics(result.metrics, args, volatile=False)
    expected = meta.get("expect_deadlock")
    if expected is not None and bool(result.reports) != bool(expected):
        print(f"VERDICT MISMATCH: trace expects deadlock={expected}",
              file=sys.stderr)
        return 1
    return 0


def _replay_corpus(paths, args: argparse.Namespace) -> int:
    """Corpus mode: deterministic stdout (diffable across --parallel
    values), timing on stderr where nondeterminism belongs."""
    from repro.trace.parallel import replay_corpus

    result = replay_corpus(
        paths,
        mode=args.mode,
        model=GraphModel(args.model),
        check_every=args.check_every,
        shard_components=args.shard_components,
        stream=args.stream,
        incremental=args.incremental,
        processes=args.parallel,
    )
    print(f"corpus: {len(result.entries)} trace(s), mode={result.mode}")
    for entry in result.entries:
        print(
            f"--- {entry.path.name}: {entry.result.records_processed} record(s), "
            f"{entry.result.checks_run} check(s), "
            f"{len(entry.result.reports)} report(s)"
        )
        for report in entry.result.reports:
            print(report.describe())
        if not entry.verdict_ok:
            print(
                f"VERDICT MISMATCH: {entry.path.name} expects "
                f"deadlock={entry.expected}",
                file=sys.stderr,
            )
    deadlocked = sum(1 for e in result.entries if e.result.deadlocked)
    print(
        f"verdicts: {deadlocked}/{len(result.entries)} deadlocked, "
        f"{len(result.mismatches)} mismatch(es)"
    )
    _emit_metrics(result.metrics, args, volatile=False)
    # Timing goes to stderr — buffered into one write, emitted only
    # after the merge, so the per-file lines always come out whole, in
    # work-list order, regardless of how many worker processes shared
    # the stream.  (Interleaving with worker stderr mid-line is what
    # made --parallel timing undiffable in CI.)
    timing = [
        f"timing: {entry.path.name}: "
        f"{entry.result.duration_s * 1e3:.1f} ms "
        f"({entry.result.events_per_sec:,.0f} events/sec)"
        for entry in result.entries
    ]
    timing.append(
        f"replayed {result.records_processed} record(s), "
        f"{result.checks_run} check(s) in {result.duration_s * 1e3:.1f} ms "
        f"({result.events_per_sec:,.0f} events/sec, "
        f"processes={result.processes})"
    )
    sys.stderr.write("\n".join(timing) + "\n")
    return 1 if result.mismatches else 0


# ---------------------------------------------------------------------------
# gen
# ---------------------------------------------------------------------------
def _parse_families(text: str) -> List[str]:
    families = [part.strip() for part in text.split(",") if part.strip()]
    for family in families:
        if family not in FAMILIES:
            raise ValueError(f"unknown family {family!r} (have: {FAMILIES})")
    return families


def cmd_gen(args: argparse.Namespace) -> int:
    """Generate a corpus (or run the --smoke verification grid)."""
    families = _parse_families(args.families)
    if args.smoke:
        specs: List = []
        if "cycle" in families:
            specs.extend(
                grid_specs(
                    SMOKE_GRID["cycle_lens"],
                    SMOKE_GRID["fan_outs"],
                    SMOKE_GRID["site_counts"],
                    SMOKE_GRID["rounds"],
                    SMOKE_GRID["verdicts"],
                )
            )
        if "churn" in families:
            specs.extend(
                churn_grid_specs(
                    SMOKE_CHURN_GRID["pools"],
                    SMOKE_CHURN_GRID["windows"],
                    SMOKE_CHURN_GRID["rounds"],
                    SMOKE_CHURN_GRID["site_counts"],
                    SMOKE_CHURN_GRID["verdicts"],
                )
            )
        if "aio" in families:
            specs.extend(
                aio_grid_specs(
                    SMOKE_AIO_GRID["task_counts"],
                    SMOKE_AIO_GRID["shapes"],
                    SMOKE_AIO_GRID["verdicts"],
                )
            )
        if "bounded" in families:
            specs.extend(
                bounded_grid_specs(
                    SMOKE_BOUNDED_GRID["stage_counts"],
                    SMOKE_BOUNDED_GRID["bounds"],
                    SMOKE_BOUNDED_GRID["rounds"],
                    SMOKE_BOUNDED_GRID["site_counts"],
                    SMOKE_BOUNDED_GRID["verdicts"],
                )
            )
        if "knot" in families:
            specs.extend(
                knot_grid_specs(
                    SMOKE_KNOT_GRID["pair_counts"],
                    SMOKE_KNOT_GRID["rounds"],
                    SMOKE_KNOT_GRID["site_counts"],
                    SMOKE_KNOT_GRID["verdicts"],
                )
            )
        if "nearmiss" in families:
            specs.extend(
                nearmiss_grid_specs(
                    SMOKE_NEARMISS_GRID["chain_lens"],
                    SMOKE_NEARMISS_GRID["rounds"],
                    SMOKE_NEARMISS_GRID["site_counts"],
                    SMOKE_NEARMISS_GRID["realisable"],
                )
            )
        results = verify_corpus(specs, processes=args.parallel)
        bad = [spec for spec, ok in results if not ok]
        for spec, ok in results:
            print(f"{'ok  ' if ok else 'FAIL'} {spec.name}")
        print(f"smoke: {len(results) - len(bad)}/{len(results)} scenarios verified")
        return 1 if bad else 0
    if args.out is None:
        print("gen: --out DIR is required (or use --smoke)", file=sys.stderr)
        return 2
    specs = []
    if "cycle" in families:
        specs.extend(
            grid_specs(
                args.cycle_lens or DEFAULT_GRID["cycle_lens"],
                args.fan_outs or DEFAULT_GRID["fan_outs"],
                args.sites or DEFAULT_GRID["site_counts"],
                args.rounds or DEFAULT_GRID["rounds"],
                (True, False),
            )
        )
    if "churn" in families:
        specs.extend(
            churn_grid_specs(
                DEFAULT_CHURN_GRID["pools"],
                DEFAULT_CHURN_GRID["windows"],
                DEFAULT_CHURN_GRID["rounds"],
                args.sites or DEFAULT_CHURN_GRID["site_counts"],
                DEFAULT_CHURN_GRID["verdicts"],
            )
        )
    if "aio" in families:
        specs.extend(
            aio_grid_specs(
                args.task_counts or DEFAULT_AIO_GRID["task_counts"],
                DEFAULT_AIO_GRID["shapes"],
                DEFAULT_AIO_GRID["verdicts"],
            )
        )
    if "bounded" in families:
        specs.extend(
            bounded_grid_specs(
                DEFAULT_BOUNDED_GRID["stage_counts"],
                DEFAULT_BOUNDED_GRID["bounds"],
                args.rounds or DEFAULT_BOUNDED_GRID["rounds"],
                args.sites or DEFAULT_BOUNDED_GRID["site_counts"],
                DEFAULT_BOUNDED_GRID["verdicts"],
            )
        )
    if "knot" in families:
        specs.extend(
            knot_grid_specs(
                DEFAULT_KNOT_GRID["pair_counts"],
                args.rounds or DEFAULT_KNOT_GRID["rounds"],
                args.sites or DEFAULT_KNOT_GRID["site_counts"],
                DEFAULT_KNOT_GRID["verdicts"],
            )
        )
    if "nearmiss" in families:
        specs.extend(
            nearmiss_grid_specs(
                args.cycle_lens or DEFAULT_NEARMISS_GRID["chain_lens"],
                args.rounds or DEFAULT_NEARMISS_GRID["rounds"],
                args.sites or DEFAULT_NEARMISS_GRID["site_counts"],
                DEFAULT_NEARMISS_GRID["realisable"],
            )
        )
    codecs = ("jsonl", "binary") if args.codec == "both" else (args.codec,)
    paths = write_corpus(args.out, specs, codecs=codecs)
    total = sum(p.stat().st_size for p in paths)
    print(
        f"wrote {len(paths)} trace file(s) for {len(specs)} scenario(s) "
        f"to {args.out} ({total / 1024:.1f} KiB)"
    )
    return 0


# ---------------------------------------------------------------------------
# explain
# ---------------------------------------------------------------------------
def _select_reports(reports, wanted: Optional[int], context: str) -> List:
    """Apply ``--report N`` (1-based); raises ValueError when absent."""
    if wanted is None:
        return list(reports)
    if not 1 <= wanted <= len(reports):
        raise ValueError(
            f"{context} has {len(reports)} report(s), no report #{wanted}"
        )
    return [reports[wanted - 1]]


def cmd_explain(args: argparse.Namespace) -> int:
    """Replay trace(s) and print each report's record provenance."""
    from repro.trace.parallel import discover_traces

    paths = discover_traces(args.trace)
    if not paths:
        print(f"explain: no trace files under {args.trace}", file=sys.stderr)
        return 2
    corpus_input = len(paths) > 1 or any(
        pathlib.Path(src).is_dir() for src in args.trace
    )
    if corpus_input:
        if args.chrome:
            print("explain: --chrome needs a single trace file",
                  file=sys.stderr)
            return 2
        return _explain_corpus(paths, args)
    return _explain_single(pathlib.Path(paths[0]), args)


def _explain_single(path: pathlib.Path, args: argparse.Namespace) -> int:
    from repro.obs.tracing import render_report_provenance

    trace = load_trace(path)
    result = run_replay(
        trace,
        mode=args.mode,
        model=GraphModel(args.model),
        check_every=args.check_every,
        shard_components=args.shard_components,
        incremental=args.incremental,
    )
    print(f"trace: {path} ({result.records_processed} record(s), "
          f"{len(result.reports)} report(s))")
    reports = _select_reports(result.reports, args.report, str(path))
    offset = 1 if args.report is None else args.report
    if not reports:
        print("no deadlock found")
    for i, report in enumerate(reports, offset):
        print(render_report_provenance(report, i))
    if args.chrome:
        from repro.obs.tracing import chrome_trace_from_records, render_chrome_json

        doc = chrome_trace_from_records(trace, result.reports)
        pathlib.Path(args.chrome).write_text(
            render_chrome_json(doc), encoding="utf-8"
        )
        print(f"chrome trace: {args.chrome} "
              f"({len(doc['traceEvents'])} event(s))", file=sys.stderr)
    return 0


def _explain_corpus(paths, args: argparse.Namespace) -> int:
    """Corpus provenance: one block per trace, work-list order, stdout
    byte-identical for any ``--parallel`` value (same pin as replay)."""
    from repro.obs.tracing import render_report_provenance
    from repro.trace.parallel import replay_corpus

    result = replay_corpus(
        paths,
        mode=args.mode,
        model=GraphModel(args.model),
        check_every=args.check_every,
        shard_components=args.shard_components,
        stream=args.stream,
        incremental=args.incremental,
        processes=args.parallel,
    )
    print(f"corpus: {len(result.entries)} trace(s), mode={result.mode}")
    explained = 0
    for entry in result.entries:
        all_reports = entry.result.reports
        if args.report is None:
            reports, offset = list(all_reports), 1
        elif 1 <= args.report <= len(all_reports):
            reports, offset = [all_reports[args.report - 1]], args.report
        else:  # a corpus member without report #N is simply skipped
            reports, offset = [], 1
        print(f"--- {entry.path.name}: {len(all_reports)} report(s)")
        for i, report in enumerate(reports, offset):
            print(render_report_provenance(report, i))
            explained += 1
    deadlocked = sum(1 for e in result.entries if e.result.deadlocked)
    print(f"explained {explained} report(s) across "
          f"{deadlocked}/{len(result.entries)} deadlocked trace(s)")
    return 0


# ---------------------------------------------------------------------------
# predict
# ---------------------------------------------------------------------------
def _emit_witnesses(out_dir, stem: str, predictions) -> List[pathlib.Path]:
    """Save each confirmed prediction's witness as an ordinary trace
    file — ``<stem>-predicted-<k>.jsonl``, replayable by ``replay``."""
    from repro.trace.codec import save_trace

    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for k, prediction in enumerate(predictions):
        path = out_dir / f"{stem}-predicted-{k}.jsonl"
        save_trace(prediction.witness, path, codec="jsonl")
        paths.append(path)
    return paths


def _print_predict_result(name: str, result, prefix: str = "") -> None:
    """The deterministic per-trace block both predict modes share."""
    from repro.predict.engine import MANIFEST, render_prediction

    line = (
        f"{prefix}{name}: {result.records} record(s), "
        f"outcome={result.outcome}, "
        f"{result.candidates_scanned} candidate(s), "
        f"{len(result.confirmed)} confirmed, {result.refuted} refuted"
    )
    if result.truncated:
        line += " [truncated: enumeration cap hit]"
    print(line)
    if result.outcome == MANIFEST:
        for report in result.manifest_reports:
            print(report.describe())
    for number, prediction in enumerate(result.confirmed, 1):
        print(render_prediction(prediction, number))


def cmd_predict(args: argparse.Namespace) -> int:
    """Predict deadlocks from ok-trace(s); print confirmed predictions."""
    from repro.trace.parallel import discover_traces

    paths = discover_traces(args.trace)
    if not paths:
        print(f"predict: no trace files under {args.trace}", file=sys.stderr)
        return 2
    corpus_input = len(paths) > 1 or any(
        pathlib.Path(src).is_dir() for src in args.trace
    )
    if corpus_input:
        return _predict_corpus(paths, args)
    return _predict_single(pathlib.Path(paths[0]), args)


def _predict_single(path: pathlib.Path, args: argparse.Namespace) -> int:
    from repro.predict.engine import predict_trace

    result = predict_trace(str(path), max_candidates=args.max_candidates)
    print(f"trace: {path}")
    _print_predict_result(path.name, result)
    if args.emit_witness and result.confirmed:
        written = _emit_witnesses(args.emit_witness, path.stem,
                                  result.confirmed)
        print(f"witnesses: {len(written)} file(s) -> {args.emit_witness}",
              file=sys.stderr)
    _emit_metrics(result.metrics, args, volatile=False)
    sys.stderr.write(
        f"predicted over {result.records} record(s) in "
        f"{result.duration_s * 1e3:.1f} ms\n"
    )
    return 0


def _predict_corpus(paths, args: argparse.Namespace) -> int:
    """Corpus prediction: deterministic stdout (diffable across
    ``--parallel`` values and hash seeds), timing on stderr."""
    from repro.predict.parallel import predict_corpus

    result = predict_corpus(
        paths,
        max_candidates=args.max_candidates,
        processes=args.parallel,
    )
    print(f"corpus: {len(result.entries)} trace(s)")
    written_total = 0
    for entry in result.entries:
        _print_predict_result(entry.path.name, entry.result, prefix="--- ")
        if args.emit_witness and entry.result.confirmed:
            written_total += len(_emit_witnesses(
                args.emit_witness, entry.path.stem, entry.result.confirmed
            ))
        if not entry.verdict_ok:
            print(
                f"PREDICTION MISMATCH: {entry.path.name} expects "
                f"prediction={entry.expected}",
                file=sys.stderr,
            )
    predicted = sum(1 for e in result.entries if e.result.confirmed)
    print(
        f"predictions: {result.confirmed} confirmed "
        f"({result.candidates_scanned} candidate(s) scanned, "
        f"{result.refuted} refuted) across {predicted}/"
        f"{len(result.entries)} trace(s), "
        f"{len(result.mismatches)} mismatch(es)"
    )
    _emit_metrics(result.metrics, args, volatile=False)
    timing = []
    if args.emit_witness:
        timing.append(
            f"witnesses: {written_total} file(s) -> {args.emit_witness}"
        )
    timing.append(
        f"predicted over {len(result.entries)} trace(s) in "
        f"{result.duration_s * 1e3:.1f} ms (processes={result.processes})"
    )
    sys.stderr.write("\n".join(timing) + "\n")
    return 1 if result.mismatches else 0


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------
def cmd_stats(args: argparse.Namespace) -> int:
    """Summarise one trace file."""
    from repro.trace.events import RecordKind

    path = pathlib.Path(args.trace)
    trace = load_trace(path)
    tasks = {r.task for r in trace if r.task is not None}
    phasers = {r.phaser for r in trace if r.phaser is not None}
    sites = {r.site for r in trace if r.site is not None}
    for rec in trace:
        if rec.status is not None:
            phasers.update(str(e.phaser) for e in rec.status.waits)
        if rec.kind is RecordKind.PUBLISH and rec.payload:
            tasks.update(rec.payload)
        if rec.kind is RecordKind.PUBLISH_DELTA:
            for section in ("set", "restore"):
                tasks.update(rec.payload[section])
            tasks.update(rec.payload["clear"])
    print(f"file: {path} ({path.stat().st_size} bytes)")
    print(f"version: {trace.header.version}")
    print(f"meta: {dict(trace.header.meta)}")
    print(f"records: {len(trace)}")
    for kind, count in sorted(trace.kind_counts().items()):
        print(f"  {kind}: {count}")
    print(f"tasks: {len(tasks)}, phasers: {len(phasers)}, sites: {len(sites)}")
    return 0


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Record, replay, generate and inspect Armus event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="record a built-in scenario")
    p_record.add_argument("--scenario", choices=sorted(SCENARIOS), default="crossed")
    p_record.add_argument("--mode", choices=("off", "detection", "avoidance"),
                          default="detection")
    p_record.add_argument("--out", required=True, help="output trace path")
    p_record.add_argument("--stream", action="store_true",
                          help="spill records to disk as they arrive "
                               "instead of buffering the run")
    p_record.add_argument("--metrics-json", metavar="PATH", default=None,
                          help="write the run's metrics snapshot (canonical "
                               "JSON) to PATH")
    p_record.add_argument("--metrics-stdout", action="store_true",
                          help="print the run's metrics snapshot to stdout")
    p_record.set_defaults(fn=cmd_record)

    p_replay = sub.add_parser("replay", help="replay trace file(s)")
    p_replay.add_argument("trace", nargs="+",
                          help="trace file(s) (.jsonl or .trace) and/or "
                               "corpus directories")
    p_replay.add_argument("--mode", choices=("detection", "avoidance"),
                          default="detection")
    p_replay.add_argument("--model", choices=("auto", "wfg", "sg"), default="auto")
    p_replay.add_argument("--check-every", type=int, default=1)
    p_replay.add_argument("--parallel", type=int, default=1, metavar="N",
                          help="replay a corpus over N worker processes "
                               "(stdout stays byte-identical to serial)")
    p_replay.add_argument("--stream", action="store_true",
                          help="read each trace incrementally in O(frame) "
                               "memory instead of loading it whole")
    p_replay.add_argument("--shard-components", action="store_true",
                          help="check connected components of the wait-for "
                               "graph independently (detection only)")
    p_replay.add_argument("--incremental", action="store_true",
                          help="feed record-level deltas into a maintained "
                               "analysis graph instead of rebuilding per "
                               "check (same reports, O(N) not O(N²))")
    p_replay.add_argument("--metrics-json", metavar="PATH", default=None,
                          help="write the run's deterministic metrics "
                               "snapshot (canonical JSON; byte-identical "
                               "for any --parallel value) to PATH")
    p_replay.add_argument("--profile", metavar="OUT.pstats", default=None,
                          help="profile the replay with cProfile and dump "
                               "pstats data to this path")
    p_replay.add_argument("--metrics-stdout", action="store_true",
                          help="print the deterministic metrics snapshot "
                               "to stdout")
    p_replay.set_defaults(fn=cmd_replay)

    p_gen = sub.add_parser("gen", help="generate a scenario corpus")
    p_gen.add_argument("--out", default=None, help="output directory")
    p_gen.add_argument("--families", default="cycle,churn,aio,bounded,knot,nearmiss",
                       help="comma-separated scenario families "
                            f"(from: {', '.join(FAMILIES)})")
    p_gen.add_argument("--cycle-lens", type=_ints, default=None)
    p_gen.add_argument("--fan-outs", type=_ints, default=None)
    p_gen.add_argument("--sites", type=_ints, default=None)
    p_gen.add_argument("--rounds", type=_ints, default=None)
    p_gen.add_argument("--task-counts", type=_ints, default=None,
                       help="aio-family task counts (default: 1000)")
    p_gen.add_argument("--codec", choices=("jsonl", "binary", "both"),
                       default="both")
    p_gen.add_argument("--smoke", action="store_true",
                       help="verify a small grid in memory; write nothing")
    p_gen.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="fan --smoke verification out over N processes")
    p_gen.set_defaults(fn=cmd_gen)

    p_stats = sub.add_parser("stats", help="summarise a trace file")
    p_stats.add_argument("trace")
    p_stats.set_defaults(fn=cmd_stats)

    p_explain = sub.add_parser(
        "explain", help="map each deadlock report back to its trace records"
    )
    p_explain.add_argument("trace", nargs="+",
                           help="trace file(s) and/or corpus directories")
    p_explain.add_argument("--report", type=int, default=None, metavar="N",
                           help="explain only report N (1-based; default: all)")
    p_explain.add_argument("--mode", choices=("detection", "avoidance"),
                           default="detection")
    p_explain.add_argument("--model", choices=("auto", "wfg", "sg"),
                           default="auto")
    p_explain.add_argument("--check-every", type=int, default=1)
    p_explain.add_argument("--parallel", type=int, default=1, metavar="N",
                           help="fan a corpus out over N worker processes "
                                "(stdout stays byte-identical to serial)")
    p_explain.add_argument("--stream", action="store_true",
                           help="read corpus traces incrementally")
    p_explain.add_argument("--shard-components", action="store_true",
                           help="check connected components independently")
    p_explain.add_argument("--incremental", action="store_true",
                           help="use the delta-maintained engine (identical "
                                "provenance)")
    p_explain.add_argument("--chrome", metavar="OUT.json", default=None,
                           help="also write a Chrome trace-event JSON "
                                "(single trace input only)")
    p_explain.set_defaults(fn=cmd_explain)

    p_predict = sub.add_parser(
        "predict",
        help="soundly predict deadlocks from ok-trace(s) by HB reordering",
    )
    p_predict.add_argument("trace", nargs="+",
                           help="trace file(s) and/or corpus directories")
    p_predict.add_argument("--parallel", type=int, default=1, metavar="N",
                           help="fan a corpus out over N worker processes "
                                "(stdout stays byte-identical to serial)")
    p_predict.add_argument("--emit-witness", metavar="DIR", default=None,
                           help="save each confirmed prediction's witness "
                                "trace to DIR (replayable .jsonl files)")
    p_predict.add_argument("--max-candidates", type=int, default=64,
                           metavar="N",
                           help="cap on enumerated candidates per trace "
                                "(hitting it is flagged, never silent)")
    p_predict.add_argument("--metrics-json", metavar="PATH", default=None,
                           help="write the run's deterministic metrics "
                                "snapshot (canonical JSON) to PATH")
    p_predict.add_argument("--metrics-stdout", action="store_true",
                           help="print the deterministic metrics snapshot "
                                "to stdout")
    p_predict.set_defaults(fn=cmd_predict)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Expected operational errors (malformed traces, missing files, bad
    grid parameters) become one-line messages, not tracebacks.
    """
    from repro.trace.events import TraceFormatError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except TraceFormatError as exc:
        print(f"error: malformed trace: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc.filename}: no such file", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
