"""Two interchangeable trace codecs: JSONL (debuggable) and framed
binary (fast and compact).

**JSONL** writes one JSON object per line: the header first (carrying the
magic and version), then one object per record.  It is grep-able,
diff-able and editable — the format of choice while developing a
scenario or inspecting a failure.

**Framed binary** writes a fixed magic + version prefix followed by
length-prefixed frames, one per record.  Integers use LEB128 varints,
strings are varint-length-prefixed UTF-8, and each frame opens with a
one-byte kind tag — a record can be decoded without touching the rest of
the file, and truncation or corruption is detected at the frame
boundary.  Binary files come out roughly a quarter the size of their
JSONL twins (``benchmarks/bench_trace_replay.py`` tracks the decode and
replay throughput of both).

:func:`save_trace` / :func:`load_trace` pick the codec from the file
extension (``.jsonl`` vs ``.bin``/``.trace``) or from the leading magic
bytes, so callers rarely name a codec explicitly.

Both codecs expose a *per-record* surface on top of which the eager
``dump``/``load`` methods are built: ``encode_header``/``encode_record``
produce the bytes for one header or record (what the spill-to-disk
:class:`~repro.trace.stream.StreamingRecorder` appends as events
arrive), and ``decode_record_*`` turn one frame or line back into a
:class:`~repro.trace.events.TraceRecord` (what the incremental readers
in :mod:`repro.trace.stream` call per frame).  Whole-file and streaming
I/O therefore cannot drift apart — they share the same record coders.
"""

from __future__ import annotations

import io
import json
import pathlib
import struct
from typing import BinaryIO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.trace.events import (
    Trace,
    TraceFormatError,
    TraceHeader,
    TraceRecord,
    RecordKind,
    TRACE_MAGIC,
    TRACE_VERSION,
    delta_payload_from_obj,
    status_from_obj,
    status_to_obj,
)

PathLike = Union[str, pathlib.Path]

#: 8-byte magic prefix of a binary trace file.
BINARY_MAGIC = b"ARMUSTRC"

_KIND_TAGS = {
    RecordKind.BLOCK: 1,
    RecordKind.UNBLOCK: 2,
    RecordKind.REGISTER: 3,
    RecordKind.ADVANCE: 4,
    RecordKind.PUBLISH: 5,
    RecordKind.PUBLISH_DELTA: 6,
}

#: Binary bytes for the two delta kinds (PUBLISH_DELTA frames).
_DELTA_KIND_TAGS = {"delta": 0, "snapshot": 1}
_TAG_DELTA_KINDS = {tag: kind for kind, tag in _DELTA_KIND_TAGS.items()}
_TAG_KINDS = {tag: kind for kind, tag in _KIND_TAGS.items()}


# ---------------------------------------------------------------------------
# JSONL codec
# ---------------------------------------------------------------------------
def _record_to_obj(rec: TraceRecord) -> dict:
    obj: dict = {"seq": rec.seq, "kind": rec.kind.value}
    if rec.task is not None:
        obj["task"] = rec.task
    if rec.status is not None:
        obj["status"] = status_to_obj(rec.status)
    if rec.phaser is not None:
        obj["phaser"] = rec.phaser
    if rec.phase is not None:
        obj["phase"] = rec.phase
    if rec.site is not None:
        obj["site"] = rec.site
    if rec.payload is not None:
        obj["payload"] = rec.payload
    return obj


def _record_from_obj(obj: dict) -> TraceRecord:
    try:
        kind = RecordKind(obj["kind"])
        seq = int(obj["seq"])
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed record object: {obj!r}") from exc
    status = None
    if "status" in obj:
        status = status_from_obj(obj["status"])
    payload = obj.get("payload")
    if kind is RecordKind.PUBLISH and payload is not None:
        # Validate every bucket entry up front: a malformed blob must be
        # a TraceFormatError at load time, not a KeyError mid-replay.
        if not isinstance(payload, dict):
            raise TraceFormatError(f"publish payload is not an object: {payload!r}")
        for blob in payload.values():
            status_from_obj(blob)
    if kind is RecordKind.PUBLISH_DELTA and payload is not None:
        if not isinstance(payload, dict):
            raise TraceFormatError(f"delta payload is not an object: {payload!r}")
        payload = delta_payload_from_obj(payload)
    try:
        return TraceRecord(
            seq=seq,
            kind=kind,
            task=obj.get("task"),
            status=status,
            phaser=obj.get("phaser"),
            phase=obj.get("phase"),
            site=obj.get("site"),
            payload=payload,
        )
    except TraceFormatError:
        raise
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed record object: {obj!r}") from exc


class JsonlCodec:
    """One JSON object per line; human-readable reference codec."""

    name = "jsonl"
    extensions = (".jsonl", ".json")

    # -- per-record surface (shared by eager and streaming I/O) --------
    def encode_header(self, header: TraceHeader) -> bytes:
        """The header line (including the trailing newline)."""
        obj = {
            "magic": TRACE_MAGIC,
            "version": header.version,
            "meta": dict(header.meta),
        }
        return (json.dumps(obj, separators=(",", ":"), sort_keys=True) + "\n").encode(
            "utf-8"
        )

    def encode_record(self, rec: TraceRecord) -> bytes:
        """One record line (including the trailing newline)."""
        return (
            json.dumps(_record_to_obj(rec), separators=(",", ":"), sort_keys=True) + "\n"
        ).encode("utf-8")

    def decode_header_line(self, line: str) -> TraceHeader:
        """Parse the header line; reject bad magic or versions."""
        try:
            header_obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"unparseable header line: {line[:80]!r}") from exc
        if not isinstance(header_obj, dict) or header_obj.get("magic") != TRACE_MAGIC:
            raise TraceFormatError("not an armus trace (bad magic)")
        return TraceHeader(
            version=int(header_obj.get("version", -1)),
            meta=header_obj.get("meta", {}),
        )

    def decode_record_line(self, line: str) -> TraceRecord:
        """Parse one record line back into a :class:`TraceRecord`."""
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"unparseable record line: {line[:80]!r}") from exc
        return _record_from_obj(obj)

    # -- whole-file methods --------------------------------------------
    def dump(self, trace: Trace, fp: BinaryIO) -> None:
        """Write ``trace`` to the binary file object ``fp``."""
        fp.write(self.encode_header(trace.header))
        for rec in trace.records:
            fp.write(self.encode_record(rec))

    def load(self, fp: BinaryIO) -> Trace:
        """Read a trace from ``fp``; reject anything malformed."""
        try:
            text = fp.read().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError("not a UTF-8 JSONL trace") from exc
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceFormatError("empty trace file")
        header = self.decode_header_line(lines[0])
        records: List[TraceRecord] = []
        for line in lines[1:]:
            records.append(self.decode_record_line(line))
        return Trace(header=header, records=tuple(records))


# ---------------------------------------------------------------------------
# framed binary codec
# ---------------------------------------------------------------------------
def _write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise TraceFormatError(f"cannot encode negative int: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf: memoryview, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise TraceFormatError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise TraceFormatError("varint too long")


def _write_str(out: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    _write_varint(out, len(data))
    out.extend(data)


def _read_str(buf: memoryview, pos: int) -> Tuple[str, int]:
    length, pos = _read_varint(buf, pos)
    if pos + length > len(buf):
        raise TraceFormatError("truncated string")
    value = bytes(buf[pos : pos + length]).decode("utf-8")
    return value, pos + length


def _write_status(out: bytearray, obj: dict) -> None:
    """Encode one status wire dict (see ``status_to_obj``)."""
    _write_varint(out, int(obj.get("generation", 0)))
    waits = obj["waits"]
    _write_varint(out, len(waits))
    for phaser, phase in waits:
        _write_str(out, str(phaser))
        _write_varint(out, int(phase))
    registered = obj["registered"]
    _write_varint(out, len(registered))
    for phaser, phase in registered.items():
        _write_str(out, str(phaser))
        _write_varint(out, int(phase))


def _read_status(buf: memoryview, pos: int) -> Tuple[dict, int]:
    generation, pos = _read_varint(buf, pos)
    n_waits, pos = _read_varint(buf, pos)
    waits = []
    for _ in range(n_waits):
        phaser, pos = _read_str(buf, pos)
        phase, pos = _read_varint(buf, pos)
        waits.append([phaser, phase])
    n_reg, pos = _read_varint(buf, pos)
    registered = {}
    for _ in range(n_reg):
        phaser, pos = _read_str(buf, pos)
        phase, pos = _read_varint(buf, pos)
        registered[phaser] = phase
    return {"waits": waits, "registered": registered, "generation": generation}, pos


class BinaryCodec:
    """Length-prefixed frames with varint fields; the fast codec."""

    name = "binary"
    extensions = (".bin", ".trace")

    # -- per-record surface (shared by eager and streaming I/O) --------
    def encode_header(self, header: TraceHeader) -> bytes:
        """Magic + version byte + varint-length-prefixed meta JSON."""
        meta = json.dumps(dict(header.meta), separators=(",", ":"), sort_keys=True)
        out = bytearray(BINARY_MAGIC)
        out.extend(struct.pack("<B", header.version))
        _write_str(out, meta)
        return bytes(out)

    def encode_record(self, rec: TraceRecord) -> bytes:
        """One complete frame: varint length prefix + tagged body."""
        body = bytearray()
        body.append(_KIND_TAGS[rec.kind])
        _write_varint(body, rec.seq)
        kind = rec.kind
        if kind is RecordKind.BLOCK:
            _write_str(body, rec.task)
            _write_status(body, status_to_obj(rec.status))
        elif kind is RecordKind.UNBLOCK:
            _write_str(body, rec.task)
        elif kind in (RecordKind.REGISTER, RecordKind.ADVANCE):
            _write_str(body, rec.task)
            _write_str(body, rec.phaser)
            _write_varint(body, rec.phase)
        elif kind is RecordKind.PUBLISH:
            _write_str(body, rec.site)
            _write_varint(body, len(rec.payload))
            for task, blob in rec.payload.items():
                _write_str(body, str(task))
                _write_status(body, blob)
        else:  # PUBLISH_DELTA
            delta = rec.payload
            _write_str(body, rec.site)
            _write_varint(body, int(delta.get("v", 1)))
            _write_str(body, str(delta["stream"]))
            _write_varint(body, int(delta["seq"]))
            body.append(_DELTA_KIND_TAGS[delta["kind"]])
            for section in ("set", "restore"):
                ops = delta[section]
                _write_varint(body, len(ops))
                for task, blob in ops.items():
                    _write_str(body, str(task))
                    _write_status(body, blob)
            clear = delta["clear"]
            _write_varint(body, len(clear))
            for task in clear:
                _write_str(body, str(task))
            trace_ctx = delta.get("trace")
            if trace_ctx is not None:
                # Optional trailing section (v2+ causal context): frames
                # that end right after ``clear`` stay decodable, so old
                # recordings load unchanged.
                _write_str(
                    body,
                    json.dumps(
                        dict(trace_ctx), separators=(",", ":"), sort_keys=True
                    ),
                )
        frame = bytearray()
        _write_varint(frame, len(body))
        frame.extend(body)
        return bytes(frame)

    def decode_meta(self, meta_json: str) -> dict:
        """Parse the header's meta JSON; wrap errors as format errors."""
        try:
            return json.loads(meta_json)
        except json.JSONDecodeError as exc:
            raise TraceFormatError("unparseable binary header meta") from exc

    # -- zero-copy frame scan ------------------------------------------
    def scan_frames(
        self, buf: Union[bytes, memoryview], pos: int = 0
    ) -> Iterator[memoryview]:
        """Walk framed records as zero-copy ``memoryview`` slices.

        ``buf`` must start at a frame boundary (``pos`` past the header
        for a whole-file buffer).  Each yielded slice is one frame body
        — no bytes are copied and nothing is decoded; feed a slice to
        :meth:`decode_record_frame` for the record or to
        :meth:`lazy_record` for a decode-on-demand view.  A frame
        running past the end of the buffer raises
        :class:`TraceFormatError` ("truncated frame").
        """
        if not isinstance(buf, memoryview):
            buf = memoryview(buf)
        end = len(buf)
        while pos < end:
            length, pos = _read_varint(buf, pos)
            if pos + length > end:
                raise TraceFormatError("truncated frame")
            yield buf[pos : pos + length]
            pos += length

    def lazy_record(self, body: memoryview) -> "LazyRecord":
        """A decode-on-demand view of one frame body.

        The kind tag and ``seq`` are decoded eagerly (one byte plus one
        varint — enough to classify and order the record, and unknown
        tags fail as loudly here as under eager decoding); everything
        else waits for first field access.
        """
        if len(body) == 0:
            raise TraceFormatError("empty frame")
        kind = _TAG_KINDS.get(body[0])
        if kind is None:
            raise TraceFormatError(f"unknown record tag {body[0]}")
        seq, _ = _read_varint(body, 1)
        return LazyRecord(kind, seq, body)

    # -- whole-file methods --------------------------------------------
    def dump(self, trace: Trace, fp: BinaryIO) -> None:
        """Write ``trace`` to the binary file object ``fp``."""
        fp.write(self.encode_header(trace.header))
        for rec in trace.records:
            fp.write(self.encode_record(rec))

    def load(self, fp: BinaryIO) -> Trace:
        """Read a trace from ``fp``; reject anything malformed."""
        data = fp.read()
        if not data.startswith(BINARY_MAGIC):
            raise TraceFormatError("not a binary armus trace (bad magic)")
        if len(data) < len(BINARY_MAGIC) + 1:
            raise TraceFormatError("truncated binary header")
        version = data[len(BINARY_MAGIC)]
        buf = memoryview(data)
        pos = len(BINARY_MAGIC) + 1
        meta_json, pos = _read_str(buf, pos)
        header = TraceHeader(version=version, meta=self.decode_meta(meta_json))
        decode = self.decode_record_frame
        records = tuple(decode(body) for body in self.scan_frames(buf, pos))
        return Trace(header=header, records=records)

    def decode_record_frame(self, body: memoryview) -> TraceRecord:
        if len(body) == 0:
            raise TraceFormatError("empty frame")
        kind = _TAG_KINDS.get(body[0])
        if kind is None:
            raise TraceFormatError(f"unknown record tag {body[0]}")
        pos = 1
        seq, pos = _read_varint(body, pos)
        if kind is RecordKind.BLOCK:
            task, pos = _read_str(body, pos)
            status_obj, pos = _read_status(body, pos)
            rec = TraceRecord(
                seq=seq, kind=kind, task=task, status=status_from_obj(status_obj)
            )
        elif kind is RecordKind.UNBLOCK:
            task, pos = _read_str(body, pos)
            rec = TraceRecord(seq=seq, kind=kind, task=task)
        elif kind in (RecordKind.REGISTER, RecordKind.ADVANCE):
            task, pos = _read_str(body, pos)
            phaser, pos = _read_str(body, pos)
            phase, pos = _read_varint(body, pos)
            rec = TraceRecord(seq=seq, kind=kind, task=task, phaser=phaser, phase=phase)
        elif kind is RecordKind.PUBLISH:
            site, pos = _read_str(body, pos)
            n_tasks, pos = _read_varint(body, pos)
            payload = {}
            for _ in range(n_tasks):
                task, pos = _read_str(body, pos)
                blob, pos = _read_status(body, pos)
                payload[task] = blob
            rec = TraceRecord(seq=seq, kind=kind, site=site, payload=payload)
        else:  # PUBLISH_DELTA
            site, pos = _read_str(body, pos)
            version, pos = _read_varint(body, pos)
            delta_stream, pos = _read_str(body, pos)
            delta_seq, pos = _read_varint(body, pos)
            if pos >= len(body):
                raise TraceFormatError("truncated delta frame")
            delta_kind = _TAG_DELTA_KINDS.get(body[pos])
            if delta_kind is None:
                raise TraceFormatError(f"unknown delta kind tag {body[pos]}")
            pos += 1
            sections = []
            for _ in range(2):  # set, then restore
                n_tasks, pos = _read_varint(body, pos)
                ops = {}
                for _ in range(n_tasks):
                    task, pos = _read_str(body, pos)
                    blob, pos = _read_status(body, pos)
                    ops[task] = blob
                sections.append(ops)
            n_clear, pos = _read_varint(body, pos)
            clear = []
            for _ in range(n_clear):
                task, pos = _read_str(body, pos)
                clear.append(task)
            obj = {
                "v": version,
                "stream": delta_stream,
                "seq": delta_seq,
                "kind": delta_kind,
                "set": sections[0],
                "restore": sections[1],
                "clear": clear,
            }
            if pos < len(body):
                # Trailing causal-context section (absent in old frames).
                trace_json, pos = _read_str(body, pos)
                try:
                    obj["trace"] = json.loads(trace_json)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        "unparseable delta trace context"
                    ) from exc
            payload = delta_payload_from_obj(obj)
            rec = TraceRecord(seq=seq, kind=kind, site=site, payload=payload)
        if pos != len(body):
            raise TraceFormatError(f"{len(body) - pos} trailing bytes in frame")
        return rec


class LazyRecord:
    """A binary frame posing as a :class:`TraceRecord`, decoded on need.

    ``kind`` and ``seq`` are plain attributes set by
    :meth:`BinaryCodec.lazy_record`; reading any other record field
    (``task``, ``status``, ``payload``, ...) materialises the full
    :class:`TraceRecord` through ``decode_record_frame`` on first access
    and delegates.  Consumers that classify records before touching
    their fields — the replay engines read only ``kind`` and ``seq``
    from register/advance context records — therefore never pay for
    decoding the frames they skip.

    The flip side: a frame whose *interior* is malformed only raises
    when (and if) it is materialised, where eager decoding raises at
    scan time.  The frame envelope (length, kind tag) is still
    validated up front, so truncation and unknown-tag corruption stay
    as loud as ever.  The view holds its ``memoryview`` slice, keeping
    the underlying buffer alive for as long as the record is.
    """

    __slots__ = ("kind", "seq", "_body", "_rec")

    def __init__(self, kind: RecordKind, seq: int, body: memoryview) -> None:
        self.kind = kind
        self.seq = seq
        self._body = body
        self._rec = None

    def materialize(self) -> TraceRecord:
        """Decode (once) and return the full record."""
        rec = self._rec
        if rec is None:
            rec = self._rec = CODECS["binary"].decode_record_frame(self._body)
        return rec

    def __getattr__(self, name: str):
        # Only fires for names outside __slots__ — i.e. the record
        # fields that genuinely need the full decode.
        return getattr(self.materialize(), name)

    def __repr__(self) -> str:
        state = "decoded" if self._rec is not None else "undecoded"
        return f"<LazyRecord kind={self.kind.value} seq={self.seq} {state}>"


# ---------------------------------------------------------------------------
# codec selection
# ---------------------------------------------------------------------------
CODECS = {c.name: c for c in (JsonlCodec(), BinaryCodec())}


def codec_for(path: PathLike, codec: Optional[str] = None):
    """Resolve a codec by explicit name or by ``path``'s extension."""
    if codec is not None:
        try:
            return CODECS[codec]
        except KeyError:
            raise TraceFormatError(
                f"unknown codec {codec!r} (have: {sorted(CODECS)})"
            ) from None
    suffix = pathlib.Path(path).suffix.lower()
    for c in CODECS.values():
        if suffix in c.extensions:
            return c
    return CODECS["jsonl"]


def save_trace(trace: Trace, path: PathLike, codec: Optional[str] = None) -> pathlib.Path:
    """Write ``trace`` to ``path`` under the chosen (or inferred) codec."""
    path = pathlib.Path(path)
    chosen = codec_for(path, codec)
    with open(path, "wb") as fp:
        chosen.dump(trace, fp)
    return path


def load_trace(path: PathLike) -> Trace:
    """Read a trace from ``path``, sniffing the codec from its magic."""
    path = pathlib.Path(path)
    with open(path, "rb") as fp:
        prefix = fp.read(len(BINARY_MAGIC))
        fp.seek(0)
        if prefix == BINARY_MAGIC:
            return CODECS["binary"].load(fp)
        return CODECS["jsonl"].load(fp)


def dumps(trace: Trace, codec: str = "jsonl") -> bytes:
    """Serialise ``trace`` to bytes (tests and in-memory round-trips)."""
    buf = io.BytesIO()
    CODECS[codec].dump(trace, buf)
    return buf.getvalue()


def loads(data: bytes) -> Trace:
    """Deserialise bytes produced by :func:`dumps` (codec sniffed)."""
    if data.startswith(BINARY_MAGIC):
        return CODECS["binary"].load(io.BytesIO(data))
    return CODECS["jsonl"].load(io.BytesIO(data))
