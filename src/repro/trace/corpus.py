"""Scenario corpus generator: parameterised traces without threads.

Live runs are bounded by thread scheduling — a few dozen tasks, wall
clock pacing, nondeterministic interleavings.  The corpus generator
side-steps all of it: it writes the trace a run *would have produced*
directly, from closed-form schedules, so scenario scale is limited by
disk, not by the GIL.  Every ROADMAP direction that needs "many diverse
synchronisation scenarios" (regression corpora, sharded checking,
throughput work) replays against these files.

A :class:`ScenarioSpec` spans the grid the ISSUE calls for — cycle
length × task count (phaser fan-out) × site count — with two phases:

1. **warm-up rounds**: ``rounds`` deadlock-free SPMD barrier steps over
   all tasks (advance + block + unblock on a shared phaser), providing
   bulk events that must *not* trigger reports at any prefix;
2. **the knot**: ``cycle_len`` phasers ``c0..c{L-1}`` with ``fan_out``
   tasks per edge group; group ``i`` blocks on ``ci@1`` while still at
   phase 0 on ``c{i-1}`` — the classic crossed-barrier cycle,
   generalised.  With ``deadlock=False`` the back edge is broken (group
   0 has already arrived at ``c{L-1}``), leaving an acyclic chain.

With ``sites > 1`` the blocked statuses flow through ``publish_delta``
records (tasks round-robined over sites, each status change derived
into a delta by the same :class:`~repro.distributed.delta.DeltaPublisher`
the live ``Site`` path runs — first publish per site is a snapshot
checkpoint, subsequent ones carry only the changed task) — the
distributed one-phase detection under the delta wire protocol, replayed
from a file.

Six spec families share :func:`build_trace`: :class:`ScenarioSpec`
(the cycle grid), :class:`ChurnSpec` (dynamic membership),
:class:`AioSpec` (the asyncio backend's high-task-count shapes —
thousand-task rings and whole-pool churn), :class:`BoundedSpec`
(producer-consumer pipelines over bounded phasers — signal/ack clock
pairs, deadlocking with every buffer *full*), :class:`KnotSpec`
(mixed lock/barrier knots — locks held across a barrier wait, the
JArmus ``ReentrantLock`` instrumentation's scenario class) and
:class:`NearMissSpec` (ok-traces whose blocked statuses close a cycle
only under an HB-consistent reordering — the predictor's ground truth,
with true-negative controls).

The schedules are arranged so that in a ``check_every=1`` detection
replay a report appears exactly at the record that first closes the
knot — the closing group's first block (its fan-out siblings repeat the
same cycle edge) — and never before: generated traces are prefix-safe
ground truth.
"""

from __future__ import annotations

import itertools
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import BlockedStatus, Event
from repro.trace import events as ev
from repro.trace.codec import save_trace
from repro.trace.events import Trace, TraceHeader, status_to_obj


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of the scenario grid.

    ``fan_out`` is the number of tasks per cycle-edge group (the phaser
    fan-out); total task count is ``cycle_len * fan_out``.
    """

    cycle_len: int = 2
    fan_out: int = 1
    sites: int = 1
    rounds: int = 0
    deadlock: bool = True

    def __post_init__(self) -> None:
        if self.cycle_len < 2:
            raise ValueError("cycle_len must be at least 2")
        if self.fan_out < 1 or self.sites < 1 or self.rounds < 0:
            raise ValueError("fan_out/sites must be >= 1, rounds >= 0")

    @property
    def n_tasks(self) -> int:
        return self.cycle_len * self.fan_out

    @property
    def name(self) -> str:
        verdict = "dl" if self.deadlock else "ok"
        return (
            f"cycle-L{self.cycle_len}-F{self.fan_out}"
            f"-S{self.sites}-R{self.rounds}-{verdict}"
        )


class _Emitter:
    """Builds the record stream, routing blocked-status changes either
    to local ``block``/``unblock`` records (one site) or to per-site
    ``publish_delta`` records (several sites), derived by the same
    :class:`~repro.distributed.delta.DeltaPublisher` the live ``Site``
    publishing loop runs."""

    def __init__(self, sites: int) -> None:
        from repro.distributed.delta import DeltaPublisher

        self.sites = sites
        self.records: List[ev.TraceRecord] = []
        self._seq = 0
        self._buckets: Dict[str, Dict[str, dict]] = {
            self._site_name(i): {} for i in range(sites)
        }
        # Fixed stream tokens and fixed cadence: generated corpora must
        # be byte-pinnable, so both the publisher's random-incarnation
        # default and the size-sensitive adaptive checkpoint policy are
        # overridden — the pinned delta/checkpoint schedule must not
        # move when cadence heuristics are tuned.
        self._publishers: Dict[str, DeltaPublisher] = {
            name: DeltaPublisher(name, stream=name, adaptive=False)
            for name in self._buckets
        }

    def _site_name(self, index: int) -> str:
        return f"site{index}"

    def _site_of(self, task_index: int) -> str:
        return self._site_name(task_index % self.sites)

    def _next(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def register(self, task: str, phaser: str, phase: int) -> None:
        self.records.append(ev.register(self._next(), task, phaser, phase))

    def advance(self, task: str, phaser: str, phase: int) -> None:
        self.records.append(ev.advance(self._next(), task, phaser, phase))

    def _publish_site(self, site: str) -> None:
        publisher = self._publishers[site]
        delta = publisher.prepare(self._buckets[site])
        assert delta is not None, "emitter publishes only on change"
        publisher.commit(delta)
        self.records.append(ev.publish_delta(self._next(), site, delta))

    def block(self, task_index: int, task: str, status: BlockedStatus) -> None:
        if self.sites == 1:
            self.records.append(ev.block(self._next(), task, status))
            return
        site = self._site_of(task_index)
        self._buckets[site][task] = status_to_obj(status)
        self._publish_site(site)

    def unblock(self, task_index: int, task: str) -> None:
        if self.sites == 1:
            self.records.append(ev.unblock(self._next(), task))
            return
        site = self._site_of(task_index)
        self._buckets[site].pop(task, None)
        self._publish_site(site)


def scenario_trace(spec: ScenarioSpec) -> Trace:
    """Generate the full trace for ``spec`` (see the module docstring)."""
    emit = _Emitter(spec.sites)
    tasks = [
        (g, j, f"g{g}t{j}")
        for g in range(spec.cycle_len)
        for j in range(spec.fan_out)
    ]
    barrier = "bar"

    # Membership context: every task joins the warm-up barrier and its
    # group's two cycle phasers at phase 0.
    for g, j, name in tasks:
        if spec.rounds:
            emit.register(name, barrier, 0)
        emit.register(name, f"c{g}", 0)
        emit.register(name, f"c{(g - 1) % spec.cycle_len}", 0)

    # Phase 1: deadlock-free SPMD warm-up rounds on the shared barrier.
    for r in range(1, spec.rounds + 1):
        for idx, (g, j, name) in enumerate(tasks):
            emit.advance(name, barrier, r)
            emit.block(
                idx,
                name,
                BlockedStatus(
                    waits=frozenset({Event(barrier, r)}),
                    registered={barrier: r},
                ),
            )
        for idx, (g, j, name) in enumerate(tasks):
            emit.unblock(idx, name)

    # Phase 2: the knot.  Group i arrives at c{i} (phase 1) and blocks on
    # it while still at phase 0 on c{i-1} — unless the back edge is
    # broken (deadlock=False: group 0 has already arrived at c{L-1}).
    for idx, (g, j, name) in enumerate(tasks):
        prev = f"c{(g - 1) % spec.cycle_len}"
        emit.advance(name, f"c{g}", 1)
        registered = {f"c{g}": 1, prev: 0}
        if not spec.deadlock and g == 0:
            emit.advance(name, prev, 1)
            registered[prev] = 1
        if spec.rounds:
            registered[barrier] = spec.rounds
        emit.block(
            idx,
            name,
            BlockedStatus(
                waits=frozenset({Event(f"c{g}", 1)}), registered=registered
            ),
        )

    if not spec.deadlock:
        # The chain unwinds from its free end; keep the trace tidy.
        for idx, (g, j, name) in reversed(list(enumerate(tasks))):
            emit.unblock(idx, name)

    header = TraceHeader(
        meta={
            "scenario": spec.name,
            "cycle_len": spec.cycle_len,
            "fan_out": spec.fan_out,
            "sites": spec.sites,
            "rounds": spec.rounds,
            "tasks": spec.n_tasks,
            "expect_deadlock": spec.deadlock,
            "generator": "repro.trace.corpus",
        }
    )
    return Trace(header=header, records=tuple(emit.records))


# ---------------------------------------------------------------------------
# dynamic-membership churn family
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnSpec:
    """A scenario whose participant set changes over time.

    A pool of ``pool`` tasks shares one barrier, but only a sliding
    window of ``window`` tasks is registered at any round: each round
    the window advances by one — the oldest member deregisters (it
    simply stops participating; its statuses vanish from the stream)
    and a fresh pool task registers mid-phase.  This is the
    dynamic-membership pattern (phaser ``register``/``drop``) that
    fixed-membership barriers cannot express, and it produces exactly
    the traces the streaming reader must handle: no prefix of the file
    determines the final participant set.

    After the churn rounds, the two newest members tie a crossed
    two-phaser knot (``deadlock=True``) or the same shape with the back
    edge already satisfied (``deadlock=False``).  As with the cycle
    family, a ``check_every=1`` detection replay reports exactly at the
    knot-closing block and never before.
    """

    pool: int = 6
    window: int = 3
    rounds: int = 4
    sites: int = 1
    deadlock: bool = True

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be at least 2 (the knot needs 2 tasks)")
        if self.pool < self.window:
            raise ValueError("pool must be at least the window size")
        if self.rounds < 1 or self.sites < 1:
            raise ValueError("rounds/sites must be >= 1")

    @property
    def n_tasks(self) -> int:
        return self.pool

    @property
    def name(self) -> str:
        verdict = "dl" if self.deadlock else "ok"
        return (
            f"churn-N{self.pool}-W{self.window}"
            f"-R{self.rounds}-S{self.sites}-{verdict}"
        )


def churn_trace(spec: ChurnSpec) -> Trace:
    """Generate the full trace for a :class:`ChurnSpec`."""
    emit = _Emitter(spec.sites)
    names = [f"m{i}" for i in range(spec.pool)]
    barrier = "bar"

    def window_at(round_no: int) -> List[int]:
        start = round_no - 1
        return [(start + k) % spec.pool for k in range(spec.window)]

    prev_active: set = set()
    for r in range(1, spec.rounds + 1):
        active = window_at(r)
        # Mid-phase membership change: tasks joining this round register
        # at the barrier's current phase (including *re*-joins after an
        # absence, once the window wraps the pool); leavers just stop
        # appearing.
        for idx in active:
            if idx not in prev_active:
                emit.register(names[idx], barrier, r - 1)
        prev_active = set(active)
        for idx in active:
            emit.advance(names[idx], barrier, r)
            emit.block(
                idx,
                names[idx],
                BlockedStatus(
                    waits=frozenset({Event(barrier, r)}),
                    registered={barrier: r},
                ),
            )
        for idx in active:
            emit.unblock(idx, names[idx])

    # The knot between the two newest members of the final window.
    a_idx, b_idx = window_at(spec.rounds)[-2:]
    a, b = names[a_idx], names[b_idx]
    for task in (a, b):
        emit.register(task, "p", 0)
        emit.register(task, "q", 0)
    emit.advance(a, "p", 1)
    emit.block(
        a_idx,
        a,
        BlockedStatus(waits=frozenset({Event("p", 1)}), registered={"p": 1, "q": 0}),
    )
    if spec.deadlock:
        emit.advance(b, "q", 1)
        emit.block(
            b_idx,
            b,
            BlockedStatus(
                waits=frozenset({Event("q", 1)}), registered={"p": 0, "q": 1}
            ),
        )
    else:
        # b arrives at p before waiting on q: the back edge is satisfied,
        # so a's wait has no impeder and the knot never closes.
        emit.advance(b, "p", 1)
        emit.advance(b, "q", 1)
        emit.block(
            b_idx,
            b,
            BlockedStatus(
                waits=frozenset({Event("q", 1)}), registered={"p": 1, "q": 1}
            ),
        )
        emit.unblock(a_idx, a)
        emit.unblock(b_idx, b)

    header = TraceHeader(
        meta={
            "scenario": spec.name,
            "family": "churn",
            "pool": spec.pool,
            "window": spec.window,
            "sites": spec.sites,
            "rounds": spec.rounds,
            "tasks": spec.n_tasks,
            "expect_deadlock": spec.deadlock,
            "generator": "repro.trace.corpus",
        }
    )
    return Trace(header=header, records=tuple(emit.records))


# ---------------------------------------------------------------------------
# producer-consumer bounded-phaser family
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BoundedSpec:
    """A ring pipeline over bounded signal/ack clock pairs.

    ``stages`` tasks form a ring: stage ``i`` *produces* items on its
    signal clock ``s{i}`` and *consumes* its predecessor's stream
    ``s{i-1}``, acknowledging each item on its ack clock ``a{i}``.  The
    bound is the producer-consumer invariant of a bounded phaser: stage
    ``i`` may signal item ``m`` only while ``m - phase(a{i+1}) <=
    bound`` — once ``bound`` items are unacknowledged it must wait for
    its consumer's ack event.  Consumers observe their input stream
    without registering on it (a pure wait), so an idle consumer never
    impedes the producer's signal clock.

    ``rounds`` warm-up token circulations exercise the *empty* waits
    (each stage briefly blocks for its input, one blocked task at a
    time — cycle-free at every prefix).  Then every stage produces
    ``bound`` items ahead and blocks *full*, waiting for an ack its
    blocked consumer will never give: waits ``a{i+1}@(R+1)`` while
    registered at ``a{i}: R`` — the all-full ring knot, closed by the
    last stage's block.  With ``deadlock=False`` stage 1 first consumes
    (and acks) one item, so its producer's wait has no impeder and the
    ring degenerates to an acyclic chain.
    """

    stages: int = 2
    bound: int = 1
    rounds: int = 1
    sites: int = 1
    deadlock: bool = True

    def __post_init__(self) -> None:
        if self.stages < 2:
            raise ValueError("stages must be at least 2 (the ring needs 2)")
        if self.bound < 1:
            raise ValueError("bound must be at least 1")
        if self.rounds < 0 or self.sites < 1:
            raise ValueError("rounds must be >= 0, sites >= 1")

    @property
    def n_tasks(self) -> int:
        return self.stages

    @property
    def name(self) -> str:
        verdict = "dl" if self.deadlock else "ok"
        return (
            f"bounded-G{self.stages}-B{self.bound}"
            f"-R{self.rounds}-S{self.sites}-{verdict}"
        )


def bounded_trace(spec: BoundedSpec) -> Trace:
    """Generate the full trace for a :class:`BoundedSpec`."""
    emit = _Emitter(spec.sites)
    L, R, bound = spec.stages, spec.rounds, spec.bound
    names = [f"st{i}" for i in range(L)]

    def sig(i: int) -> str:
        return f"s{i % L}"

    def ack(i: int) -> str:
        return f"a{i % L}"

    for i, name in enumerate(names):
        emit.register(name, sig(i), 0)
        emit.register(name, ack(i), 0)

    # Warm-up: one token circulates per round; each stage blocks empty
    # (waiting its input signal), consumes, acks, and signals onwards.
    # At most one task is blocked at any prefix — trivially cycle-free.
    for r in range(1, R + 1):
        emit.advance(names[0], sig(0), r)
        for i in range(1, L):
            emit.block(
                i,
                names[i],
                BlockedStatus(
                    waits=frozenset({Event(sig(i - 1), r)}),
                    registered={sig(i): r - 1, ack(i): r - 1},
                ),
            )
            emit.unblock(i, names[i])
            emit.advance(names[i], ack(i), r)
            emit.advance(names[i], sig(i), r)
        emit.block(
            0,
            names[0],
            BlockedStatus(
                waits=frozenset({Event(sig(L - 1), r)}),
                registered={sig(0): r, ack(0): r - 1},
            ),
        )
        emit.unblock(0, names[0])
        emit.advance(names[0], ack(0), r)

    # Every stage produces ahead until its buffer is full.
    for i, name in enumerate(names):
        for m in range(R + 1, R + bound + 1):
            emit.advance(name, sig(i), m)

    acked = {i: R for i in range(L)}
    if not spec.deadlock:
        # Stage 1 consumes (and acks) one item before anyone blocks:
        # its producer's full-wait then has no impeder.
        emit.block(
            1,
            names[1],
            BlockedStatus(
                waits=frozenset({Event(sig(0), R + 1)}),
                registered={sig(1): R + bound, ack(1): R},
            ),
        )
        emit.unblock(1, names[1])
        emit.advance(names[1], ack(1), R + 1)
        acked[1] = R + 1

    # The knot: stage i blocks full, waiting its consumer's next ack.
    for i, name in enumerate(names):
        emit.block(
            i,
            name,
            BlockedStatus(
                waits=frozenset({Event(ack(i + 1), R + 1)}),
                registered={sig(i): R + bound, ack(i): acked[i]},
            ),
        )

    if not spec.deadlock:
        # The chain unwinds from its free end; keep the trace tidy.
        for i, name in reversed(list(enumerate(names))):
            emit.unblock(i, name)

    header = TraceHeader(
        meta={
            "scenario": spec.name,
            "family": "bounded",
            "stages": spec.stages,
            "bound": spec.bound,
            "rounds": spec.rounds,
            "sites": spec.sites,
            "tasks": spec.n_tasks,
            "expect_deadlock": spec.deadlock,
            "generator": "repro.trace.corpus",
        }
    )
    return Trace(header=header, records=tuple(emit.records))


# ---------------------------------------------------------------------------
# mixed lock/barrier knot family
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KnotSpec:
    """Locks held across a barrier wait, tangled with lock acquirers.

    ``pairs`` holder/waiter pairs share one barrier.  In the knot,
    holder ``h{p}`` takes lock ``l{p}``, arrives at the barrier and
    waits for the others; waiter ``w{p}`` — which has *not* arrived —
    tries to take ``l{p}`` instead.  Under the lock event model
    (:mod:`repro.runtime.locks`: the holder of epoch ``k`` impedes the
    release event ``(l, k+1)``) that is the classic mixed knot: the
    holder's barrier wait is impeded by every non-arrived waiter, and
    each waiter's lock wait is impeded by its holder — a cycle through
    a lock edge *and* a barrier edge, closed by the first waiter's
    block.  With ``deadlock=False`` the waiters arrive at the barrier
    before acquiring, so the barrier trips and only acyclic lock waits
    remain.

    ``rounds`` warm-up barrier rounds (with per-round lock
    acquire/release context) provide bulk that must stay report-free.
    """

    pairs: int = 1
    rounds: int = 1
    sites: int = 1
    deadlock: bool = True

    def __post_init__(self) -> None:
        if self.pairs < 1:
            raise ValueError("pairs must be at least 1")
        if self.rounds < 0 or self.sites < 1:
            raise ValueError("rounds must be >= 0, sites >= 1")

    @property
    def n_tasks(self) -> int:
        return 2 * self.pairs

    @property
    def name(self) -> str:
        verdict = "dl" if self.deadlock else "ok"
        return f"knot-P{self.pairs}-R{self.rounds}-S{self.sites}-{verdict}"


def knot_trace(spec: KnotSpec) -> Trace:
    """Generate the full trace for a :class:`KnotSpec`."""
    emit = _Emitter(spec.sites)
    P, R = spec.pairs, spec.rounds
    holders = [f"h{p}" for p in range(P)]
    waiters = [f"w{p}" for p in range(P)]
    tasks = holders + waiters
    barrier = "bar"

    for name in tasks:
        emit.register(name, barrier, 0)

    # Warm-up: each round the holders cycle their locks (acquire at the
    # current epoch, release advancing it) and everyone runs one clean
    # SPMD barrier step.
    for r in range(1, R + 1):
        for p, name in enumerate(holders):
            emit.register(name, f"l{p}", r - 1)
            emit.advance(name, f"l{p}", r)
        for idx, name in enumerate(tasks):
            emit.advance(name, barrier, r)
            emit.block(
                idx,
                name,
                BlockedStatus(
                    waits=frozenset({Event(barrier, r)}),
                    registered={barrier: r},
                ),
            )
        for idx, name in enumerate(tasks):
            emit.unblock(idx, name)

    # The knot.  Holders take their locks (epoch R after R releases),
    # arrive at the barrier and wait for the stragglers.
    for p, name in enumerate(holders):
        emit.register(name, f"l{p}", R)
        emit.advance(name, barrier, R + 1)
        emit.block(
            p,
            name,
            BlockedStatus(
                waits=frozenset({Event(barrier, R + 1)}),
                registered={barrier: R + 1, f"l{p}": R},
            ),
        )
    # Waiters go for the held locks.  Deadlock: without arriving (they
    # impede the holders' barrier wait).  Ok: after arriving (they
    # impede nothing, and the barrier will trip).
    for p, name in enumerate(waiters):
        registered = {barrier: R}
        if not spec.deadlock:
            emit.advance(name, barrier, R + 1)
            registered = {barrier: R + 1}
        emit.block(
            P + p,
            name,
            BlockedStatus(
                waits=frozenset({Event(f"l{p}", R + 1)}), registered=registered
            ),
        )

    if not spec.deadlock:
        # Everyone arrived: the barrier trips, the holders release, the
        # waiters acquire; unwind in that order.
        for p, name in enumerate(holders):
            emit.unblock(p, name)
            emit.advance(name, f"l{p}", R + 1)
        for p, name in enumerate(waiters):
            emit.unblock(P + p, name)

    header = TraceHeader(
        meta={
            "scenario": spec.name,
            "family": "knot",
            "pairs": spec.pairs,
            "rounds": spec.rounds,
            "sites": spec.sites,
            "tasks": spec.n_tasks,
            "expect_deadlock": spec.deadlock,
            "generator": "repro.trace.corpus",
        }
    )
    return Trace(header=header, records=tuple(emit.records))


# ---------------------------------------------------------------------------
# high-task-count (asyncio-backend) family
# ---------------------------------------------------------------------------
#: Shapes the aio family generates.
AIO_SHAPES = ("cycle", "churn")

#: Churn-shape window: small and fixed, so replay checks stay O(window)
#: while the task count scales to the thousands.
AIO_CHURN_WINDOW = 8


@dataclass(frozen=True)
class AioSpec:
    """A high-task-count scenario, the shape of an asyncio-backend run.

    The thread-backend families top out at dozens of tasks per live
    run; this family models what ``repro.aio`` makes reachable —
    *thousands* of tasks in one process — in two shapes:

    * ``cycle``: an ``n``-task phaser ring (cycle length = task count,
      fan-out 1), the :func:`repro.aio.scenarios.phaser_ring` trace;
    * ``churn``: a fixed window of :data:`AIO_CHURN_WINDOW` members
      sliding over the whole ``n``-task pool (``rounds = n``), so every
      task registers, synchronises and leaves — maximal membership
      churn at scale.

    Record streams delegate to the cycle/churn emitters; the header
    marks the family (``family="aio"``, ``backend="asyncio"``).
    """

    tasks: int = 1000
    shape: str = "cycle"
    deadlock: bool = True

    def __post_init__(self) -> None:
        if self.shape not in AIO_SHAPES:
            raise ValueError(f"shape must be one of {AIO_SHAPES}, got {self.shape!r}")
        if self.tasks < 2:
            raise ValueError("tasks must be at least 2")

    @property
    def n_tasks(self) -> int:
        return self.tasks

    @property
    def name(self) -> str:
        verdict = "dl" if self.deadlock else "ok"
        return f"aio-{self.shape}-N{self.tasks}-{verdict}"


def aio_trace(spec: AioSpec) -> Trace:
    """Generate the full trace for an :class:`AioSpec`."""
    if spec.shape == "cycle":
        inner = scenario_trace(
            ScenarioSpec(
                cycle_len=spec.tasks,
                fan_out=1,
                sites=1,
                rounds=0,
                deadlock=spec.deadlock,
            )
        )
    else:
        inner = churn_trace(
            ChurnSpec(
                pool=spec.tasks,
                window=min(AIO_CHURN_WINDOW, spec.tasks),
                rounds=spec.tasks,
                sites=1,
                deadlock=spec.deadlock,
            )
        )
    header = TraceHeader(
        meta={
            "scenario": spec.name,
            "family": "aio",
            "backend": "asyncio",
            "shape": spec.shape,
            "tasks": spec.tasks,
            "expect_deadlock": spec.deadlock,
            "generator": "repro.trace.corpus",
        }
    )
    return Trace(header=header, records=inner.records)


# ---------------------------------------------------------------------------
# predictive near-miss family
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NearMissSpec:
    """One point of the predictive near-miss grid.

    The generated trace is always an **ok-trace** — the recorded
    schedule resolves every wait — but with ``realisable=True`` its
    blocked statuses close a wait-for cycle that *some* HB-consistent
    reordering manifests: the :mod:`repro.predict` pipeline's positive
    ground truth.  ``realisable=False`` is the matched true-negative
    control, identical but for the late registrations happening at the
    phaser's *current* phase, so no status impedes its neighbour and no
    reordering can deadlock.

    The schedule needs three ingredients a plain crossed-barrier
    scenario cannot provide (a task that releases a phaser must advance
    it, permanently raising its own registered phase — a static 2-task
    near-miss is impossible):

    * a chain of tasks ``t0..t{L-1}``, each blocking *sequentially* on
      its own phaser ``ci@1`` — at no point are two of them blocked at
      once, so no checker prefix ever reports;
    * helper tasks ``h0..h{L-1}`` that release each wait by advancing
      ``ci`` — the release edge the HB model records;
    * **late registration**: ``ti`` joins its predecessor's phaser
      ``c{i-1}`` only when its turn comes, at phase 0 (stale — the
      racy registration the predictor mines) or at the current phase 1
      (the control).

    ``rounds`` prepends deadlock-free SPMD warm-up rounds over all
    ``2L`` tasks (bulk negative events, as in every other family);
    ``sites > 1`` routes the blocked statuses through the delta wire
    format, exercising publish→sync ordering in the HB model.
    """

    chain_len: int = 2
    rounds: int = 1
    sites: int = 1
    realisable: bool = True

    def __post_init__(self) -> None:
        if self.chain_len < 2:
            raise ValueError("chain_len must be at least 2")
        if self.rounds < 0 or self.sites < 1:
            raise ValueError("rounds must be >= 0, sites >= 1")

    @property
    def n_tasks(self) -> int:
        return 2 * self.chain_len

    @property
    def deadlock(self) -> bool:
        """Near-miss schedules never deadlock in the recorded run —
        that is the family's defining property (``verify_corpus``
        checks it like any other spec's verdict)."""
        return False

    @property
    def name(self) -> str:
        variant = "hit" if self.realisable else "ctl"
        return (
            f"nearmiss-L{self.chain_len}-R{self.rounds}"
            f"-S{self.sites}-{variant}-ok"
        )


def nearmiss_trace(spec: NearMissSpec) -> Trace:
    """Generate the near-miss trace for ``spec`` (see the class doc)."""
    emit = _Emitter(spec.sites)
    length = spec.chain_len
    chain = [f"t{i}" for i in range(length)]
    helpers = [f"h{i}" for i in range(length)]
    tasks = chain + helpers  # position = emitter task index
    barrier = "bar"

    def phaser(i: int) -> str:
        return f"c{i % length}"

    # Membership context: warm-up barrier for everyone, own phaser for
    # every chain task and its helper.  t0 additionally holds the back
    # edge's registration (c{L-1}) from the start — the cycle's anchor.
    for name in tasks:
        if spec.rounds:
            emit.register(name, barrier, 0)
    for i, name in enumerate(chain):
        emit.register(name, phaser(i), 0)
    emit.register(chain[0], phaser(length - 1), 0)
    for i, name in enumerate(helpers):
        emit.register(name, phaser(i), 0)

    # Phase 1: deadlock-free SPMD warm-up rounds over all tasks.
    for r in range(1, spec.rounds + 1):
        for idx, name in enumerate(tasks):
            emit.advance(name, barrier, r)
            emit.block(
                idx,
                name,
                BlockedStatus(
                    waits=frozenset({Event(barrier, r)}),
                    registered={barrier: r},
                ),
            )
        for idx, name in enumerate(tasks):
            emit.unblock(idx, name)

    # Phase 2: the sequential chain.  ``ti`` late-registers on its
    # predecessor's phaser (stale phase 0 in the realisable variant,
    # current phase 1 in the control), arrives at its own phaser and
    # blocks; its helper releases it before ``t{i+1}`` even starts —
    # the recorded run never holds two chain waits at once.
    late_phase = 0 if spec.realisable else 1
    for i, name in enumerate(chain):
        prev = phaser(i - 1)
        prev_phase = 0 if i == 0 else late_phase
        if i >= 1:
            emit.register(name, prev, late_phase)
        emit.advance(name, phaser(i), 1)
        registered = {phaser(i): 1, prev: prev_phase}
        if spec.rounds:
            registered[barrier] = spec.rounds
        emit.block(
            i,
            name,
            BlockedStatus(
                waits=frozenset({Event(phaser(i), 1)}), registered=registered
            ),
        )
        emit.advance(helpers[i], phaser(i), 1)
        if i == 0:
            # t0 also arrives at the back-edge phaser before t{L-1}
            # blocks on it — its recorded status keeps the stale phase.
            emit.unblock(i, name)
            emit.advance(name, phaser(length - 1), 1)
        else:
            emit.unblock(i, name)

    header = TraceHeader(
        meta={
            "scenario": spec.name,
            "family": "nearmiss",
            "chain_len": spec.chain_len,
            "rounds": spec.rounds,
            "sites": spec.sites,
            "tasks": spec.n_tasks,
            "realisable": spec.realisable,
            "expect_deadlock": False,
            "expect_prediction": spec.realisable,
            "generator": "repro.trace.corpus",
        }
    )
    return Trace(header=header, records=tuple(emit.records))


def build_trace(spec) -> Trace:
    """Generate the trace for any scenario-spec family."""
    if isinstance(spec, ScenarioSpec):
        return scenario_trace(spec)
    if isinstance(spec, ChurnSpec):
        return churn_trace(spec)
    if isinstance(spec, AioSpec):
        return aio_trace(spec)
    if isinstance(spec, BoundedSpec):
        return bounded_trace(spec)
    if isinstance(spec, KnotSpec):
        return knot_trace(spec)
    if isinstance(spec, NearMissSpec):
        return nearmiss_trace(spec)
    raise TypeError(f"not a scenario spec: {spec!r}")


# ---------------------------------------------------------------------------
# grids
# ---------------------------------------------------------------------------
#: The default generation grid (kept modest; the CLI overrides all axes).
DEFAULT_GRID = dict(
    cycle_lens=(2, 3, 4),
    fan_outs=(1, 2),
    site_counts=(1, 2),
    rounds=(2,),
    verdicts=(True, False),
)

#: The --smoke grid: small, fast, still covering every record kind.
SMOKE_GRID = dict(
    cycle_lens=(2, 3),
    fan_outs=(1, 2),
    site_counts=(1, 2),
    rounds=(1,),
    verdicts=(True, False),
)

#: Default churn-family grid (pool, window, rounds axes).
DEFAULT_CHURN_GRID = dict(
    pools=(4, 8),
    windows=(2, 3),
    rounds=(4,),
    site_counts=(1, 2),
    verdicts=(True, False),
)

#: Churn specs for --smoke: one churny point per verdict and site count.
SMOKE_CHURN_GRID = dict(
    pools=(5,),
    windows=(3,),
    rounds=(3,),
    site_counts=(1, 2),
    verdicts=(True, False),
)

#: Default aio-family grid: the ISSUE's ≥1000-task floor, both shapes.
DEFAULT_AIO_GRID = dict(
    task_counts=(1000,),
    shapes=AIO_SHAPES,
    verdicts=(True, False),
)

#: Aio specs for --smoke: same shapes at a CI-friendly task count.
SMOKE_AIO_GRID = dict(
    task_counts=(128,),
    shapes=AIO_SHAPES,
    verdicts=(True, False),
)

#: Default bounded-pipeline grid (ring size, buffer bound axes).
DEFAULT_BOUNDED_GRID = dict(
    stage_counts=(2, 3),
    bounds=(1, 2),
    rounds=(2,),
    site_counts=(1, 2),
    verdicts=(True, False),
)

#: Bounded specs for --smoke: one small ring per verdict and site count.
SMOKE_BOUNDED_GRID = dict(
    stage_counts=(3,),
    bounds=(2,),
    rounds=(1,),
    site_counts=(1, 2),
    verdicts=(True, False),
)

#: Default mixed lock/barrier knot grid.
DEFAULT_KNOT_GRID = dict(
    pair_counts=(1, 2),
    rounds=(2,),
    site_counts=(1, 2),
    verdicts=(True, False),
)

#: Knot specs for --smoke.
SMOKE_KNOT_GRID = dict(
    pair_counts=(2,),
    rounds=(1,),
    site_counts=(1, 2),
    verdicts=(True, False),
)

#: Default predictive near-miss grid (both variants of every point —
#: the control is what makes the family a differential, not a demo).
DEFAULT_NEARMISS_GRID = dict(
    chain_lens=(2, 3),
    rounds=(1,),
    site_counts=(1, 2),
    realisable=(True, False),
)

#: Near-miss specs for --smoke.
SMOKE_NEARMISS_GRID = dict(
    chain_lens=(2,),
    rounds=(1,),
    site_counts=(1, 2),
    realisable=(True, False),
)


def nearmiss_grid_specs(
    chain_lens: Sequence[int],
    rounds: Sequence[int] = (1,),
    site_counts: Sequence[int] = (1,),
    realisable: Sequence[bool] = (True, False),
) -> List[NearMissSpec]:
    """The cross product of the near-miss grid axes."""
    return [
        NearMissSpec(chain_len=length, rounds=r, sites=sites, realisable=hit)
        for length, r, sites, hit in itertools.product(
            chain_lens, rounds, site_counts, realisable
        )
    ]


def bounded_grid_specs(
    stage_counts: Sequence[int],
    bounds: Sequence[int],
    rounds: Sequence[int] = (1,),
    site_counts: Sequence[int] = (1,),
    verdicts: Sequence[bool] = (True, False),
) -> List[BoundedSpec]:
    """The cross product of the bounded-pipeline grid axes."""
    return [
        BoundedSpec(stages=stages, bound=bound, rounds=r, sites=sites,
                    deadlock=verdict)
        for stages, bound, r, sites, verdict in itertools.product(
            stage_counts, bounds, rounds, site_counts, verdicts
        )
    ]


def knot_grid_specs(
    pair_counts: Sequence[int],
    rounds: Sequence[int] = (1,),
    site_counts: Sequence[int] = (1,),
    verdicts: Sequence[bool] = (True, False),
) -> List[KnotSpec]:
    """The cross product of the lock/barrier knot grid axes."""
    return [
        KnotSpec(pairs=pairs, rounds=r, sites=sites, deadlock=verdict)
        for pairs, r, sites, verdict in itertools.product(
            pair_counts, rounds, site_counts, verdicts
        )
    ]


def aio_grid_specs(
    task_counts: Sequence[int],
    shapes: Sequence[str] = AIO_SHAPES,
    verdicts: Sequence[bool] = (True, False),
) -> List[AioSpec]:
    """The cross product of the aio grid axes."""
    return [
        AioSpec(tasks=n, shape=shape, deadlock=verdict)
        for n, shape, verdict in itertools.product(task_counts, shapes, verdicts)
    ]


def churn_grid_specs(
    pools: Sequence[int],
    windows: Sequence[int],
    rounds: Sequence[int] = (4,),
    site_counts: Sequence[int] = (1,),
    verdicts: Sequence[bool] = (True, False),
) -> List[ChurnSpec]:
    """The cross product of the churn grid axes (invalid pool/window
    combinations — window larger than pool — are skipped)."""
    return [
        ChurnSpec(pool=pool, window=window, rounds=r, sites=sites, deadlock=verdict)
        for pool, window, r, sites, verdict in itertools.product(
            pools, windows, rounds, site_counts, verdicts
        )
        if window <= pool
    ]


def grid_specs(
    cycle_lens: Sequence[int],
    fan_outs: Sequence[int],
    site_counts: Sequence[int],
    rounds: Sequence[int] = (0,),
    verdicts: Sequence[bool] = (True, False),
) -> List[ScenarioSpec]:
    """The cross product of the grid axes as scenario specs."""
    return [
        ScenarioSpec(
            cycle_len=length, fan_out=fan, sites=sites, rounds=r, deadlock=verdict
        )
        for length, fan, sites, r, verdict in itertools.product(
            cycle_lens, fan_outs, site_counts, rounds, verdicts
        )
    ]


def generate_corpus(specs: Iterable) -> List[Trace]:
    """Generate every spec's trace, in grid order (fully deterministic)."""
    return [build_trace(spec) for spec in specs]


def write_corpus(
    out_dir,
    specs: Iterable,
    codecs: Sequence[str] = ("jsonl", "binary"),
) -> List[pathlib.Path]:
    """Generate and persist the corpus; returns the written paths.

    Each scenario (any spec family) is written once per requested
    codec, as ``<name>.jsonl`` and/or ``<name>.trace``.
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ext = {"jsonl": ".jsonl", "binary": ".trace"}
    paths: List[pathlib.Path] = []
    for spec in specs:
        trace = build_trace(spec)
        for codec in codecs:
            path = out_dir / f"{spec.name}{ext[codec]}"
            save_trace(trace, path, codec=codec)
            paths.append(path)
    return paths


def _verify_one(spec) -> bool:
    """Worker body for corpus verification (module-level, picklable)."""
    from repro.trace.replay import replay

    outcome = replay(build_trace(spec), mode="detection")
    return outcome.deadlocked == spec.deadlock


def verify_corpus(
    specs: Iterable, processes: int = 1
) -> List[Tuple[object, bool]]:
    """Replay every spec in detection mode and compare the verdict with
    the spec's ground truth.  Returns ``(spec, ok)`` pairs — the smoke
    job fails if any ``ok`` is False.

    ``processes > 1`` fans the specs out over worker processes (specs
    are generated *inside* the workers, so nothing but the tiny frozen
    dataclasses crosses the pipe); results keep spec order either way.
    """
    specs = list(specs)
    if processes > 1 and len(specs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(processes, len(specs))) as pool:
            oks = list(pool.map(_verify_one, specs))
    else:
        oks = [_verify_one(spec) for spec in specs]
    return list(zip(specs, oks))
