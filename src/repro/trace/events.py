"""The trace format: versioned records of a verified execution.

A *trace* is the event-based representation of Section 4.1 made
persistent: the totally-ordered stream of blocked-status changes (and
their synchronisation context) that the verification layer observed
during one run.  Replaying the stream through a fresh
:class:`~repro.core.checker.DeadlockChecker` reproduces the analysis of
the live run — deterministically, offline, and at batch throughput.

Six record kinds cover every observation point of the tool
architecture (Section 5.3's task observer plus Section 5.2's publishes):

* ``block`` — a task is about to block, with its full
  :class:`~repro.core.events.BlockedStatus` (waited events + local
  phases);
* ``unblock`` — the task stopped waiting (success, error or abort);
* ``register`` / ``advance`` — synchroniser context: membership and
  local-phase changes.  Replay does not need them (the blocked status is
  self-contained), but they make traces debuggable and let future
  analyses reconstruct phaser membership over time;
* ``publish`` — a distributed site replaced its whole encoded status
  bucket in the global store (the PR-1 bucket protocol, kept for old
  recordings);
* ``publish_delta`` — a distributed site appended one
  :mod:`repro.distributed.delta` wire delta (per-site sequence number,
  ``set``/``restore``/``clear`` ops or a full ``snapshot`` checkpoint)
  to its stream — the store write of the delta protocol.

Records carry a monotonically increasing ``seq`` stamped by the
producer; the stream order *is* the semantics, so codecs must preserve
it.  The format is versioned through :data:`TRACE_VERSION` in the trace
header; readers accept every version in :data:`SUPPORTED_VERSIONS`
(version 1 predates ``publish_delta``; version 3 adds the optional
``trace`` causal-context field on delta payloads) and reject the rest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.core.events import BlockedStatus, Event

#: Current trace-format version, written into every header.
TRACE_VERSION = 3

#: Versions this reader understands (v1 lacks ``publish_delta``; v3
#: added the optional delta ``trace`` context).
SUPPORTED_VERSIONS = (1, 2, 3)

#: Magic string identifying a trace (JSONL header field / binary magic).
TRACE_MAGIC = "armus-trace"


class TraceFormatError(ValueError):
    """A trace file (or stream) violates the format."""


class RecordKind(enum.Enum):
    """The kind of one trace record."""

    BLOCK = "block"
    UNBLOCK = "unblock"
    REGISTER = "register"
    ADVANCE = "advance"
    PUBLISH = "publish"
    PUBLISH_DELTA = "publish_delta"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# ---------------------------------------------------------------------------
# status (de)serialisation — the per-status wire form shared by BLOCK
# records and PUBLISH payloads (mirrors repro.distributed.store's format)
# ---------------------------------------------------------------------------
def status_to_obj(status: BlockedStatus) -> dict:
    """Serialise one blocked status to a plain JSON-able dict."""
    return {
        "waits": sorted([str(e.phaser), e.phase] for e in status.waits),
        "registered": {str(p): n for p, n in sorted(status.registered.items(), key=lambda kv: str(kv[0]))},
        "generation": status.generation,
    }


def status_from_obj(obj: Mapping) -> BlockedStatus:
    """Inverse of :func:`status_to_obj`; raises :class:`TraceFormatError`
    on malformed input."""
    try:
        waits = frozenset(Event(p, n) for p, n in obj["waits"])
        registered = {str(p): int(n) for p, n in obj["registered"].items()}
        generation = int(obj.get("generation", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed blocked status: {obj!r}") from exc
    return BlockedStatus(waits=waits, registered=registered, generation=generation)


# ---------------------------------------------------------------------------
# delta payload validation — the per-record wire form of PUBLISH_DELTA
# (the protocol constants and semantics live in repro.distributed.delta,
# the single owner; this is format validation only)
# ---------------------------------------------------------------------------
def delta_payload_from_obj(obj: Mapping) -> dict:
    """Validate and normalise one PUBLISH_DELTA payload.

    Raises :class:`TraceFormatError` on malformed input; returns a plain
    dict with canonical key order (``v``, ``stream``, ``seq``, ``kind``,
    ``set``, ``restore``, ``clear``, then ``trace`` when present).
    Every status blob is validated through :func:`status_from_obj` so a
    bad delta fails at load time, not mid-replay.  The optional
    ``trace`` member is the causal context stamped by publishers with
    tracing enabled — a flat object of scalar values, legal from
    protocol v2 on.  (Protocol constants are imported lazily from their
    owner, :mod:`repro.distributed.delta` — a top-level import would
    cycle through the trace package init.)
    """
    from repro.distributed.delta import DELTA_KINDS, PROTOCOL_VERSION

    try:
        version = int(obj.get("v", PROTOCOL_VERSION))
        stream = str(obj["stream"])
        seq = int(obj["seq"])
        kind = obj["kind"]
        set_ops = obj["set"]
        restore_ops = obj["restore"]
        clear_ops = obj["clear"]
        trace_ctx = obj.get("trace")
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed delta payload: {obj!r}") from exc
    if not stream:
        raise TraceFormatError("delta payload needs a non-empty stream token")
    if not 1 <= version <= PROTOCOL_VERSION:
        raise TraceFormatError(f"unsupported delta protocol version {version}")
    if kind not in DELTA_KINDS:
        raise TraceFormatError(f"unknown delta kind {kind!r}")
    if seq < 1:
        raise TraceFormatError(f"delta seq must be >= 1, got {seq}")
    if not isinstance(set_ops, Mapping) or not isinstance(restore_ops, Mapping):
        raise TraceFormatError("delta set/restore must be objects")
    if isinstance(clear_ops, (str, bytes)) or not hasattr(clear_ops, "__iter__"):
        raise TraceFormatError("delta clear must be a list of task ids")
    if kind == "snapshot" and (restore_ops or list(clear_ops)):
        raise TraceFormatError("snapshot deltas carry only a set section")
    if trace_ctx is not None:
        if version < 2:
            raise TraceFormatError(
                "delta trace context requires protocol version >= 2"
            )
        if not isinstance(trace_ctx, Mapping):
            raise TraceFormatError("delta trace context must be an object")
        for key, value in trace_ctx.items():
            if not isinstance(value, (str, int, float, bool)):
                raise TraceFormatError(
                    f"delta trace context value for {key!r} must be scalar"
                )
    for blob in set_ops.values():
        status_from_obj(blob)
    for blob in restore_ops.values():
        status_from_obj(blob)
    payload = {
        "v": version,
        "stream": stream,
        "seq": seq,
        "kind": kind,
        "set": {str(t): dict(b) for t, b in set_ops.items()},
        "restore": {str(t): dict(b) for t, b in restore_ops.items()},
        "clear": [str(t) for t in clear_ops],
    }
    if trace_ctx is not None:
        payload["trace"] = {str(k): v for k, v in sorted(trace_ctx.items())}
    return payload


# ---------------------------------------------------------------------------
# report (de)serialisation — the wire form a checker service ships to
# remote clients (and the canonical form differential tests compare)
# ---------------------------------------------------------------------------
def origin_to_obj(origin) -> dict:
    """One :class:`~repro.core.report.RecordOrigin` as a plain dict
    (optional members omitted, so local and distributed origins encode
    minimally)."""
    obj = {"ordinal": origin.ordinal, "kind": origin.kind}
    if origin.site is not None:
        obj["site"] = str(origin.site)
    if origin.stream is not None:
        obj["stream"] = str(origin.stream)
    if origin.seq is not None:
        obj["seq"] = int(origin.seq)
    return obj


def origin_from_obj(obj: Mapping):
    """Inverse of :func:`origin_to_obj`."""
    from repro.core.report import RecordOrigin

    try:
        return RecordOrigin(
            ordinal=int(obj["ordinal"]),
            kind=str(obj["kind"]),
            site=obj.get("site"),
            stream=obj.get("stream"),
            seq=None if obj.get("seq") is None else int(obj["seq"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed record origin: {obj!r}") from exc


def _vertex_to_obj(vertex):
    # Cycle vertices are tasks (WFG) or events (SG); a tagged pair keeps
    # the two distinguishable through JSON.
    if isinstance(vertex, Event):
        return ["e", str(vertex.phaser), vertex.phase]
    return ["t", str(vertex)]


def _vertex_from_obj(obj):
    try:
        tag = obj[0]
        if tag == "e":
            return Event(obj[1], int(obj[2]))
        if tag == "t":
            return str(obj[1])
    except (IndexError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed cycle vertex: {obj!r}") from exc
    raise TraceFormatError(f"unknown cycle vertex tag in {obj!r}")


def report_to_obj(report) -> dict:
    """Serialise one :class:`~repro.core.report.DeadlockReport` to a
    plain JSON-able dict.

    Order-preserving for ``tasks``/``events``/``cycle`` (cycle order is
    semantics) and canonical otherwise, so
    ``json.dumps(report_to_obj(r), sort_keys=True)`` is a stable byte
    form — what the network differential tests pin.  Replay/service
    provenance enrichments encode when present and are omitted when
    absent, keeping live-path reports minimal.
    """
    obj = {
        "tasks": [str(t) for t in report.tasks],
        "events": [[str(e.phaser), e.phase] for e in report.events],
        "cycle": [_vertex_to_obj(v) for v in report.cycle],
        "model": report.model_used.value,
        "edge_count": report.edge_count,
        "avoided": report.avoided,
    }
    if report.provenance is not None:
        obj["provenance"] = [
            {
                "source": edge.source,
                "target": edge.target,
                "source_task": edge.source_task,
                "target_task": edge.target_task,
                "source_origin": origin_to_obj(edge.source_origin),
                "target_origin": origin_to_obj(edge.target_origin),
            }
            for edge in report.provenance
        ]
    if report.detection_lag is not None:
        obj["detection_lag"] = report.detection_lag
    if report.detected_at is not None:
        obj["detected_at"] = report.detected_at
    return obj


def report_from_obj(obj: Mapping):
    """Inverse of :func:`report_to_obj`; raises
    :class:`TraceFormatError` on malformed input."""
    from repro.core.report import DeadlockReport, EdgeProvenance
    from repro.core.selection import GraphModel

    try:
        provenance = None
        if obj.get("provenance") is not None:
            provenance = tuple(
                EdgeProvenance(
                    source=str(edge["source"]),
                    target=str(edge["target"]),
                    source_task=str(edge["source_task"]),
                    target_task=str(edge["target_task"]),
                    source_origin=origin_from_obj(edge["source_origin"]),
                    target_origin=origin_from_obj(edge["target_origin"]),
                )
                for edge in obj["provenance"]
            )
        return DeadlockReport(
            tasks=tuple(str(t) for t in obj["tasks"]),
            events=tuple(Event(p, int(n)) for p, n in obj["events"]),
            cycle=tuple(_vertex_from_obj(v) for v in obj["cycle"]),
            model_used=GraphModel(obj["model"]),
            edge_count=int(obj["edge_count"]),
            avoided=bool(obj["avoided"]),
            provenance=provenance,
            detection_lag=(
                None if obj.get("detection_lag") is None
                else int(obj["detection_lag"])
            ),
            detected_at=(
                None if obj.get("detected_at") is None
                else int(obj["detected_at"])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed deadlock report: {obj!r}") from exc


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TraceRecord:
    """One observation in a trace.

    Which fields are populated depends on :attr:`kind`:

    =============  =======================================================
    kind           fields
    =============  =======================================================
    BLOCK          ``task``, ``status``
    UNBLOCK        ``task``
    REGISTER       ``task``, ``phaser``, ``phase``
    ADVANCE        ``task``, ``phaser``, ``phase``
    PUBLISH        ``site``, ``payload`` (task -> encoded status)
    PUBLISH_DELTA  ``site``, ``payload`` (the delta wire object)
    =============  =======================================================
    """

    seq: int
    kind: RecordKind
    task: Optional[str] = None
    status: Optional[BlockedStatus] = None
    phaser: Optional[str] = None
    phase: Optional[int] = None
    site: Optional[str] = None
    payload: Optional[Mapping[str, Mapping]] = None

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise TraceFormatError(f"negative seq: {self.seq}")
        k = self.kind
        if k in (RecordKind.BLOCK, RecordKind.UNBLOCK, RecordKind.REGISTER, RecordKind.ADVANCE):
            if self.task is None:
                raise TraceFormatError(f"{k.value} record without a task")
        if k is RecordKind.BLOCK and self.status is None:
            raise TraceFormatError("block record without a status")
        if k in (RecordKind.REGISTER, RecordKind.ADVANCE):
            if self.phaser is None or self.phase is None:
                raise TraceFormatError(f"{k.value} record needs phaser and phase")
            if self.phase < 0:
                raise TraceFormatError(f"negative phase: {self.phase}")
        if k is RecordKind.PUBLISH:
            if self.site is None or self.payload is None:
                raise TraceFormatError("publish record needs site and payload")
        if k is RecordKind.PUBLISH_DELTA:
            if self.site is None or self.payload is None:
                raise TraceFormatError("publish_delta record needs site and payload")
            if "seq" not in self.payload or "kind" not in self.payload:
                raise TraceFormatError(
                    "publish_delta payload needs seq and kind fields"
                )


def block(seq: int, task: str, status: BlockedStatus) -> TraceRecord:
    """A ``block`` record: ``task`` is about to wait with ``status``."""
    return TraceRecord(seq=seq, kind=RecordKind.BLOCK, task=task, status=status)


def unblock(seq: int, task: str) -> TraceRecord:
    """An ``unblock`` record: ``task`` stopped waiting."""
    return TraceRecord(seq=seq, kind=RecordKind.UNBLOCK, task=task)


def register(seq: int, task: str, phaser: str, phase: int) -> TraceRecord:
    """A ``register`` record: ``task`` joined ``phaser`` at ``phase``."""
    return TraceRecord(
        seq=seq, kind=RecordKind.REGISTER, task=task, phaser=phaser, phase=phase
    )


def advance(seq: int, task: str, phaser: str, phase: int) -> TraceRecord:
    """An ``advance`` record: ``task`` arrived at ``phaser``, reaching
    local phase ``phase``."""
    return TraceRecord(
        seq=seq, kind=RecordKind.ADVANCE, task=task, phaser=phaser, phase=phase
    )


def publish(seq: int, site: str, payload: Mapping[str, Mapping]) -> TraceRecord:
    """A ``publish`` record: ``site`` replaced its store bucket with
    ``payload`` (task id -> encoded status, the store wire format)."""
    return TraceRecord(seq=seq, kind=RecordKind.PUBLISH, site=site, payload=dict(payload))


def publish_delta(seq: int, site: str, payload: Mapping) -> TraceRecord:
    """A ``publish_delta`` record: ``site`` appended the delta wire
    object ``payload`` (see :mod:`repro.distributed.delta`) to its
    stream in the global store."""
    return TraceRecord(
        seq=seq, kind=RecordKind.PUBLISH_DELTA, site=site, payload=dict(payload)
    )


# ---------------------------------------------------------------------------
# the trace container
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TraceHeader:
    """Metadata written before the records.

    ``meta`` is free-form (scenario parameters, recording mode, expected
    verdicts); generators use it to make corpora self-describing.
    """

    version: int = TRACE_VERSION
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.version not in SUPPORTED_VERSIONS:
            raise TraceFormatError(
                f"unsupported trace version {self.version} "
                f"(this reader understands {SUPPORTED_VERSIONS})"
            )


@dataclass(frozen=True)
class Trace:
    """A complete trace: header plus the ordered record stream."""

    header: TraceHeader
    records: Tuple[TraceRecord, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.records, tuple):
            object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def kind_counts(self) -> dict:
        """Record counts per kind (the ``stats`` subcommand's summary)."""
        counts: dict = {}
        for rec in self.records:
            counts[rec.kind.value] = counts.get(rec.kind.value, 0) + 1
        return counts
