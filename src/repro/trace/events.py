"""The trace format: versioned records of a verified execution.

A *trace* is the event-based representation of Section 4.1 made
persistent: the totally-ordered stream of blocked-status changes (and
their synchronisation context) that the verification layer observed
during one run.  Replaying the stream through a fresh
:class:`~repro.core.checker.DeadlockChecker` reproduces the analysis of
the live run — deterministically, offline, and at batch throughput.

Five record kinds cover every observation point of the tool
architecture (Section 5.3's task observer plus Section 5.2's publishes):

* ``block`` — a task is about to block, with its full
  :class:`~repro.core.events.BlockedStatus` (waited events + local
  phases);
* ``unblock`` — the task stopped waiting (success, error or abort);
* ``register`` / ``advance`` — synchroniser context: membership and
  local-phase changes.  Replay does not need them (the blocked status is
  self-contained), but they make traces debuggable and let future
  analyses reconstruct phaser membership over time;
* ``publish`` — a distributed site wrote its encoded status bucket to
  the global store (the paper's Redis ``put``).

Records carry a monotonically increasing ``seq`` stamped by the
producer; the stream order *is* the semantics, so codecs must preserve
it.  The format is versioned through :data:`TRACE_VERSION` in the trace
header; readers reject versions they do not understand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.core.events import BlockedStatus, Event

#: Current trace-format version, written into every header.
TRACE_VERSION = 1

#: Magic string identifying a trace (JSONL header field / binary magic).
TRACE_MAGIC = "armus-trace"


class TraceFormatError(ValueError):
    """A trace file (or stream) violates the format."""


class RecordKind(enum.Enum):
    """The kind of one trace record."""

    BLOCK = "block"
    UNBLOCK = "unblock"
    REGISTER = "register"
    ADVANCE = "advance"
    PUBLISH = "publish"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# ---------------------------------------------------------------------------
# status (de)serialisation — the per-status wire form shared by BLOCK
# records and PUBLISH payloads (mirrors repro.distributed.store's format)
# ---------------------------------------------------------------------------
def status_to_obj(status: BlockedStatus) -> dict:
    """Serialise one blocked status to a plain JSON-able dict."""
    return {
        "waits": sorted([str(e.phaser), e.phase] for e in status.waits),
        "registered": {str(p): n for p, n in sorted(status.registered.items(), key=lambda kv: str(kv[0]))},
        "generation": status.generation,
    }


def status_from_obj(obj: Mapping) -> BlockedStatus:
    """Inverse of :func:`status_to_obj`; raises :class:`TraceFormatError`
    on malformed input."""
    try:
        waits = frozenset(Event(p, n) for p, n in obj["waits"])
        registered = {str(p): int(n) for p, n in obj["registered"].items()}
        generation = int(obj.get("generation", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed blocked status: {obj!r}") from exc
    return BlockedStatus(waits=waits, registered=registered, generation=generation)


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TraceRecord:
    """One observation in a trace.

    Which fields are populated depends on :attr:`kind`:

    ========  =======================================================
    kind      fields
    ========  =======================================================
    BLOCK     ``task``, ``status``
    UNBLOCK   ``task``
    REGISTER  ``task``, ``phaser``, ``phase``
    ADVANCE   ``task``, ``phaser``, ``phase``
    PUBLISH   ``site``, ``payload`` (task -> encoded status)
    ========  =======================================================
    """

    seq: int
    kind: RecordKind
    task: Optional[str] = None
    status: Optional[BlockedStatus] = None
    phaser: Optional[str] = None
    phase: Optional[int] = None
    site: Optional[str] = None
    payload: Optional[Mapping[str, Mapping]] = None

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise TraceFormatError(f"negative seq: {self.seq}")
        k = self.kind
        if k in (RecordKind.BLOCK, RecordKind.UNBLOCK, RecordKind.REGISTER, RecordKind.ADVANCE):
            if self.task is None:
                raise TraceFormatError(f"{k.value} record without a task")
        if k is RecordKind.BLOCK and self.status is None:
            raise TraceFormatError("block record without a status")
        if k in (RecordKind.REGISTER, RecordKind.ADVANCE):
            if self.phaser is None or self.phase is None:
                raise TraceFormatError(f"{k.value} record needs phaser and phase")
            if self.phase < 0:
                raise TraceFormatError(f"negative phase: {self.phase}")
        if k is RecordKind.PUBLISH:
            if self.site is None or self.payload is None:
                raise TraceFormatError("publish record needs site and payload")


def block(seq: int, task: str, status: BlockedStatus) -> TraceRecord:
    """A ``block`` record: ``task`` is about to wait with ``status``."""
    return TraceRecord(seq=seq, kind=RecordKind.BLOCK, task=task, status=status)


def unblock(seq: int, task: str) -> TraceRecord:
    """An ``unblock`` record: ``task`` stopped waiting."""
    return TraceRecord(seq=seq, kind=RecordKind.UNBLOCK, task=task)


def register(seq: int, task: str, phaser: str, phase: int) -> TraceRecord:
    """A ``register`` record: ``task`` joined ``phaser`` at ``phase``."""
    return TraceRecord(
        seq=seq, kind=RecordKind.REGISTER, task=task, phaser=phaser, phase=phase
    )


def advance(seq: int, task: str, phaser: str, phase: int) -> TraceRecord:
    """An ``advance`` record: ``task`` arrived at ``phaser``, reaching
    local phase ``phase``."""
    return TraceRecord(
        seq=seq, kind=RecordKind.ADVANCE, task=task, phaser=phaser, phase=phase
    )


def publish(seq: int, site: str, payload: Mapping[str, Mapping]) -> TraceRecord:
    """A ``publish`` record: ``site`` replaced its store bucket with
    ``payload`` (task id -> encoded status, the store wire format)."""
    return TraceRecord(seq=seq, kind=RecordKind.PUBLISH, site=site, payload=dict(payload))


# ---------------------------------------------------------------------------
# the trace container
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TraceHeader:
    """Metadata written before the records.

    ``meta`` is free-form (scenario parameters, recording mode, expected
    verdicts); generators use it to make corpora self-describing.
    """

    version: int = TRACE_VERSION
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.version != TRACE_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {self.version} "
                f"(this reader understands {TRACE_VERSION})"
            )


@dataclass(frozen=True)
class Trace:
    """A complete trace: header plus the ordered record stream."""

    header: TraceHeader
    records: Tuple[TraceRecord, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.records, tuple):
            object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def kind_counts(self) -> dict:
        """Record counts per kind (the ``stats`` subcommand's summary)."""
        counts: dict = {}
        for rec in self.records:
            counts[rec.kind.value] = counts.get(rec.kind.value, 0) + 1
        return counts
