"""Canonical identifier renaming: compare traces across processes.

Task ids (``T42``), resource ids (``phaser#17``) and site names are
minted from process-global counters, so two recordings of the *same*
scenario — a threaded run and an asyncio run, or two CI jobs — differ
textually even when they are record-for-record identical.
:func:`canonical_trace` rewrites every identifier to its order of first
appearance (``t0, t1, ...`` / ``r0, r1, ...`` / ``s0, s1, ...``),
walking records in stream order and each record's fields in a fixed
order, so that behaviourally identical traces become *byte*-identical
under either codec.

This is what the backend-equivalence tests golden-diff: the thread and
aio drivers of one scenario must normalise to the same bytes, and their
replays must report the same deadlock.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping, Tuple

from repro.core.events import BlockedStatus, Event
from repro.trace import events as ev
from repro.trace.events import RecordKind, Trace, TraceHeader, TraceRecord

_DIGITS = re.compile(r"(\d+)")


def _natural_key(name) -> Tuple:
    """Order identifiers with digit runs compared numerically.

    When one record introduces several unseen identifiers at once
    (a multi-resource status, a publish payload), their discovery order
    must not depend on the *offset* of the process-global counters that
    minted them: under a plain string sort ``phaser#10 < phaser#9`` but
    ``phaser#2 < phaser#3``, so two behaviourally identical runs could
    normalise differently.  Numeric comparison of the counter suffixes
    (``9 < 10``) preserves mint order whatever the offset.
    """
    parts = _DIGITS.split(str(name))
    return tuple(int(p) if p.isdigit() else p for p in parts)


class _Renamer:
    """First-appearance renaming for one identifier namespace."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._names: Dict[str, str] = {}

    def __call__(self, name) -> str:
        key = str(name)
        mapped = self._names.get(key)
        if mapped is None:
            mapped = f"{self.prefix}{len(self._names)}"
            self._names[key] = mapped
        return mapped


def _canonical_status(status: BlockedStatus, task, resource) -> BlockedStatus:
    # Discover names deterministically: registered then waits, each in
    # natural-sorted original order (neither set/dict iteration order
    # nor counter offsets may leak into the assignment).
    registered = {
        resource(rid): phase
        for rid, phase in sorted(
            status.registered.items(), key=lambda kv: _natural_key(kv[0])
        )
    }
    waits = frozenset(
        Event(resource(e.phaser), e.phase)
        for e in sorted(status.waits, key=lambda e: (_natural_key(e.phaser), e.phase))
    )
    return BlockedStatus(
        waits=waits, registered=registered, generation=status.generation
    )


def _canonical_payload(payload: Mapping, task, resource) -> Dict[str, dict]:
    # Publish payloads carry *encoded* statuses (the store wire format).
    out: Dict[str, dict] = {}
    for task_id, blob in sorted(payload.items(), key=lambda kv: _natural_key(kv[0])):
        out[task(task_id)] = {
            "waits": sorted(
                [resource(p), n]
                for p, n in sorted(
                    blob["waits"], key=lambda w: (_natural_key(w[0]), w[1])
                )
            ),
            "registered": {
                resource(p): n
                for p, n in sorted(
                    blob["registered"].items(), key=lambda kv: _natural_key(kv[0])
                )
            },
            "generation": blob.get("generation", 0),
        }
    return out


def canonical_trace(trace: Trace) -> Trace:
    """``trace`` with every task/resource/site renamed to canonical,
    first-appearance identifiers (``t0``/``r0``/``s0`` ...).

    Record order, kinds, seqs, phases and the header are preserved; only
    names change.  The assignment is invariant to both spelling and
    counter offset: names are discovered in stream order, and several
    names first appearing in one record are ordered by
    :func:`_natural_key` (digit runs compared numerically), so
    ``phaser#9``/``phaser#10`` in one run and ``phaser#2``/``phaser#3``
    in another — the same mint order, different counter bases — receive
    the same canonical ids.  Record-for-record identical runs therefore
    serialise to identical canonical bytes.
    """
    task = _Renamer("t")
    resource = _Renamer("r")
    site = _Renamer("s")
    # Stream (publisher-incarnation) tokens are minted randomly per
    # live run, so they get their own canonical namespace.
    stream = _Renamer("c")
    records = []
    for rec in trace.records:
        kind = rec.kind
        if kind is RecordKind.BLOCK:
            records.append(
                ev.block(
                    rec.seq,
                    task(rec.task),
                    _canonical_status(rec.status, task, resource),
                )
            )
        elif kind is RecordKind.UNBLOCK:
            records.append(ev.unblock(rec.seq, task(rec.task)))
        elif kind in (RecordKind.REGISTER, RecordKind.ADVANCE):
            make = ev.register if kind is RecordKind.REGISTER else ev.advance
            records.append(
                make(rec.seq, task(rec.task), resource(rec.phaser), rec.phase)
            )
        elif kind is RecordKind.PUBLISH:
            records.append(
                ev.publish(
                    rec.seq,
                    site(rec.site),
                    _canonical_payload(rec.payload, task, resource),
                )
            )
        else:  # PUBLISH_DELTA
            delta = rec.payload
            # Walk the delta's sections in a fixed order (set, restore,
            # clear) so identifier discovery cannot depend on payload
            # spelling; seq/kind/v are structural and pass through.
            records.append(
                ev.publish_delta(
                    rec.seq,
                    site(rec.site),
                    {
                        "v": delta.get("v", 1),
                        "stream": stream(delta["stream"]),
                        "seq": delta["seq"],
                        "kind": delta["kind"],
                        "set": _canonical_payload(delta["set"], task, resource),
                        "restore": _canonical_payload(
                            delta["restore"], task, resource
                        ),
                        "clear": [
                            task(t)
                            for t in sorted(delta["clear"], key=_natural_key)
                        ],
                    },
                )
            )
    header = TraceHeader(version=trace.header.version, meta=dict(trace.header.meta))
    return Trace(header=header, records=tuple(records))
