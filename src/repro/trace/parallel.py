"""Multi-process corpus replay with deterministic result merging.

A trace corpus is an embarrassingly parallel work-list: files share no
state, so replaying N of them is N independent checker runs.  This
module fans a corpus out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(one worker replays one file at a time — real parallelism, since each
worker is its own interpreter) and merges the outcomes into a single
:class:`CorpusReplayResult`.

Determinism is the design constraint, not an afterthought:

* the work-list is discovered in sorted path order and results are
  merged in *submission* order (``executor.map`` preserves it), so the
  merged output is independent of worker scheduling;
* per-file reports are themselves deterministic because cycle
  extraction is canonical (see :mod:`repro.core.cycles`) — two
  processes with different hash seeds extract the same cycle;
* aggregate accounting uses :meth:`~repro.core.checker.CheckStats.merge`,
  which is order-insensitive for every field it folds (sums, max,
  histogram).

Net effect: ``replay_corpus(dir, processes=4)`` produces reports
byte-identical to ``replay_corpus(dir, processes=1)`` — pinned by CI,
which diffs the CLI's stdout between the two.  Timing fields
(``duration_s``, per-file throughput) are the only nondeterministic
outputs, and the CLI keeps them off stdout for exactly that reason.
"""

from __future__ import annotations

import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.checker import CheckStats
from repro.core.report import DeadlockReport
from repro.core.selection import DEFAULT_THRESHOLD_FACTOR, GraphModel
from repro.obs.registry import MetricsRegistry
from repro.trace.codec import PathLike, load_trace
from repro.trace.replay import DETECTION, ReplayResult, ReplayEngine

#: File suffixes recognised as trace files when expanding directories.
TRACE_SUFFIXES = (".jsonl", ".json", ".trace", ".bin")


def discover_traces(
    sources: Union[PathLike, Sequence[PathLike]]
) -> List[pathlib.Path]:
    """Expand files and directories into a deterministic work-list.

    Directories contribute their trace files (by suffix) in sorted name
    order; explicit files are kept as given.  Duplicates are dropped,
    first occurrence wins — the resulting order *is* the merge order.
    """
    if isinstance(sources, (str, pathlib.Path)) or hasattr(sources, "__fspath__"):
        sources = [sources]
    paths: List[pathlib.Path] = []
    for src in sources:
        path = pathlib.Path(src)
        if path.is_dir():
            paths.extend(
                sorted(
                    p
                    for p in path.iterdir()
                    if p.is_file() and p.suffix.lower() in TRACE_SUFFIXES
                )
            )
        else:
            paths.append(path)
    unique: List[pathlib.Path] = []
    seen = set()
    for path in paths:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


@dataclass
class CorpusEntry:
    """One file's replay outcome inside a corpus run."""

    path: pathlib.Path
    meta: dict
    result: ReplayResult

    @property
    def expected(self) -> Optional[bool]:
        """The trace's self-declared verdict, if it carries one."""
        value = self.meta.get("expect_deadlock")
        return None if value is None else bool(value)

    @property
    def verdict_ok(self) -> bool:
        """Whether the replay matched the expected verdict (vacuously
        true for traces without one)."""
        expected = self.expected
        return expected is None or self.result.deadlocked == expected


@dataclass
class CorpusReplayResult:
    """The merged outcome of a corpus replay.

    ``entries`` preserves work-list order; ``stats`` is the
    :meth:`CheckStats.merge` fold over every file's checker accounting
    — the corpus-wide Table 3 quantities.
    """

    mode: str
    processes: int
    entries: List[CorpusEntry] = field(default_factory=list)
    stats: CheckStats = field(default_factory=CheckStats)
    #: The :meth:`~repro.obs.registry.MetricsRegistry.merge` fold over
    #: every file's run registry.  Workers build theirs independently
    #: and the merge is order-insensitive, so the non-volatile snapshot
    #: is byte-identical across process counts.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    duration_s: float = 0.0

    @property
    def records_processed(self) -> int:
        return sum(e.result.records_processed for e in self.entries)

    @property
    def checks_run(self) -> int:
        return sum(e.result.checks_run for e in self.entries)

    @property
    def reports(self) -> List[DeadlockReport]:
        """All reports, in work-list order then per-file discovery order."""
        out: List[DeadlockReport] = []
        for entry in self.entries:
            out.extend(entry.result.reports)
        return out

    @property
    def mismatches(self) -> List[CorpusEntry]:
        """Entries whose replay verdict contradicts their metadata."""
        return [e for e in self.entries if not e.verdict_ok]

    @property
    def events_per_sec(self) -> float:
        """Wall-clock corpus throughput (the fan-out speedup metric)."""
        if self.duration_s <= 0:
            return 0.0
        return self.records_processed / self.duration_s


def _replay_one(
    args: Tuple[str, str, GraphModel, float, int, bool, bool, bool]
) -> Tuple[dict, ReplayResult]:
    """Worker body: replay one file; must stay module-level picklable."""
    path, mode, model, threshold_factor, check_every, shard, stream, incremental = args
    engine = ReplayEngine(
        mode=mode,
        model=model,
        threshold_factor=threshold_factor,
        check_every=check_every,
        shard_components=shard,
        incremental=incremental,
    )
    if stream:
        from repro.trace.stream import iter_load

        source = iter_load(path)
        meta = dict(source.header.meta)
    else:
        trace = load_trace(path)
        meta = dict(trace.header.meta)
        source = trace
    return meta, engine.run(source)


def replay_corpus(
    sources: Union[PathLike, Sequence[PathLike]],
    mode: str = DETECTION,
    model: GraphModel = GraphModel.AUTO,
    threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
    check_every: int = 1,
    shard_components: bool = False,
    stream: bool = False,
    incremental: bool = False,
    processes: int = 1,
) -> CorpusReplayResult:
    """Replay every trace under ``sources``, fanning out over processes.

    ``processes <= 1`` runs in-process (the serial reference);
    ``processes = N`` uses a pool of N workers.  Either way the merged
    result is identical — only ``duration_s`` changes.
    """
    paths = discover_traces(sources)
    if not paths:
        raise ValueError(f"no trace files found under {sources!r}")
    work = [
        (str(p), mode, model, threshold_factor, check_every, shard_components,
         stream, incremental)
        for p in paths
    ]
    t0 = time.perf_counter()
    if processes <= 1 or len(paths) == 1:
        outcomes: Iterable[Tuple[dict, ReplayResult]] = map(_replay_one, work)
        outcomes = list(outcomes)
    else:
        with ProcessPoolExecutor(max_workers=min(processes, len(paths))) as pool:
            outcomes = list(pool.map(_replay_one, work))
    merged = CorpusReplayResult(mode=mode, processes=max(1, processes))
    for path, (meta, result) in zip(paths, outcomes):
        merged.entries.append(CorpusEntry(path=path, meta=meta, result=result))
        merged.stats.merge(result.stats)
        merged.metrics.merge(result.metrics)
    merged.duration_s = time.perf_counter() - t0
    return merged
