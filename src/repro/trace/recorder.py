"""`TraceRecorder`: capture a live run as a replayable trace.

The recorder is the write side of the trace subsystem.  It is attached
to the observation points of the existing layers with one constructor
flag each:

* ``ArmusRuntime(recorder=...)`` — every ``block_entry`` /
  ``block_exit`` (and the phaser register/arrive context hooks) appends
  a record;
* ``InMemoryStore(recorder=...)`` / ``ReplicatedStore(recorder=...)`` —
  every site publish appends a ``publish`` record;
* ``Interpreter(recorder=...)`` — the PL interpreter records the
  blocked-set diffs of its ``phi(S)`` publications;
* ``Site(recorder=...)`` / ``Cluster(recorder=...)`` — forward the
  recorder to their runtime(s) and store.

Recording is deliberately dumb: append-only, one lock, no I/O until
:meth:`TraceRecorder.save`.  The overhead on the instrumented path is a
dataclass construction and a list append — small enough to record runs
whose verification is OFF (record now, verify offline later), which is
the trace subsystem's whole point.

For runs too long to buffer, :class:`~repro.trace.stream.StreamingRecorder`
swaps the list for the output file: it overrides :meth:`TraceRecorder._append`
— the single sink every ``record_*`` method funnels through — to encode
and write each record as it arrives, keeping memory O(1).

Task, phaser and site identifiers are coerced to ``str`` at record time
so that in-memory traces equal their decoded round-trips.

The recorder is backend-neutral by construction: both wait drivers
(threaded :func:`~repro.runtime.observer.verified_wait` and asyncio
:func:`~repro.aio.observer.averified_wait`) route through the same
runtime hooks, so an asyncio run records the same versioned format —
compare recordings across backends with
:func:`~repro.trace.normalize.canonical_trace`.
"""

from __future__ import annotations

import threading
from typing import List, Mapping, Optional

from repro.core.events import BlockedStatus
from repro.trace import events as ev
from repro.trace.codec import save_trace


class TraceRecorder:
    """Thread-safe, append-only collector of trace records.

    Parameters
    ----------
    meta:
        Free-form metadata stored in the trace header (scenario name,
        recording mode, expected verdict, ...).
    """

    def __init__(self, meta: Optional[Mapping[str, object]] = None) -> None:
        self.meta: dict = dict(meta or {})
        self._lock = threading.Lock()
        self._records: List[ev.TraceRecord] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # observation points
    # ------------------------------------------------------------------
    def _append(self, make) -> ev.TraceRecord:
        # The one overridable sink: subclasses that stream records
        # elsewhere replace this method and inherit every record_* hook.
        with self._lock:
            rec = make(self._seq)
            self._seq += 1
            self._records.append(rec)
            return rec

    def record_block(self, task, status: BlockedStatus) -> ev.TraceRecord:
        """``task`` is about to block with ``status``."""
        return self._append(lambda seq: ev.block(seq, str(task), status))

    def record_unblock(self, task) -> ev.TraceRecord:
        """``task`` stopped waiting."""
        return self._append(lambda seq: ev.unblock(seq, str(task)))

    def record_register(self, task, phaser, phase: int) -> ev.TraceRecord:
        """``task`` registered with ``phaser`` at local ``phase``."""
        return self._append(lambda seq: ev.register(seq, str(task), str(phaser), phase))

    def record_advance(self, task, phaser, phase: int) -> ev.TraceRecord:
        """``task`` arrived at ``phaser``, reaching local ``phase``."""
        return self._append(lambda seq: ev.advance(seq, str(task), str(phaser), phase))

    def record_publish(self, site, payload: Mapping) -> ev.TraceRecord:
        """``site`` replaced its store bucket with ``payload``."""
        return self._append(lambda seq: ev.publish(seq, str(site), payload))

    def record_publish_delta(self, site, payload: Mapping) -> ev.TraceRecord:
        """``site`` appended the delta wire object ``payload`` to its
        stream in the global store (the delta-protocol write)."""
        return self._append(lambda seq: ev.publish_delta(seq, str(site), payload))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def trace(self) -> ev.Trace:
        """A consistent snapshot of everything recorded so far."""
        with self._lock:
            records = tuple(self._records)
        return ev.Trace(
            header=ev.TraceHeader(version=ev.TRACE_VERSION, meta=dict(self.meta)),
            records=records,
        )

    def save(self, path, codec: Optional[str] = None):
        """Snapshot and write to ``path`` (codec inferred from extension)."""
        return save_trace(self.trace(), path, codec=codec)

    def clear(self) -> None:
        """Drop everything recorded so far (the seq counter keeps going)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
