"""Offline replay: stream a trace back through the deadlock checker.

Replay turns the live verifier into a batch engine: the recorded
blocked-status stream is re-applied to a fresh
:class:`~repro.core.checker.DeadlockChecker` in record order, producing
the same :class:`~repro.core.report.DeadlockReport` evidence the live
run produced — but deterministically (no scheduler, no monitor timing)
and at memory bandwidth rather than thread speed.

Two replay modes mirror the paper's verification modes:

* **detection** — ``block``/``unblock`` records update the dependency
  store and a check runs after every state change (``check_every``
  raises the cadence for throughput runs).  Reports are de-duplicated by
  task set, exactly like a :class:`~repro.distributed.site.Site` does,
  so a persisting deadlock is reported once.
* **avoidance** — every ``block`` record is vetted with
  ``check_before_block`` before being published, reproducing the
  refuse-instead-of-block behaviour offline.  Distributed traces
  (``publish`` records) carry whole buckets, not vettable individual
  blocks, so avoidance replay rejects them with :class:`ValueError`.

``publish`` records (the legacy bucket protocol) and ``publish_delta``
records (the live delta protocol: per-site sequence numbers,
``set``/``restore``/``clear`` ops, snapshot checkpoints) switch
detection to the distributed view: once any site publication has been
seen, checks analyse the merged global store state instead of the local
dependency — the one-phase algorithm of Section 5.2, replayed.  Both
engines derive that view through the same module the live path uses
(:mod:`repro.distributed.delta`), so offline and live derivations
cannot drift apart; a sequence gap inside a trace is a recording bug
and raises :class:`~repro.distributed.delta.DeltaSequenceError`.

``register``/``advance`` records are context only (a blocked status is
self-contained) and are skipped, but counted towards throughput.

Two **engines** implement the modes.  The default from-scratch engine
rebuilds the analysis graph at every cadence point.  The *incremental*
engine (``incremental=True``, CLI ``--incremental``) feeds record-level
deltas into an :class:`~repro.core.incremental.IncrementalChecker`
instead: ``block``/``unblock`` apply directly, and ``publish`` records
are diffed against the site's previous bucket so only the tasks whose
status actually changed are re-applied.  Checks then cost O(1) while the
maintained graph is acyclic, making a ``check_every=1`` replay of an
N-task trace O(N) overall instead of O(N²) — with reports byte-identical
to the from-scratch engine (pinned by the regression corpus and CI).

The engine consumes its input *incrementally*: records are never
materialised into a list, so feeding it a
:class:`~repro.trace.stream.StreamedTrace` (``replay(path, stream=True)``)
replays a file of any length in O(frame) memory.  With
``shard_components=True`` each detection pass splits the snapshot into
connected components of the wait-for graph
(:func:`~repro.core.checker.snapshot_components`) and checks them
independently — smaller graphs per check, and one report per deadlocked
component instead of first-cycle-wins.

Note the flip side of canonical cycle extraction: a plain (unsharded)
detection check always surfaces the *same* cycle — the one through the
globally minimal vertex — so when two independent deadlocks persist
simultaneously, plain replay deterministically reports only the
canonical one.  That is the checker's first-cycle-wins contract made
reproducible, not a new loss; ``shard_components=True`` is the mode
that reports every concurrent deadlock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.checker import CheckStats, DeadlockChecker
from repro.core.incremental import IncrementalChecker
from repro.core.report import DeadlockReport
from repro.core.selection import DEFAULT_THRESHOLD_FACTOR, GraphModel
from repro.distributed.delta import Cursor, DeltaMergeState, apply_delta_obj
from repro.distributed.detector import merge_payloads
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_TRACER, OriginTracker, attach_provenance
from repro.trace.codec import load_trace
from repro.trace.events import RecordKind, Trace, TraceRecord

#: Publication record kinds (either protocol) — they flip detection to
#: the merged distributed view and are unanalysable under avoidance.
_PUBLISH_KINDS = (RecordKind.PUBLISH, RecordKind.PUBLISH_DELTA)

#: Replay modes (strings, to stay import-independent of the runtime).
DETECTION = "detection"
AVOIDANCE = "avoidance"

#: ``kind`` label values of ``repro_replay_records_total`` (context =
#: register/advance records, skipped by the engines but counted).
_KIND_NAMES = ("block", "unblock", "publish", "publish_delta", "context")

#: Buckets for whole-run replay durations (volatile; excluded from the
#: deterministic snapshot).
_DURATION_BUCKETS_S = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


@dataclass
class ReplayResult:
    """Outcome of one replay run.

    ``reports`` preserves discovery order; ``stats`` is the underlying
    checker's accounting (Table 3's quantities, now obtainable from a
    file instead of a live run).
    """

    mode: str
    reports: List[DeadlockReport] = field(default_factory=list)
    records_processed: int = 0
    checks_run: int = 0
    duration_s: float = 0.0
    stats: CheckStats = field(default_factory=CheckStats)
    #: The run's merged telemetry: the engine's replay counters plus
    #: every checker's instruments, folded into one registry.  Its
    #: non-volatile slice is deterministic — identical across process
    #: counts and hosts for the same trace and settings.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def deadlocked(self) -> bool:
        """Whether the replay surfaced at least one deadlock report."""
        return bool(self.reports)

    @property
    def events_per_sec(self) -> float:
        """Replay throughput over all records (the benchmark's metric)."""
        if self.duration_s <= 0:
            return 0.0
        return self.records_processed / self.duration_s


class ReplayEngine:
    """Replays traces through a fresh checker.

    Parameters
    ----------
    mode:
        ``"detection"`` or ``"avoidance"``.
    model / threshold_factor:
        Forwarded to the checker — replay under a *different* graph
        model than the live run is explicitly supported (offline model
        ablations over one recording).
    check_every:
        Detection-mode check cadence in state-changing records
        (default 1: check after every change, the strongest — and
        deterministic — setting).
    shard_components:
        Detection only: run every check per connected component of the
        snapshot instead of on the whole graph (see the module
        docstring).
    incremental:
        Use the delta-maintained engine instead of rebuilding the graph
        per check (see the module docstring).  Reports are identical;
        only the cost model changes.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` to fold
        each run's telemetry into (successive runs accumulate).  When
        omitted every run gets a fresh registry on
        :attr:`ReplayResult.metrics`.  Checkers always record into
        private registries merged in at the end, so the hot loop never
        pays for a shared-registry lock.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer` receiving check and
        report events keyed by record ordinals (deterministic, so the
        reconstructed timeline is bit-identical across replays).  The
        default :data:`~repro.obs.tracing.NULL_TRACER` costs one
        attribute read per check.

    Whatever the tracer, both engines always attach **provenance** to
    every surfaced report: per-edge record origins, the detection lag
    in record ordinals, and the reporting check's ordinal — derived
    from the same :class:`~repro.obs.tracing.OriginTracker` fold in
    both engines, so enriched reports stay equal between them.
    """

    def __init__(
        self,
        mode: str = DETECTION,
        model: GraphModel = GraphModel.AUTO,
        threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
        check_every: int = 1,
        shard_components: bool = False,
        incremental: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer=NULL_TRACER,
    ) -> None:
        if mode not in (DETECTION, AVOIDANCE):
            raise ValueError(f"unknown replay mode {mode!r}")
        self.mode = mode
        self.model = model
        self.threshold_factor = threshold_factor
        self.check_every = max(1, check_every)
        self.shard_components = shard_components
        self.incremental = incremental
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, trace: Union[Trace, Iterable[TraceRecord]]) -> ReplayResult:
        """Replay ``trace`` (a :class:`Trace` or any record iterable —
        including a lazy :class:`~repro.trace.stream.StreamedTrace`);
        records are consumed one at a time, never materialised."""
        records = trace.records if isinstance(trace, Trace) else trace
        # Streamed binary traces offer a decode-on-demand iteration:
        # frames are scanned zero-copy and only materialised when a
        # field beyond kind/seq is read, so context records (register/
        # advance) skip decoding entirely on this path.
        lazy = getattr(records, "lazy_records", None)
        if lazy is not None:
            records = lazy()
        if self.incremental:
            return self._run_incremental(records)
        checker = DeadlockChecker(
            model=self.model, threshold_factor=self.threshold_factor
        )
        result = ReplayResult(mode=self.mode)
        seen: Set[frozenset] = set()
        buckets: Dict[str, dict] = {}
        cursors: Dict[str, Cursor] = {}
        kinds = dict.fromkeys(_KIND_NAMES, 0)
        origins = OriginTracker()
        lags: List[Tuple[int, float]] = []
        pending = 0
        t0 = time.perf_counter()
        for rec in records:
            result.records_processed += 1
            origins.observe(rec)
            kind = rec.kind
            if kind is RecordKind.BLOCK:
                kinds["block"] += 1
                if self.mode == AVOIDANCE:
                    report, _ = checker.check_before_block(rec.task, rec.status)
                    result.checks_run += 1
                    if report is not None:
                        self._collect_avoided(
                            report, rec, checker, origins, lags, result
                        )
                    continue
                checker.set_blocked(rec.task, rec.status)
                pending += 1
            elif kind is RecordKind.UNBLOCK:
                kinds["unblock"] += 1
                checker.clear(rec.task)
                pending += 1
            elif kind in _PUBLISH_KINDS:
                if self.mode == AVOIDANCE:
                    # Avoidance vets individual blocks; a published
                    # bucket carries no per-block order to vet.  Failing
                    # loudly beats replaying a silent wrong verdict.
                    raise ValueError(
                        "avoidance replay cannot analyse publish records "
                        "(distributed traces replay in detection mode)"
                    )
                if kind is RecordKind.PUBLISH:
                    kinds["publish"] += 1
                    buckets[rec.site] = dict(rec.payload)
                else:
                    kinds["publish_delta"] += 1
                    apply_delta_obj(buckets, cursors, rec.site, rec.payload)
                pending += 1
            else:  # REGISTER / ADVANCE: context only
                kinds["context"] += 1
                continue
            if self.mode == DETECTION and pending >= self.check_every:
                pending = 0
                self._detect(checker, buckets, seen, result, origins, lags)
        # Drain: a trailing state change below the cadence still gets
        # analysed, so lowering the cadence never loses final reports.
        if self.mode == DETECTION and pending:
            self._detect(checker, buckets, seen, result, origins, lags)
        result.duration_s = time.perf_counter() - t0
        result.stats = checker.stats
        self._finish_metrics(result, kinds, [checker], lags)
        return result

    def _detect(
        self,
        checker: DeadlockChecker,
        buckets: Dict[str, dict],
        seen: Set[frozenset],
        result: ReplayResult,
        origins: OriginTracker,
        lags: List[Tuple[int, float]],
    ) -> None:
        snapshot = merge_payloads(buckets) if buckets else None
        if self.shard_components:
            reports = checker.check_sharded(snapshot=snapshot)
        else:
            report = checker.check(snapshot=snapshot)
            reports = [] if report is None else [report]
        if snapshot is not None:
            statuses_fn = lambda: snapshot.statuses  # noqa: E731
        else:
            statuses_fn = lambda: checker.dependency.snapshot().statuses  # noqa: E731
        self._collect(reports, seen, result, origins, statuses_fn, lags)

    def _collect_avoided(
        self, report, rec, checker, origins, lags, result
    ) -> None:
        """Enrich and store one avoidance refusal (no de-duplication —
        every refused block is its own report, as before)."""
        statuses = dict(checker.dependency.snapshot().statuses)
        statuses[rec.task] = rec.status
        enriched, lag_s = attach_provenance(report, origins, statuses)
        lags.append((enriched.detection_lag, lag_s))
        if self.tracer.enabled:
            self._trace_report(enriched)
        result.reports.append(enriched)

    def _finish_metrics(self, result, kinds, checkers, lags) -> None:
        """Fold the run's telemetry into the result's registry.

        Engine counters are applied once, from the loop's plain-int
        tallies (zero hot-loop registry cost); checker registries are
        merged in whole, after ``sync_metrics`` has mirrored any
        trailing SCC work done since the last check.  Everything here
        except the duration and seconds-lag histograms is deterministic,
        so the non-volatile snapshot is byte-identical across runs and
        hosts — including the record-ordinal detection-lag histogram,
        which is always created so every snapshot carries the family.
        """
        metrics = self.metrics if self.metrics is not None else MetricsRegistry()
        recs = metrics.counter(
            "repro_replay_records_total",
            "Trace records consumed by replay, by kind (context = "
            "register/advance records, skipped but counted).",
            labels=("kind",),
        )
        for kind in _KIND_NAMES:
            if kinds[kind]:
                recs.inc(kinds[kind], kind=kind)
        metrics.counter(
            "repro_replay_checks_total",
            "Detection or avoidance checks run by replay.",
        ).inc(result.checks_run)
        metrics.counter(
            "repro_replay_reports_total",
            "Deadlock reports surfaced by replay (after de-duplication).",
        ).inc(len(result.reports))
        metrics.histogram(
            "repro_replay_duration_seconds",
            "Wall-clock duration of one replay run.",
            buckets=_DURATION_BUCKETS_S,
            volatile=True,
        ).observe(result.duration_s)
        lag_records = metrics.histogram(
            "repro_detection_lag_records",
            "Record-ordinal distance from the record that closed a "
            "reported cycle to the check that surfaced it (0 = reported "
            "at the closing record).",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        lag_seconds = metrics.histogram(
            "repro_detection_lag_seconds",
            "Wall-clock time from the record that closed a reported "
            "cycle to the check that surfaced it.",
            buckets=DEFAULT_LATENCY_BUCKETS_S,
            volatile=True,
        )
        for lag, lag_s in lags:
            lag_records.observe(lag)
            lag_seconds.observe(lag_s)
        for checker in checkers:
            sync = getattr(checker, "sync_metrics", None)
            if sync is not None:
                sync()
            metrics.merge(checker.stats.metrics)
        result.metrics = metrics

    def _trace_report(self, report: DeadlockReport) -> None:
        self.tracer.event(
            "deadlock.report",
            "checker",
            ordinal=report.detected_at or 0,
            cat="report",
            cycle=" -> ".join(str(v) for v in report.cycle),
            detection_lag_records=report.detection_lag or 0,
            model=report.model_used.value,
        )

    def _collect(
        self,
        reports: List[DeadlockReport],
        seen: Set[frozenset],
        result: ReplayResult,
        origins: OriginTracker,
        statuses_fn,
        lags: List[Tuple[int, float]],
    ) -> None:
        result.checks_run += 1
        if self.tracer.enabled:
            self.tracer.event(
                "replay.check", "checker", ordinal=origins.last_ordinal,
                cat="check",
            )
        if not reports:
            return
        # The snapshot is only needed to enrich *fresh* reports — a
        # persisting deadlock surfaces the same cycle at every cadence
        # point, and rebuilding the full status view each time made
        # check_every=1 replays of deadlocked traces quadratic.
        statuses = None
        for report in reports:
            # De-duplicate on the cycle's vertex set: as more tasks pile
            # onto a persisting deadlock the involved *task* set grows,
            # but the cycle itself is stable — one deadlock, one report.
            key = frozenset(report.cycle)
            if key in seen:
                continue
            seen.add(key)
            if statuses is None:
                statuses = statuses_fn()
            enriched, lag_s = attach_provenance(report, origins, statuses)
            lags.append((enriched.detection_lag, lag_s))
            if self.tracer.enabled:
                self._trace_report(enriched)
            result.reports.append(enriched)

    # ------------------------------------------------------------------
    # the incremental engine
    # ------------------------------------------------------------------
    def _run_incremental(self, records: Iterable[TraceRecord]) -> ReplayResult:
        """The delta-fed twin of :meth:`run`.

        Two delta-maintained checkers mirror the from-scratch engine's
        two views: ``local`` accumulates ``block``/``unblock`` records,
        ``remote`` accumulates the merged site publications through a
        :class:`~repro.distributed.delta.DeltaMergeState` — the same
        consumer the live distributed checker runs, fed either
        whole-bucket ``publish`` records (diffed against the site's
        previous bucket) or ``publish_delta`` ops (applied directly).
        Once any publication has been seen, detection queries the
        remote view only — exactly the view switch the from-scratch
        ``_detect`` performs by merging buckets instead of snapshotting.
        """
        local = IncrementalChecker(
            model=self.model, threshold_factor=self.threshold_factor
        )
        remote = IncrementalChecker(
            model=self.model, threshold_factor=self.threshold_factor
        )
        merge = DeltaMergeState(remote)
        # The from-scratch engine checks the *merged bucket* snapshot,
        # whose task order is site order × bucket order — not delta
        # arrival order.  Rebuilding the merge on the (rare) cyclic
        # fallback keeps remote reports byte-identical to it.
        remote.snapshot_source = merge.merged_snapshot
        result = ReplayResult(mode=self.mode)
        seen: Set[frozenset] = set()
        kinds = dict.fromkeys(_KIND_NAMES, 0)
        origins = OriginTracker()
        lags: List[Tuple[int, float]] = []
        publishes_seen = False
        pending = 0
        # Detection-mode local ops queue up between cadence points and
        # apply through one ``apply_batch`` maintenance pass right
        # before the check — a replay frame's worth of status ops, one
        # SCC pass.  (Avoidance vets each block as it arrives, so its
        # ops stay per-record.)
        local_ops: List[Tuple[str, object, object]] = []
        t0 = time.perf_counter()

        def detect() -> None:
            if local_ops:
                local.apply_batch(local_ops)
                local_ops.clear()
            if publishes_seen:
                # Mirror the from-scratch engine: cross-site duplication
                # is rejected at *check* time (a transient overlap that
                # resolves before the next cadence point replays fine),
                # with the classic merge producing the identical error.
                merge.raise_on_conflict()
                statuses_fn = lambda: merge.merged_snapshot().statuses  # noqa: E731
            else:
                statuses_fn = lambda: local.dependency.snapshot().statuses  # noqa: E731
            self._detect_incremental(
                remote if publishes_seen else local, seen, result,
                origins, statuses_fn, lags,
            )

        for rec in records:
            result.records_processed += 1
            origins.observe(rec)
            kind = rec.kind
            if kind is RecordKind.BLOCK:
                kinds["block"] += 1
                if self.mode == AVOIDANCE:
                    report, _ = local.check_before_block(rec.task, rec.status)
                    result.checks_run += 1
                    if report is not None:
                        self._collect_avoided(
                            report, rec, local, origins, lags, result
                        )
                    continue
                local_ops.append(("set", rec.task, rec.status))
                pending += 1
            elif kind is RecordKind.UNBLOCK:
                kinds["unblock"] += 1
                if self.mode == AVOIDANCE:
                    local.clear(rec.task)
                    continue
                local_ops.append(("clear", rec.task, None))
                pending += 1
            elif kind in _PUBLISH_KINDS:
                if self.mode == AVOIDANCE:
                    raise ValueError(
                        "avoidance replay cannot analyse publish records "
                        "(distributed traces replay in detection mode)"
                    )
                if kind is RecordKind.PUBLISH:
                    kinds["publish"] += 1
                    merge.apply_bucket(rec.site, rec.payload)
                else:
                    kinds["publish_delta"] += 1
                    merge.apply_obj(rec.site, rec.payload)
                publishes_seen = True
                pending += 1
            else:  # REGISTER / ADVANCE: context only
                kinds["context"] += 1
                continue
            if self.mode == DETECTION and pending >= self.check_every:
                pending = 0
                detect()
        if self.mode == DETECTION and pending:
            detect()
        result.duration_s = time.perf_counter() - t0
        result.stats = local.stats
        # Registries fold first: CheckStats.merge below copies remote's
        # check instruments into local's registry, so merging registries
        # afterwards would double-count them.
        self._finish_metrics(result, kinds, [local, remote], lags)
        result.stats.merge(remote.stats)
        return result

    def _detect_incremental(
        self,
        checker: IncrementalChecker,
        seen: Set[frozenset],
        result: ReplayResult,
        origins: OriginTracker,
        statuses_fn,
        lags: List[Tuple[int, float]],
    ) -> None:
        if self.shard_components:
            reports = checker.check_sharded()
        else:
            report = checker.check()
            reports = [] if report is None else [report]
        self._collect(reports, seen, result, origins, statuses_fn, lags)

def replay(
    source: Union[Trace, Iterable[TraceRecord], str],
    mode: str = DETECTION,
    model: GraphModel = GraphModel.AUTO,
    threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
    check_every: int = 1,
    shard_components: bool = False,
    stream: bool = False,
    incremental: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    tracer=NULL_TRACER,
) -> ReplayResult:
    """Convenience front door: replay a trace, record iterable or path.

    ``stream=True`` (paths only) opens the file with
    :func:`~repro.trace.stream.iter_load` instead of loading it whole —
    same result, O(frame) memory.  ``incremental=True`` selects the
    delta-maintained engine — same reports, O(N) instead of O(N²) on
    ``check_every=1`` replays.  ``metrics`` folds the run's telemetry
    into a caller registry instead of the fresh one on
    :attr:`ReplayResult.metrics`; ``tracer`` receives check/report
    events keyed by record ordinals.
    """
    if isinstance(source, (str,)) or hasattr(source, "__fspath__"):
        if stream:
            from repro.trace.stream import iter_load

            source = iter_load(source)
        else:
            source = load_trace(source)
    engine = ReplayEngine(
        mode=mode,
        model=model,
        threshold_factor=threshold_factor,
        check_every=check_every,
        shard_components=shard_components,
        incremental=incremental,
        metrics=metrics,
        tracer=tracer,
    )
    return engine.run(source)
