"""Streaming trace I/O: O(frame) reads and spill-to-disk recording.

PR 1's codecs load whole traces into memory before the first record is
seen; this module is the incremental counterpart on both sides of the
file:

* :func:`iter_load` returns a :class:`StreamedTrace` — the header read
  eagerly (it is the first thing in the file under both codecs) and the
  records exposed as a re-iterable lazy stream.  The framed binary
  format was designed for this (every frame is self-delimiting), and
  JSONL gets a line-at-a-time path.  Peak memory is one frame, so a
  million-event trace replays in constant space.
* :class:`StreamingRecorder` is a drop-in :class:`TraceRecorder` that
  writes each record to disk the moment it is observed instead of
  buffering the run — recording is then bounded by disk, not RAM, and a
  crash mid-run loses at most the unflushed tail of the file.

Truncation tolerance closes the loop between the two: a run that died
mid-write leaves a trailing partial frame (or partial JSON line), and
``iter_load(path, on_truncation="ignore")`` replays every complete
record before it instead of failing.  Anything malformed *before* the
tail is still a hard :class:`~repro.trace.events.TraceFormatError` —
tolerance is for crashes, not for corruption.

Both paths reuse the per-record coders on the codec classes
(``encode_record`` / ``decode_record_frame`` / ``decode_record_line``),
so streaming and eager I/O decode byte-for-byte identically — the
equivalence is pinned by ``tests/trace/test_stream.py``.
"""

from __future__ import annotations

import pathlib
from typing import BinaryIO, Iterator, Optional

from repro.trace import events as ev
from repro.trace.codec import (
    BINARY_MAGIC,
    CODECS,
    PathLike,
    codec_for,
    load_trace,
    save_trace,
)
from repro.trace.events import TraceFormatError, TraceHeader, TraceRecord
from repro.trace.recorder import TraceRecorder

#: Accepted ``on_truncation`` policies.
TRUNCATION_POLICIES = ("error", "ignore")

#: Bytes per read of the zero-copy binary frame scan.  Small enough
#: that streaming stays far below eager load's footprint (pinned by
#: ``tests/trace/test_stream.py``), large enough to amortise syscalls.
_SCAN_CHUNK = 1 << 16


class _TruncatedTail(TraceFormatError):
    """Internal: the stream ended mid-frame (recoverable in ignore mode)."""


def _read_varint_stream(fp: BinaryIO) -> Optional[int]:
    """Read one LEB128 varint byte-at-a-time.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`_TruncatedTail` when the stream ends mid-varint.
    """
    result = 0
    shift = 0
    first = True
    while True:
        byte = fp.read(1)
        if not byte:
            if first:
                return None
            raise _TruncatedTail("stream ended mid-varint")
        value = byte[0]
        first = False
        result |= (value & 0x7F) << shift
        if not value & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise TraceFormatError("varint too long")


def _read_binary_header(fp: BinaryIO) -> TraceHeader:
    """Read magic + version + meta from the front of a binary stream.

    Header truncation is always fatal — a file that died before its
    header holds no replayable records under any policy.
    """
    magic = fp.read(len(BINARY_MAGIC))
    if magic != BINARY_MAGIC:
        raise TraceFormatError("not a binary armus trace (bad magic)")
    version_byte = fp.read(1)
    if not version_byte:
        raise TraceFormatError("truncated binary header")
    try:
        length = _read_varint_stream(fp)
    except _TruncatedTail:
        raise TraceFormatError("truncated binary header") from None
    if length is None:
        raise TraceFormatError("truncated binary header")
    meta_bytes = fp.read(length)
    if len(meta_bytes) < length:
        raise TraceFormatError("truncated binary header")
    try:
        meta_json = meta_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError("unparseable binary header meta") from exc
    return TraceHeader(
        version=version_byte[0], meta=CODECS["binary"].decode_meta(meta_json)
    )


class StreamedTrace:
    """A trace opened for incremental reading.

    The header is read eagerly (callers always need the meta before
    deciding how to replay); iterating yields records one frame at a
    time, re-reading the file from the top on every fresh iteration, so
    the object can be replayed repeatedly like an in-memory
    :class:`~repro.trace.events.Trace` — just without its footprint.
    """

    def __init__(self, path: PathLike, on_truncation: str = "error") -> None:
        if on_truncation not in TRUNCATION_POLICIES:
            raise ValueError(
                f"on_truncation must be one of {TRUNCATION_POLICIES}, "
                f"got {on_truncation!r}"
            )
        self.path = pathlib.Path(path)
        self.on_truncation = on_truncation
        with open(self.path, "rb") as fp:
            prefix = fp.read(len(BINARY_MAGIC))
        self.is_binary = prefix == BINARY_MAGIC
        with open(self.path, "rb") as fp:
            if self.is_binary:
                self.header = _read_binary_header(fp)
            else:
                self.header = self._read_jsonl_header(fp)

    # -- header ---------------------------------------------------------
    def _read_jsonl_header(self, fp: BinaryIO) -> TraceHeader:
        for raw in fp:
            if not raw.strip():
                continue
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise TraceFormatError("not a UTF-8 JSONL trace") from exc
            return CODECS["jsonl"].decode_header_line(line)
        raise TraceFormatError("empty trace file")

    # -- records --------------------------------------------------------
    def __iter__(self) -> Iterator[TraceRecord]:
        if self.is_binary:
            return self._iter_binary()
        return self._iter_jsonl()

    def _iter_binary(self) -> Iterator[TraceRecord]:
        decode = CODECS["binary"].decode_record_frame
        for body in self._scan_binary_frames():
            yield decode(body)

    def _scan_binary_frames(self) -> Iterator[memoryview]:
        """Zero-copy frame scan: chunked reads, ``memoryview`` slices.

        The streaming counterpart of
        :meth:`~repro.trace.codec.BinaryCodec.scan_frames`: the file is
        read in fixed chunks (memory stays O(chunk), not O(file)) and
        each complete frame body inside a chunk is yielded as a slice
        of that chunk's buffer — no per-frame ``bytes`` copy and no
        byte-at-a-time varint reads.  A frame split across the chunk
        boundary carries its prefix into the next read; leftover bytes
        at EOF are the crash tail the truncation policy governs.  The
        chunk buffers are immutable ``bytes``, so a consumer holding a
        yielded slice (a lazy record) keeps its chunk alive and valid.
        """
        with open(self.path, "rb") as fp:
            _read_binary_header(fp)
            tail = b""
            while True:
                chunk = fp.read(_SCAN_CHUNK)
                if not chunk:
                    if tail:
                        if self.on_truncation == "ignore":
                            return
                        raise TraceFormatError("truncated frame at end of stream")
                    return
                data = tail + chunk if tail else chunk
                buf = memoryview(data)
                end = len(buf)
                pos = 0
                while True:
                    # Frame-length varint, tolerant of a chunk-boundary
                    # split (p < 0 below means "need more data", which
                    # is only truncation if the file ends here).
                    length = 0
                    shift = 0
                    p = pos
                    while True:
                        if p >= end:
                            p = -1
                            break
                        byte = buf[p]
                        p += 1
                        length |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 63:
                            raise TraceFormatError("varint too long")
                    if p < 0 or p + length > end:
                        break
                    yield buf[p : p + length]
                    pos = p + length
                tail = data[pos:] if pos < end else b""

    def lazy_records(self) -> Iterator[TraceRecord]:
        """Iterate records, deferring binary frame decoding to first use.

        The replay fast path: binary frames come back as
        :class:`~repro.trace.codec.LazyRecord` views (``kind``/``seq``
        eager, everything else decoded on first field access), so
        records a consumer never inspects beyond their kind are never
        decoded at all.  JSONL has no framed fast path and falls back
        to eager line decoding.  Truncation policy and envelope
        validation match :meth:`__iter__`; see
        :class:`~repro.trace.codec.LazyRecord` for the one semantic
        difference (interior corruption of a skipped frame goes
        unreported).
        """
        if not self.is_binary:
            return self._iter_jsonl()
        lazy = CODECS["binary"].lazy_record
        return map(lazy, self._scan_binary_frames())

    def _iter_jsonl(self) -> Iterator[TraceRecord]:
        codec = CODECS["jsonl"]
        with open(self.path, "rb") as fp:
            header_seen = False
            bad_line: Optional[TraceFormatError] = None
            for raw in fp:
                if bad_line is not None:
                    # The failure was *followed* by another line — blank
                    # included: a crash tail is an unterminated partial
                    # line, so anything after the newline proves this
                    # was corruption, not a crash.  Always fatal.
                    raise bad_line
                if not raw.strip():
                    continue
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError as exc:
                    bad_line = TraceFormatError("undecodable record line")
                    bad_line.__cause__ = exc
                    continue
                if not header_seen:
                    header_seen = True
                    continue
                try:
                    yield codec.decode_record_line(line)
                except TraceFormatError as exc:
                    bad_line = exc
            if bad_line is not None and self.on_truncation == "error":
                raise bad_line


def iter_load(path: PathLike, on_truncation: str = "error") -> StreamedTrace:
    """Open ``path`` for streaming replay (codec sniffed from magic).

    The counterpart of :func:`~repro.trace.codec.load_trace` that never
    materialises the record list: feed the result straight to
    :func:`repro.trace.replay.replay` (or iterate it yourself) and peak
    memory stays at one frame.  ``on_truncation="ignore"`` makes a
    trailing partial frame (a crashed :class:`StreamingRecorder` run)
    end the stream instead of raising.
    """
    return StreamedTrace(path, on_truncation=on_truncation)


class StreamingRecorder(TraceRecorder):
    """A :class:`TraceRecorder` that spills every record to disk.

    Drop-in at every observation point (runtime, stores, sites, PL
    interpreter): the constructor writes the header, each ``record_*``
    call appends one encoded record to the file under the recorder
    lock, and memory stays O(1) no matter how long the run.  The header
    meta is therefore fixed at construction time.

    Parameters
    ----------
    path:
        Output file; the codec is inferred from the extension unless
        ``codec`` names one explicitly.
    flush_every:
        Flush the OS-level buffer every N records (0 — the default —
        leaves flushing to the ``io`` buffering; the tail of an
        unflushed run is lost on a crash, which ``iter_load``'s
        ``on_truncation="ignore"`` is built to tolerate).
    """

    def __init__(
        self,
        path: PathLike,
        meta=None,
        codec: Optional[str] = None,
        flush_every: int = 0,
    ) -> None:
        super().__init__(meta=meta)
        self.path = pathlib.Path(path)
        self._codec = codec_for(self.path, codec)
        self._flush_every = max(0, int(flush_every))
        self._written = 0
        self._closed = False
        self._fp = open(self.path, "wb")
        header = ev.TraceHeader(version=ev.TRACE_VERSION, meta=dict(self.meta))
        self._header_size = self._fp.write(self._codec.encode_header(header))

    # -- the overridden sink -------------------------------------------
    def _append(self, make) -> ev.TraceRecord:
        with self._lock:
            if self._closed:
                raise RuntimeError("StreamingRecorder is closed")
            rec = make(self._seq)
            self._seq += 1
            self._fp.write(self._codec.encode_record(rec))
            self._written += 1
            if self._flush_every and self._written % self._flush_every == 0:
                self._fp.flush()
            return rec

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Push buffered records to the OS."""
        with self._lock:
            if not self._closed:
                self._fp.flush()

    def close(self) -> pathlib.Path:
        """Flush and close the file; further records are an error."""
        with self._lock:
            if not self._closed:
                self._fp.flush()
                self._fp.close()
                self._closed = True
        return self.path

    def __enter__(self) -> "StreamingRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- TraceRecorder API, re-routed through the file ------------------
    def trace(self) -> ev.Trace:
        """Eagerly load back everything written so far.

        Convenient for tests and small runs; for large traces iterate
        :func:`iter_load` instead — loading back defeats the point.
        The lock is held across flush *and* read: a concurrent
        ``record_*`` must not land a half-flushed frame between them.
        """
        with self._lock:
            if not self._closed:
                self._fp.flush()
            return load_trace(self.path)

    def save(self, path=None, codec: Optional[str] = None):
        """Close the stream; re-encode only when a *different* target is
        named (the records are already on disk at :attr:`path`)."""
        self.close()
        if path is None or pathlib.Path(path) == self.path:
            return self.path
        return save_trace(load_trace(self.path), path, codec=codec)

    def clear(self) -> None:
        """Truncate back to the header (the seq counter keeps going)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("StreamingRecorder is closed")
            self._fp.flush()
            self._fp.seek(self._header_size)
            self._fp.truncate()
            self._written = 0

    def __len__(self) -> int:
        with self._lock:
            return self._written
