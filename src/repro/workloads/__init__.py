"""Benchmark workloads (Section 6).

Scaled-down but *validated* reimplementations of the paper's three
benchmark suites, preserving the synchronisation structure that drives
verification cost (see DESIGN.md, "Substitutions"):

* :mod:`repro.workloads.npb` — NPB-like kernels BT, CG, FT, MG, SP
  (Section 6.1): SPMD, fixed task count, fixed set of cyclic barriers,
  stepwise iteration, output checked against a direct solver/transform;
* :mod:`repro.workloads.jgf` — the JGF-like RT ray tracer and the
  SYNC barrier microbenchmark;
* :mod:`repro.workloads.hpcc` — the distributed suite of Section 6.2
  (FT, STREAM, KMEANS, JACOBI, SSCA2) running on
  :class:`~repro.distributed.places.Cluster`;
* :mod:`repro.workloads.course` — the Columbia PPPP course programs of
  Section 6.3 (BFS, FI, FR, SE, PS): dynamic task/barrier creation with
  extreme task:barrier ratios, the worst cases for graph-model choice.

Every workload raises :class:`ValidationError` if its numerical output
is wrong — verification overhead measured on silently-broken kernels is
meaningless.
"""

from repro.workloads.common import (
    ValidationError,
    WorkloadResult,
    SpmdPool,
    slab,
    make_runtime,
)

__all__ = [
    "ValidationError",
    "WorkloadResult",
    "SpmdPool",
    "slab",
    "make_runtime",
]
