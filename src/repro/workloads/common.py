"""Shared SPMD infrastructure for the workload kernels.

The NPB/JGF-style kernels all follow the same shape — ``n`` tasks, slab
decomposition over NumPy arrays, stepwise iteration coordinated by a
fixed set of cyclic barriers, barrier-based reductions —
so the scaffolding lives here once:

* :func:`slab` — 1-D block decomposition;
* :class:`SpmdPool` — spawn ``n`` ranks registered with a shared barrier,
  run a rank body, join, validate;
* :class:`Reducer` — barrier-based all-reduce over per-rank partials
  (the shared-array idiom Java NPB uses);
* :func:`make_runtime` — runtime construction from a verification-mode
  name, used uniformly by tests and benches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.selection import GraphModel
from repro.runtime.barriers import CyclicBarrier
from repro.runtime.verifier import ArmusRuntime, VerificationMode


class ValidationError(AssertionError):
    """A workload produced a numerically wrong result."""


@dataclass
class WorkloadResult:
    """What a kernel returns: a checksum plus validation evidence."""

    name: str
    n_tasks: int
    checksum: float
    validated: bool
    details: Dict[str, Any] = field(default_factory=dict)

    def require_valid(self) -> "WorkloadResult":
        if not self.validated:
            raise ValidationError(f"{self.name}: validation failed ({self.details})")
        return self


def slab(n: int, rank: int, size: int) -> slice:
    """Block decomposition: the ``rank``-th of ``size`` contiguous chunks
    of ``range(n)`` (earlier ranks get the remainder)."""
    base, extra = divmod(n, size)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return slice(lo, hi)


def make_runtime(
    mode: str = "off",
    model: GraphModel = GraphModel.AUTO,
    interval_s: float = 0.1,
    poll_s: float = 0.002,
) -> ArmusRuntime:
    """Build a runtime from a mode name (``off``/``detection``/``avoidance``).

    The uniform entry point for tests, benches and examples; detection
    runtimes come back *started* (monitor running).
    """
    runtime = ArmusRuntime(
        mode=VerificationMode(mode),
        model=model,
        interval_s=interval_s,
        poll_s=poll_s,
    )
    return runtime.start()


class Reducer:
    """Barrier-based all-reduce: each rank deposits a partial, the
    barrier trips, every rank reads the combined value.

    This is the Java-NPB reduction idiom (shared array + barrier), so the
    synchronisation pattern seen by the verifier matches the paper's
    benchmarks: two barrier steps per reduction.
    """

    def __init__(self, n_tasks: int, barrier: CyclicBarrier) -> None:
        self._partials = np.zeros(n_tasks)
        self._barrier = barrier
        self._n = n_tasks

    def all_reduce(self, rank: int, value: float) -> float:
        """Deposit ``value`` for ``rank``; returns the sum over ranks."""
        self._partials[rank] = value
        self._barrier.await_barrier()
        total = float(self._partials.sum())
        # Second step: nobody may overwrite partials for the next
        # reduction until everyone has read this one.
        self._barrier.await_barrier()
        return total


class SpmdPool:
    """Run an SPMD body on ``n`` ranks sharing one cyclic barrier.

    The body receives ``(rank, pool)`` and uses :meth:`barrier_step`,
    :meth:`all_reduce` and the shared arrays it closes over.  The pool
    matches the structure of the paper's Section 6.1 benchmarks: a fixed
    number of tasks and a fixed number of cyclic barriers for the whole
    computation.
    """

    def __init__(
        self,
        runtime: ArmusRuntime,
        n_tasks: int,
        name: str = "spmd",
        extra_barriers: int = 0,
    ) -> None:
        self.runtime = runtime
        self.n_tasks = n_tasks
        self.name = name
        self.barrier = CyclicBarrier(n_tasks, runtime, name=f"{name}-bar")
        #: Additional barriers for phase-separated algorithms (e.g. FT's
        #: transpose step); all fixed up front, as in SPMD programs.
        self.barriers: List[CyclicBarrier] = [
            CyclicBarrier(n_tasks, runtime, name=f"{name}-bar{i}")
            for i in range(extra_barriers)
        ]
        self.reducer = Reducer(n_tasks, self.barrier)
        self._errors: List[BaseException] = []
        self._errors_lock = threading.Lock()

    # -- rank-side operations ------------------------------------------------
    def barrier_step(self, which: Optional[int] = None) -> None:
        """One cyclic-barrier synchronisation (``which`` selects an extra
        barrier; default is the main one)."""
        bar = self.barrier if which is None else self.barriers[which]
        bar.await_barrier()

    def all_reduce(self, rank: int, value: float) -> float:
        return self.reducer.all_reduce(rank, value)

    # -- driver side -----------------------------------------------------------
    def run(self, body: Callable[[int, "SpmdPool"], None], timeout: float = 120.0):
        """Spawn the ranks, run ``body`` on each, join; re-raise the first
        rank failure."""

        def wrapped(rank: int) -> None:
            try:
                body(rank, self)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with self._errors_lock:
                    self._errors.append(exc)
                raise

        registrations = [self.barrier] + self.barriers
        tasks = [
            self.runtime.spawn(
                wrapped, rank, register=registrations, name=f"{self.name}-r{rank}"
            )
            for rank in range(self.n_tasks)
        ]
        for t in tasks:
            t.join(timeout)
        return tasks
