"""The Columbia PPPP course programs (Section 6.3): BFS, FI, FR, SE, PS.

These programs "spawn tasks and create barriers as needed, depending on
the size of the program" — unlike the SPMD suites — and exercise the
worst-case task:barrier ratios for the graph-model choice (Table 3):

* **PS** and **BFS** — many tasks, one/few barriers: the WFG explodes
  (hundreds of edges), the SG stays tiny;
* **FI** and **FR** — a clocked variable (barrier) per value/call: as
  many or more barriers than tasks, where the WFG is the smaller model;
* **SE** — one task and one clocked variable per pipeline stage: both
  models are comparable.
"""

from repro.workloads.course.ps import run_ps
from repro.workloads.course.bfs import run_bfs
from repro.workloads.course.fi import run_fi
from repro.workloads.course.fr import run_fr
from repro.workloads.course.se import run_se
from repro.workloads.course.pt2pt import run_pt2pt

KERNELS = {
    "SE": run_se,
    "FI": run_fi,
    "FR": run_fr,
    "BFS": run_bfs,
    "PS": run_ps,
    "PT2PT": run_pt2pt,
}

__all__ = [
    "run_ps",
    "run_bfs",
    "run_fi",
    "run_fr",
    "run_se",
    "run_pt2pt",
    "KERNELS",
]
