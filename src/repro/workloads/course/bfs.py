"""BFS: level-synchronised parallel breadth-first search.

"There is a task per node being visited and a barrier per depth-level
of the graph": every node gets a task up front; all tasks step a single
clock twice per level (a work phase and a control phase).  A node task
idles until the level that visits its node, publishes its neighbours'
depths in that level's work phase, and then leaves the clock — dynamic
membership shrinks the barrier as the wavefront passes.

This is WFG-hostile (Table 3: 579 WFG vs 7 SG edges): scores of node
tasks block on the *same* clock event, and barrier-generation overlap
(stragglers of phase ``k`` coexisting with early arrivers of ``k+1``)
creates dense task-to-task dependencies that the SG collapses to a
couple of event vertices.

Validation: computed depths must equal a serial BFS's exactly.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Set

from repro.runtime.clock import Clock
from repro.runtime.verifier import ArmusRuntime
from repro.workloads.common import WorkloadResult


def random_graph(n: int, avg_degree: float, seed: int) -> List[List[int]]:
    """A connected undirected random graph (ring + random chords)."""
    rng = random.Random(seed)
    adj: List[Set[int]] = [set() for _ in range(n)]
    for v in range(n):  # ring backbone keeps the graph connected
        adj[v].add((v + 1) % n)
        adj[(v + 1) % n].add(v)
    extra = int(n * max(avg_degree - 2.0, 0.0) / 2.0)
    for _ in range(extra):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            adj[a].add(b)
            adj[b].add(a)
    return [sorted(s) for s in adj]


def serial_bfs(adj: List[List[int]], root: int) -> Dict[int, int]:
    depth = {root: 0}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for u in adj[v]:
            if u not in depth:
                depth[u] = depth[v] + 1
                queue.append(u)
    return depth


def run_bfs(
    runtime: ArmusRuntime,
    n_nodes: int = 48,
    avg_degree: float = 3.0,
    seed: int = 17,
    root: int = 0,
) -> WorkloadResult:
    """Level-synchronised BFS with one task per node on one clock.

    Depth writes race benignly: every discoverer of ``u`` in level ``L``
    writes the same value ``L + 1``, so the winner does not matter (and
    dict item assignment is atomic under the GIL).
    """
    adj = random_graph(n_nodes, avg_degree, seed)
    depth: Dict[int, int] = {root: 0}
    done = [False]

    clock = Clock(runtime, name="bfs-clock")

    def node_task(v: int) -> None:
        level = 0
        while True:
            if depth.get(v) == level:
                # My level: publish neighbour depths, then leave.
                for u in adj[v]:
                    if u not in depth:
                        depth[u] = level + 1
                clock.advance()  # close the work phase
                clock.drop()
                return
            clock.advance()  # work phase (idle for me)
            clock.advance()  # control phase
            if done[0]:
                clock.drop()
                return
            level += 1

    tasks = [
        runtime.spawn(node_task, v, register=[clock], name=f"bfs-{v}")
        for v in range(n_nodes)
    ]

    levels = 0
    # Sentinel, not len(depth): node tasks start publishing level-0
    # discoveries as soon as they spawn, so a len() taken here races and
    # could satisfy the no-progress test spuriously at level 0.
    visited_before = -1
    while True:
        clock.advance()  # work phase: node tasks of this level publish
        visited_after = len(depth)
        done[0] = visited_after == visited_before or visited_after == n_nodes
        visited_before = visited_after
        clock.advance()  # control phase: the flag is now visible
        levels += 1
        if done[0]:
            break
    clock.drop()
    for t in tasks:
        t.join(60)

    reference = serial_bfs(adj, root)
    validated = depth == reference
    return WorkloadResult(
        name="BFS",
        n_tasks=n_nodes,
        checksum=float(sum(depth.values())),
        validated=validated,
        details={"levels": levels, "visited": len(depth)},
    ).require_valid()
