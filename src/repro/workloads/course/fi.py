"""FI: iterative Fibonacci over a shared array of clocked variables.

"Each element of the array holds the outcome of a Fibonacci number.
When the program starts it launches n tasks. The i-th task stores its
Fibonacci number in the i-th clocked variable and synchronises with
task i+1 and task i+2 that read the produced value."

One clocked variable (hence one barrier) *per value*: resources scale
with tasks, the regime where the SG is no smaller than the WFG
(Table 3: FI's SG is about twice the Auto/WFG edge count).

Deadlock-freedom discipline: every task touches its clocks in ascending
index order — the classic resource-ordering argument; the test-suite's
mutation check shows that *violating* the order deadlocks (and Armus
reports it).

Validation: exact Fibonacci numbers.
"""

from __future__ import annotations

from typing import List

from repro.runtime.clocked_var import ClockedVar
from repro.runtime.verifier import ArmusRuntime
from repro.workloads.common import WorkloadResult


def run_fi(
    runtime: ArmusRuntime,
    n: int = 16,
) -> WorkloadResult:
    """Compute fib(0..n-1) with one task and one clocked variable each."""
    if n < 3:
        raise ValueError("n >= 3 keeps every case interesting")
    cvs: List[ClockedVar] = [ClockedVar(None, runtime=runtime) for _ in range(n)]
    results = [0] * n

    def my_indices(i: int) -> List[int]:
        """The clocked variables task ``i`` interacts with, in ascending
        order: its two inputs (tasks 2+) and its own output.  A task must
        register with *exactly* these clocks — registering with a clock
        it never advances would stall that clock's other members (the
        deadlock the test-suite's mutation check demonstrates).
        """
        inputs = [i - 2, i - 1] if i >= 2 else []
        return inputs + [i]

    def worker(i: int) -> None:
        # Ascending clock order: read inputs (i-2 then i-1), write own.
        if i >= 2:
            a = _read(cvs[i - 2])
            b = _read(cvs[i - 1])
            value = a + b
        else:
            value = i  # fib(0) = 0, fib(1) = 1
        cvs[i].set(value)
        cvs[i].next()
        results[i] = value
        for j in my_indices(i):
            cvs[j].drop()

    def _read(cv: ClockedVar) -> int:
        cv.next()  # synchronise with the writer's commit
        return cv.get()

    tasks = []
    for i in range(n):
        clocks = [cvs[j].clock for j in my_indices(i)]
        tasks.append(
            runtime.spawn(worker, i, register=clocks, name=f"fi-{i}")
        )
    # The driver created every clocked variable, hence is registered with
    # every clock; it must leave or everyone blocks on it (the running
    # example's bug, avoided the X10 way).
    for cv in cvs:
        cv.drop()
    for t in tasks:
        t.join(60)

    expected = [0, 1]
    while len(expected) < n:
        expected.append(expected[-1] + expected[-2])
    validated = results == expected[:n]
    return WorkloadResult(
        name="FI",
        n_tasks=n,
        checksum=float(results[-1]),
        validated=validated,
        details={"n": n, "fib_last": results[-1]},
    ).require_valid()
