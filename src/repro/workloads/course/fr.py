"""FR: recursive Fibonacci with a clocked variable per call.

"Recursive calls are executed in parallel and a clocked variable
synchronises the caller with the callee" — the futures-encoded-as-
barriers pattern of Section 2.2 ("languages with futures turn each
function call into a join barrier, so it can happen that there are as
many join barriers as there are tasks").

Every call creates an output clocked variable; the caller creates the
variable (and is thereby registered with its clock), spawns the callee
registered as writer, and reads by advancing the clock.  Barriers grow
with the call tree, the regime where a fixed SG can be 10x bigger than
the WFG (Table 3's FR row).

Validation: exact Fibonacci value, and the call count must equal the
known call-tree size (2*fib(n+1) - 1 for the naive recursion).
"""

from __future__ import annotations

import threading

from repro.runtime.clocked_var import ClockedVar
from repro.runtime.verifier import ArmusRuntime
from repro.workloads.common import WorkloadResult


def run_fr(
    runtime: ArmusRuntime,
    n: int = 9,
) -> WorkloadResult:
    """Compute fib(n) with one task + one clocked variable per call."""
    calls = [0]
    calls_lock = threading.Lock()

    def fib_task(k: int, out: ClockedVar) -> None:
        """Compute fib(k), publish through ``out``, release it."""
        with calls_lock:
            calls[0] += 1
        if k < 2:
            value = k
        else:
            left = ClockedVar(None, runtime=runtime)   # caller registered
            right = ClockedVar(None, runtime=runtime)
            runtime.spawn(fib_task, k - 1, left, register=[left.clock])
            runtime.spawn(fib_task, k - 2, right, register=[right.clock])
            left.next()
            a = left.get()
            left.drop()
            right.next()
            b = right.get()
            right.drop()
            value = a + b
        out.set(value)
        out.next()
        out.drop()

    root = ClockedVar(None, runtime=runtime)
    runtime.spawn(fib_task, n, root, register=[root.clock])
    root.next()
    result = root.get()
    root.drop()

    def fib(k: int) -> int:
        a, b = 0, 1
        for _ in range(k):
            a, b = b, a + b
        return a

    expected = fib(n)
    expected_calls = 2 * fib(n + 1) - 1
    validated = result == expected and calls[0] == expected_calls
    return WorkloadResult(
        name="FR",
        n_tasks=calls[0],
        checksum=float(result),
        validated=validated,
        details={"n": n, "calls": calls[0], "expected_calls": expected_calls},
    ).require_valid()
