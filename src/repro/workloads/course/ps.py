"""PS: parallel prefix sum (cumulative sum).

"Given an input array with as many elements as there are tasks, the
outcome of task i is the partial sum of the array up to the i-th
element. All tasks proceed stepwise and are synchronised by a global
barrier."  Hillis-Steele inclusive scan: log2(n) doubling rounds, one
task per element, one global barrier.

This is the WFG's worst case (Table 3: 781 average WFG edges vs 6 SG
edges): every round, up to ``n`` tasks block on the *same* event, and
each of them impedes the others' next event — a dense task-to-task
dependency that the SG collapses into a couple of event vertices.

Validation: exact match with ``numpy.cumsum``.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.barriers import CyclicBarrier
from repro.runtime.verifier import ArmusRuntime
from repro.workloads.common import WorkloadResult


def run_ps(
    runtime: ArmusRuntime,
    n_tasks: int = 32,
    seed: int = 3,
) -> WorkloadResult:
    """Prefix sum over ``n_tasks`` elements, one task per element."""
    rng = np.random.default_rng(seed)
    values = rng.integers(1, 100, size=n_tasks).astype(np.float64)
    x = values.copy()
    buf = x.copy()
    rounds = int(np.ceil(np.log2(max(n_tasks, 2))))

    barrier = CyclicBarrier(n_tasks, runtime, name="ps-bar")

    def element(i: int) -> None:
        for k in range(rounds):
            stride = 1 << k
            contribution = x[i - stride] if i >= stride else 0.0
            barrier.await_barrier()  # everyone has read the old values
            buf[i] = x[i] + contribution
            barrier.await_barrier()  # everyone has written the new values
            x[i] = buf[i]
            barrier.await_barrier()  # publish before the next read
        barrier.deregister()

    tasks = [
        runtime.spawn(element, i, register=[barrier], name=f"ps-{i}")
        for i in range(n_tasks)
    ]
    for t in tasks:
        t.join(60)

    expected = np.cumsum(values)
    err = float(np.max(np.abs(x - expected)))
    return WorkloadResult(
        name="PS",
        n_tasks=n_tasks,
        checksum=float(x[-1]),
        validated=err == 0.0,
        details={"err": err, "rounds": rounds},
    ).require_valid()
