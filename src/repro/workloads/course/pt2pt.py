"""PT2PT: point-to-point synchronisation via phasers (Shirako et al.).

Section 2.2 cites phaser-based point-to-point synchronisation as the
regime where "we expect the WFG to be more beneficial": instead of one
global barrier, every adjacent pair of tasks shares a dedicated phaser,
so resources scale with tasks (like FI/FR) while each synchronisation
involves exactly two parties.

The workload is a 1-D stencil relaxation: task ``i`` owns cell ``i`` and
synchronises with neighbours ``i-1``/``i+1`` through the pair phasers
before reading their values each iteration — the classic wavefront
pattern that needs no global barrier at all.

Validation: bit-identical to a serial Jacobi sweep of the same stencil.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.runtime.phaser import Phaser
from repro.runtime.verifier import ArmusRuntime
from repro.workloads.common import WorkloadResult


def _serial_reference(values: np.ndarray, iterations: int) -> np.ndarray:
    cur = values.copy()
    for _ in range(iterations):
        nxt = cur.copy()
        nxt[1:-1] = (cur[:-2] + cur[1:-1] + cur[2:]) / 3.0
        cur = nxt
    return cur


def run_pt2pt(
    runtime: ArmusRuntime,
    n_tasks: int = 16,
    iterations: int = 6,
    seed: int = 29,
) -> WorkloadResult:
    """Relax a 1-D stencil with one phaser per adjacent task pair.

    Each iteration is a two-phase step on every pair phaser the task
    shares (read barrier, then write barrier), giving 2x(pairs) local
    synchronisations per iteration and zero global ones.
    """
    if n_tasks < 2:
        raise ValueError("point-to-point needs at least two tasks")
    rng = np.random.default_rng(seed)
    cur = rng.standard_normal(n_tasks)
    nxt = cur.copy()
    grids = [cur, nxt]
    # pair[i] synchronises task i with task i+1.  The driver stays
    # registered with every pair until all workers are in place — the
    # Figure 2 idiom; otherwise an early worker laps its still-empty
    # phasers before its neighbour registers (Section 2.2's race).
    pairs: List[Phaser] = [
        Phaser(runtime, register_self=True, name=f"pair{i}")
        for i in range(n_tasks - 1)
    ]

    def my_pairs(i: int) -> List[Phaser]:
        out = []
        if i > 0:
            out.append(pairs[i - 1])
        if i < n_tasks - 1:
            out.append(pairs[i])
        return out

    def worker(i: int) -> None:
        for it in range(iterations):
            src = grids[it % 2]
            dst = grids[1 - it % 2]
            # Phase A: neighbours exchange "my value is readable".
            for ph in my_pairs(i):
                ph.arrive_and_await_advance()
            if 0 < i < n_tasks - 1:
                dst[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0
            else:
                dst[i] = src[i]  # boundary cells are fixed
            # Phase B: neighbours exchange "I am done writing".
            for ph in my_pairs(i):
                ph.arrive_and_await_advance()
        for ph in my_pairs(i):
            ph.deregister()

    tasks = [
        runtime.spawn(worker, i, register=my_pairs(i), name=f"pt2pt-{i}")
        for i in range(n_tasks)
    ]
    for ph in pairs:
        ph.deregister()  # every worker registered: the driver steps out
    for t in tasks:
        t.join(60)

    final = grids[iterations % 2]
    rng2 = np.random.default_rng(seed)
    reference = _serial_reference(rng2.standard_normal(n_tasks), iterations)
    err = float(np.max(np.abs(final - reference)))
    return WorkloadResult(
        name="PT2PT",
        n_tasks=n_tasks,
        checksum=float(final.sum()),
        validated=err == 0.0,
        details={"err": err, "pairs": len(pairs), "iterations": iterations},
    ).require_valid()
