"""SE: the Sieve of Eratosthenes as a clocked pipeline.

"There is a task per prime number and one clocked variable per task":
stage ``j`` adopts the first number it sees as its prime and filters
multiples out of the stream; survivors flow to the next stage through
the stage's output clocked variable, one number per clock phase.

The pipeline is synchronous: every stage advances its input and output
clocks once per phase, for a fixed number of phases (stream length plus
pipeline depth), carrying ``HOLE`` markers where a number was filtered
— this keeps every clock's membership busy each phase, the discipline
that makes the program deadlock-free.

Tasks ≈ clocked variables: the regime where WFG and SG sizes coincide
(Table 3's SE row: 23 vs 51 vs 23 edges).

Validation: collected primes must equal the classic array sieve's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.runtime.clocked_var import ClockedVar
from repro.runtime.verifier import ArmusRuntime
from repro.workloads.common import WorkloadResult

#: Marker for "no number this phase" (filtered upstream or drained).
HOLE = None


def array_sieve(limit: int) -> List[int]:
    """The classic sequential sieve, as the validation reference."""
    flags = [True] * (limit + 1)
    flags[0] = flags[1] = False
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            for j in range(i * i, limit + 1, i):
                flags[j] = False
    return [i for i, f in enumerate(flags) if f]


def run_se(
    runtime: ArmusRuntime,
    limit: int = 50,
) -> WorkloadResult:
    """Sieve the primes up to ``limit`` through a clocked pipeline."""
    numbers = list(range(2, limit + 1))
    expected = array_sieve(limit)
    n_stages = len(expected)  # one stage per prime
    phases = len(numbers) + n_stages + 1  # stream + drain

    # cv[j] is the channel from stage j-1 to stage j (cv[0] is fed by
    # the driver); cv[n_stages] is the tail the driver drains.
    cvs: List[ClockedVar] = [
        ClockedVar(HOLE, runtime=runtime) for _ in range(n_stages + 1)
    ]
    primes: List[Optional[int]] = [HOLE] * n_stages

    def stage(j: int) -> None:
        """Adopt the first incoming number as my prime; filter the rest."""
        inp, out = cvs[j], cvs[j + 1]
        my_prime: Optional[int] = None
        for _ in range(phases):
            inp.next()
            value = inp.get()
            forward: Optional[int] = HOLE
            if value is not HOLE:
                if my_prime is None:
                    my_prime = value
                    primes[j] = value
                elif value % my_prime != 0:
                    forward = value
            out.set(forward)
            out.next()
        inp.drop()
        out.drop()

    tasks = [
        runtime.spawn(
            stage, j, register=[cvs[j].clock, cvs[j + 1].clock], name=f"se-{j}"
        )
        for j in range(n_stages)
    ]
    # The driver feeds cv[0] and drains cv[n_stages]; it drops the clocks
    # of every intermediate channel it implicitly created.
    for cv in cvs[1:-1]:
        cv.drop()
    leaked: List[int] = []
    feed = cvs[0]
    tail = cvs[-1]
    for phase in range(phases):
        feed.set(numbers[phase] if phase < len(numbers) else HOLE)
        feed.next()
        tail.next()
        value = tail.get()
        if value is not HOLE:
            leaked.append(value)  # a number no stage claimed or filtered
    feed.drop()
    tail.drop()
    for t in tasks:
        t.join(60)

    validated = primes == expected and not leaked
    return WorkloadResult(
        name="SE",
        n_tasks=n_stages,
        checksum=float(sum(p for p in primes if p is not None)),
        validated=validated,
        details={"primes": len(expected), "leaked": leaked},
    ).require_valid()
