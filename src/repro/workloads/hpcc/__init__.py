"""HPCC-style distributed workloads (Section 6.2).

One SPMD task per place of a :class:`~repro.distributed.places.Cluster`,
synchronised by a distributed clock (the X10 deployment sketch of
Section 2.1).  Kernels: FT and STREAM from the HPC Challenge suite,
SSCA2 from the HPCS graph-analysis benchmark, and JACOBI / KMEANS from
the X10 website examples — the paper's Figure 7 set.
"""

from repro.workloads.hpcc.stream import run_stream
from repro.workloads.hpcc.ft import run_dist_ft
from repro.workloads.hpcc.kmeans import run_kmeans
from repro.workloads.hpcc.jacobi import run_jacobi
from repro.workloads.hpcc.ssca2 import run_ssca2

KERNELS = {
    "FT": run_dist_ft,
    "KMEANS": run_kmeans,
    "JACOBI": run_jacobi,
    "SSCA2": run_ssca2,
    "STREAM": run_stream,
}

__all__ = [
    "run_stream",
    "run_dist_ft",
    "run_kmeans",
    "run_jacobi",
    "run_ssca2",
    "KERNELS",
]
