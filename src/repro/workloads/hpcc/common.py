"""Shared scaffolding for the distributed kernels: one task per place,
a cluster-wide clock for global barrier steps, clock-based reductions.

The deployment mirrors the paper's sketch::

    finish for (p in CLUSTER) at (p) async kernel();

with the clock spanning every place — the case that motivates the
event-based representation: no site ever needs the global membership of
the clock, only its own tasks' local phases.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List

import numpy as np

from repro.distributed.places import Cluster
from repro.runtime.clock import Clock
from repro.runtime.tasks import Task


class DistPool:
    """``len(cluster)`` SPMD ranks, one per place, on a shared clock."""

    def __init__(self, cluster: Cluster, name: str = "dist") -> None:
        self.cluster = cluster
        self.n = len(cluster)
        self.name = name
        # The driver creates the clock (and is registered); it drops out
        # after spawning so only the per-place ranks synchronise.
        self.clock = Clock(cluster[0].runtime, name=f"{name}-clock")
        self._partials = np.zeros(self.n)
        self._errors: List[BaseException] = []
        self._errors_lock = threading.Lock()

    # -- rank-side -----------------------------------------------------------
    def barrier(self) -> None:
        """Cluster-wide barrier step (distributed clock advance)."""
        self.clock.advance()

    def all_reduce(self, rank: int, value: float) -> float:
        """Deposit a partial; returns the cluster-wide sum (two steps)."""
        self._partials[rank] = value
        self.clock.advance()
        total = float(self._partials.sum())
        self.clock.advance()
        return total

    # -- driver-side ------------------------------------------------------------
    def run(
        self, body: Callable[[int, "DistPool"], Any], timeout: float = 120.0
    ) -> List[Task]:
        """Spawn one rank per place, drop the driver's clock membership,
        join everyone."""

        def wrapped(rank: int) -> None:
            try:
                body(rank, self)
            except BaseException as exc:  # noqa: BLE001 - re-raised by join
                with self._errors_lock:
                    self._errors.append(exc)
                raise
            finally:
                # Ranks leave the clock so stragglers never wait on a
                # terminated sibling (X10 terminate-and-deregister also
                # applies, this just makes it explicit).
                if self.clock.is_registered():
                    self.clock.drop()

        tasks = [
            place.spawn(
                wrapped,
                rank,
                register=[self.clock],
                name=f"{self.name}@{place.site_id}",
            )
            for rank, place in enumerate(self.cluster.places)
        ]
        self.clock.drop()  # the driver stops impeding the ranks
        for t in tasks:
            t.join(timeout)
        return tasks
