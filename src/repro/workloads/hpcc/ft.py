"""FT: the HPCC distributed FFT (Figure 7's FT).

The same spectral evolution as the local NPB FT, but with one rank per
place and the row/column passes separated by distributed clock steps —
the all-to-all transpose boundary of a real distributed FFT.

Validation: checksums and the final field against ``numpy.fft.fft2``.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.places import Cluster
from repro.workloads.common import WorkloadResult, slab
from repro.workloads.hpcc.common import DistPool


def run_dist_ft(
    cluster: Cluster,
    size: int = 32,
    steps: int = 3,
    seed: int = 23,
) -> WorkloadResult:
    """Distributed spectral evolution on a ``size x size`` field."""
    n = len(cluster)
    rng = np.random.default_rng(seed)
    field = rng.standard_normal((size, size)) + 1j * rng.standard_normal(
        (size, size)
    )
    original = field.copy()

    k = np.fft.fftfreq(size) * size
    k2 = k[:, None] ** 2 + k[None, :] ** 2
    decay = np.exp(-4.0 * np.pi**2 * 1e-4 * k2)

    work = np.zeros_like(field)
    spectrum = np.zeros_like(field)
    checksums = np.zeros(steps, dtype=complex)

    pool = DistPool(cluster, name="ft")

    def body(rank: int, pool: DistPool) -> None:
        rows = slab(size, rank, n)
        cols = slab(size, rank, n)
        work[rows] = np.fft.fft(field[rows], axis=1)
        pool.barrier()  # transpose boundary
        spectrum[:, cols] = np.fft.fft(work[:, cols], axis=0)
        pool.barrier()
        for step in range(steps):
            spectrum[rows] *= decay[rows]
            pool.barrier()
            if rank == 0:
                checksums[step] = spectrum.sum()
            pool.barrier()
        work[:, cols] = np.fft.ifft(spectrum[:, cols], axis=0)
        pool.barrier()
        field[rows] = np.fft.ifft(work[rows], axis=1)
        pool.barrier()

    pool.run(body)

    ref = np.fft.fft2(original)
    ref_checks = np.zeros(steps, dtype=complex)
    for step in range(steps):
        ref = ref * decay
        ref_checks[step] = ref.sum()
    ref_field = np.fft.ifft2(ref)

    check_err = float(np.max(np.abs(checksums - ref_checks)))
    field_err = float(np.max(np.abs(field - ref_field)))
    scale = float(np.max(np.abs(ref_checks))) or 1.0
    validated = check_err < 1e-8 * scale and field_err < 1e-10
    return WorkloadResult(
        name="FT",
        n_tasks=n,
        checksum=float(np.abs(checksums[-1])),
        validated=validated,
        details={"checksum_err": check_err, "field_err": field_err},
    ).require_valid()
