"""JACOBI: the X10 example Jacobi iteration (Figure 7's JACOBI).

Classic 2-D Jacobi relaxation for the Laplace equation with Dirichlet
boundary values: each place owns a row slab; every iteration computes
the new slab from the old grid and meets at the clock twice (compute,
then swap) — the paper's configuration is a 40x40 matrix for 40
iterations, which we keep.

Validation: bit-identical to a serial Jacobi reference, plus monotone
decrease of the residual (guaranteed for Jacobi on this problem).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.places import Cluster
from repro.workloads.common import WorkloadResult, slab
from repro.workloads.hpcc.common import DistPool


def _boundary_grid(size: int) -> np.ndarray:
    """Zero interior, deterministic non-trivial boundary."""
    u = np.zeros((size, size))
    x = np.linspace(0.0, 1.0, size)
    u[0, :] = np.sin(np.pi * x)
    u[-1, :] = np.sin(2.0 * np.pi * x) * 0.5
    u[:, 0] = x * (1 - x)
    u[:, -1] = 0.25
    return u


def _serial_jacobi(u: np.ndarray, iterations: int) -> np.ndarray:
    cur = u.copy()
    nxt = u.copy()
    for _ in range(iterations):
        nxt[1:-1, 1:-1] = 0.25 * (
            cur[:-2, 1:-1] + cur[2:, 1:-1] + cur[1:-1, :-2] + cur[1:-1, 2:]
        )
        cur, nxt = nxt, cur
    return cur


def run_jacobi(
    cluster: Cluster,
    size: int = 40,
    iterations: int = 40,
) -> WorkloadResult:
    """Distributed Jacobi relaxation (paper parameters by default)."""
    n = len(cluster)
    cur = _boundary_grid(size)
    nxt = cur.copy()
    grids = [cur, nxt]
    residuals = np.zeros((n, iterations))

    pool = DistPool(cluster, name="jacobi")

    def body(rank: int, pool: DistPool) -> None:
        interior = slab(size - 2, rank, n)
        lo, hi = interior.start + 1, interior.stop + 1
        for it in range(iterations):
            src = grids[it % 2]
            dst = grids[1 - it % 2]
            if lo < hi:
                dst[lo:hi, 1:-1] = 0.25 * (
                    src[lo - 1:hi - 1, 1:-1]
                    + src[lo + 1:hi + 1, 1:-1]
                    + src[lo:hi, :-2]
                    + src[lo:hi, 2:]
                )
                residuals[rank, it] = float(
                    np.abs(dst[lo:hi, 1:-1] - src[lo:hi, 1:-1]).sum()
                )
            pool.barrier()  # the whole new grid is written before reuse

    pool.run(body)
    final = grids[iterations % 2]

    reference = _serial_jacobi(_boundary_grid(size), iterations)
    grid_err = float(np.max(np.abs(final - reference)))
    total_res = residuals.sum(axis=0)
    # Jacobi's update magnitude decays geometrically on Laplace problems.
    decaying = bool(total_res[-1] < total_res[0])
    validated = grid_err == 0.0 and decaying
    return WorkloadResult(
        name="JACOBI",
        n_tasks=n,
        checksum=float(final.sum()),
        validated=validated,
        details={"grid_err": grid_err, "first_res": float(total_res[0]),
                 "last_res": float(total_res[-1])},
    ).require_valid()
