"""KMEANS: Lloyd's algorithm from the X10 examples (Figure 7's KMEANS).

Points are partitioned across places; each iteration computes partial
centroid sums per place, meets at the clock, lets place 0 combine, and
meets again — two cluster-wide steps per iteration (the paper's
configuration: 25k points, 3k clusters, 5 iterations; ours is scaled).

Validation: the distributed run must produce bit-identical centroids to
a serial reference of the same algorithm, and the inertia (within-
cluster sum of squares) must be non-increasing across iterations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.distributed.places import Cluster
from repro.workloads.common import WorkloadResult, slab
from repro.workloads.hpcc.common import DistPool


def _make_blobs(
    n_points: int, k: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic Gaussian blobs and their initial centroids."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(k, 2))
    assignments = rng.integers(0, k, size=n_points)
    points = centers[assignments] + rng.standard_normal((n_points, 2)) * 0.5
    # Initial centroids: the first k points (deterministic, standard).
    return points, points[:k].copy()


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    d = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return d.argmin(axis=1)


def _serial_kmeans(
    points: np.ndarray, centroids: np.ndarray, iterations: int
) -> np.ndarray:
    """The single-task reference the distributed run must reproduce."""
    c = centroids.copy()
    for _ in range(iterations):
        labels = _assign(points, c)
        for j in range(c.shape[0]):
            mask = labels == j
            if mask.any():
                c[j] = points[mask].mean(axis=0)
    return c


def run_kmeans(
    cluster: Cluster,
    n_points: int = 2000,
    k: int = 8,
    iterations: int = 5,
    seed: int = 31,
) -> WorkloadResult:
    """Distributed Lloyd iterations on ``len(cluster)`` places."""
    n = len(cluster)
    points, centroids = _make_blobs(n_points, k, seed)
    initial_centroids = centroids.copy()

    sums = np.zeros((n, k, 2))
    counts = np.zeros((n, k), dtype=np.int64)
    per_rank_inertia = np.zeros((n, iterations))

    pool = DistPool(cluster, name="kmeans")

    def body(rank: int, pool: DistPool) -> None:
        mine = slab(n_points, rank, n)
        pts = points[mine]
        for it in range(iterations):
            labels = _assign(pts, centroids)
            sums[rank] = 0.0
            counts[rank] = 0
            np.add.at(sums[rank], labels, pts)
            np.add.at(counts[rank], labels, 1)
            per_rank_inertia[rank, it] = float(
                ((pts - centroids[labels]) ** 2).sum()
            )
            pool.barrier()  # all partials deposited
            if rank == 0:
                total_counts = counts.sum(axis=0)
                total_sums = sums.sum(axis=0)
                nonempty = total_counts > 0
                centroids[nonempty] = (
                    total_sums[nonempty] / total_counts[nonempty, None]
                )
            pool.barrier()  # new centroids published

    pool.run(body)
    inertias = per_rank_inertia.sum(axis=0)

    reference = _serial_kmeans(points, initial_centroids, iterations)
    centroid_err = float(np.max(np.abs(centroids - reference)))
    monotone = bool(np.all(np.diff(inertias) <= 1e-6 * inertias[0]))
    validated = centroid_err < 1e-9 and monotone
    return WorkloadResult(
        name="KMEANS",
        n_tasks=n,
        checksum=float(centroids.sum()),
        validated=validated,
        details={
            "centroid_err": centroid_err,
            "inertia_monotone": monotone,
            "final_inertia": float(inertias[-1]),
        },
    ).require_valid()
