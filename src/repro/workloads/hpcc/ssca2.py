"""SSCA2: the HPCS graph-analysis benchmark (Figure 7's SSCA2).

A scaled rendition of SSCA#2's kernel structure on an R-MAT-style
power-law graph (the paper uses 2^15 vertices, edge probability 7%):

* K1 — build the graph (driver side, deterministic);
* K2 — classify heavy edges (max-weight search, distributed reduce);
* K3/K4 — per-root BFS traversals computing reachability and
  shortest-path counts, roots partitioned across places, with clock
  steps between kernels.

Validation: heavy-edge weight and per-root BFS statistics must match a
serial recomputation exactly; reachability counts must also match a
classic matrix-power closure on the small instance.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

from repro.distributed.places import Cluster
from repro.workloads.common import WorkloadResult, slab
from repro.workloads.hpcc.common import DistPool


def rmat_graph(
    scale: int, avg_degree: int, seed: int
) -> Tuple[List[List[int]], np.ndarray]:
    """An R-MAT-ish directed graph: adjacency lists + edge-weight matrix.

    Recursive quadrant sampling with the canonical (0.57, 0.19, 0.19,
    0.05) probabilities — power-law degrees like SSCA2's generator.
    """
    n = 1 << scale
    rng = np.random.default_rng(seed)
    n_edges = n * avg_degree
    srcs = np.zeros(n_edges, dtype=np.int64)
    dsts = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(n_edges)
        quad_src = (r >= 0.57 + 0.19) & (r < 0.57 + 0.19 + 0.19)
        quad_dst = (r >= 0.57) & (r < 0.57 + 0.19)
        quad_both = r >= 0.57 + 0.19 + 0.19
        bit = 1 << level
        srcs += bit * (quad_src | quad_both)
        dsts += bit * (quad_dst | quad_both)
    weights = np.zeros((n, n))
    adj: List[List[int]] = [[] for _ in range(n)]
    w = rng.integers(1, 100, size=n_edges)
    for s, d, wt in zip(srcs, dsts, w):
        if s != d and weights[s, d] == 0.0:
            weights[s, d] = float(wt)
            adj[s].append(int(d))
    for neighbours in adj:
        neighbours.sort()
    return adj, weights


def bfs_stats(adj: List[List[int]], root: int) -> Tuple[int, int, int]:
    """(reached vertices, sum of depths, max depth) for one BFS."""
    depth = {root: 0}
    queue = deque([root])
    total_depth = 0
    max_depth = 0
    while queue:
        v = queue.popleft()
        for u in adj[v]:
            if u not in depth:
                depth[u] = depth[v] + 1
                total_depth += depth[u]
                max_depth = max(max_depth, depth[u])
                queue.append(u)
    return len(depth), total_depth, max_depth


def run_ssca2(
    cluster: Cluster,
    scale: int = 7,
    avg_degree: int = 6,
    n_roots: int = 16,
    seed: int = 47,
) -> WorkloadResult:
    """Run K2 (heavy edges) and K3/K4 (per-root BFS) across places."""
    n_places = len(cluster)
    adj, weights = rmat_graph(scale, avg_degree, seed)
    n = len(adj)
    rng = np.random.default_rng(seed + 1)
    roots = rng.integers(0, n, size=n_roots)

    heavy_partial = np.zeros(n_places)
    stats = np.zeros((n_roots, 3), dtype=np.int64)

    pool = DistPool(cluster, name="ssca2")

    def body(rank: int, pool: DistPool) -> None:
        # K2: distributed max-weight edge search over row slabs.
        rows = slab(n, rank, n_places)
        heavy_partial[rank] = float(weights[rows].max()) if rows.stop > rows.start else 0.0
        pool.barrier()
        # K3/K4: BFS statistics, roots partitioned across places.
        mine = slab(n_roots, rank, n_places)
        for i in range(mine.start, mine.stop):
            stats[i] = bfs_stats(adj, int(roots[i]))
        pool.barrier()

    pool.run(body)
    heavy = float(heavy_partial.max())

    # Serial validation.
    ref_heavy = float(weights.max())
    ref_stats = np.array([bfs_stats(adj, int(r)) for r in roots])
    stats_err = int(np.abs(stats - ref_stats).max())
    # Cross-check reachability with a boolean matrix closure (small n).
    reach = weights > 0
    closure = reach | np.eye(n, dtype=bool)
    for _ in range(scale + 1):
        closure = closure | (closure @ closure)
    closure_counts = closure[roots].sum(axis=1)
    closure_err = int(np.abs(stats[:, 0] - closure_counts).max())

    validated = heavy == ref_heavy and stats_err == 0 and closure_err == 0
    return WorkloadResult(
        name="SSCA2",
        n_tasks=n_places,
        checksum=float(stats.sum()),
        validated=validated,
        details={
            "heavy_edge": heavy,
            "stats_err": stats_err,
            "closure_err": closure_err,
            "vertices": n,
        },
    ).require_valid()
