"""STREAM: the HPCC memory-bandwidth triad, distributed.

Each place repeatedly computes its slab of ``a = b + s * c`` with a
cluster-wide clock step between repetitions (the HPCC "epoch" barrier).
Validation is exact: the result must equal the closed form everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.places import Cluster
from repro.workloads.common import WorkloadResult, slab
from repro.workloads.hpcc.common import DistPool


def run_stream(
    cluster: Cluster,
    size: int = 65_536,
    reps: int = 5,
    scalar: float = 3.0,
) -> WorkloadResult:
    """Run ``reps`` triad epochs over a ``size``-element vector."""
    n = len(cluster)
    b = np.arange(size, dtype=np.float64)
    c = np.ones(size) * 0.5
    a = np.zeros(size)

    pool = DistPool(cluster, name="stream")

    def body(rank: int, pool: DistPool) -> None:
        mine = slab(size, rank, n)
        for _ in range(reps):
            a[mine] = b[mine] + scalar * c[mine]
            pool.barrier()

    pool.run(body)

    expected = b + scalar * c
    err = float(np.max(np.abs(a - expected)))
    return WorkloadResult(
        name="STREAM",
        n_tasks=n,
        checksum=float(a.sum()),
        validated=err == 0.0,
        details={"err": err, "reps": reps, "size": size},
    ).require_valid()
