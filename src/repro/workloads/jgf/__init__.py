"""JGF-like workloads (Section 6.1): the RT ray tracer and the SYNC
barrier microbenchmark from the Java Grande Forum suite."""

from repro.workloads.jgf.rt import run_rt
from repro.workloads.jgf.sync import run_sync

KERNELS = {"RT": run_rt, "SYNC": run_sync}

__all__ = ["run_rt", "run_sync", "KERNELS"]
