"""RT: a small ray tracer (JGF Section 3 ray tracer, scaled down).

Renders a deterministic scene of diffuse spheres with a single point
light and hard shadows, fully vectorised per scanline.  Ranks render
interleaved scanlines (the JGF decomposition) and meet at a cyclic
barrier between the render and checksum stages.

Validation: the per-rank checksums must sum to the single-task render's
checksum exactly (the decomposition cannot change the image), and the
image must contain both lit sphere pixels and background.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.common import SpmdPool, WorkloadResult
from repro.runtime.verifier import ArmusRuntime

# Scene: (center xyz, radius, albedo rgb)
SPHERES: List[Tuple[np.ndarray, float, np.ndarray]] = [
    (np.array([0.0, 0.0, -3.0]), 1.0, np.array([0.9, 0.2, 0.2])),
    (np.array([1.2, 0.4, -2.4]), 0.5, np.array([0.2, 0.9, 0.2])),
    (np.array([-1.1, -0.3, -2.2]), 0.4, np.array([0.2, 0.3, 0.9])),
    (np.array([0.0, -101.0, -3.0]), 100.0, np.array([0.6, 0.6, 0.6])),
]
LIGHT = np.array([3.0, 4.0, 0.0])
AMBIENT = 0.08


def _intersect(origins: np.ndarray, dirs: np.ndarray):
    """Nearest sphere hit per ray.  Returns (t, sphere index) with
    ``t = inf`` where nothing is hit.  Shapes: origins/dirs (n, 3)."""
    n = dirs.shape[0]
    best_t = np.full(n, np.inf)
    best_i = np.full(n, -1)
    for i, (center, radius, _albedo) in enumerate(SPHERES):
        oc = origins - center
        b = np.einsum("ij,ij->i", oc, dirs)
        c = np.einsum("ij,ij->i", oc, oc) - radius * radius
        disc = b * b - c
        hit = disc > 0.0
        sq = np.sqrt(np.where(hit, disc, 0.0))
        t0 = -b - sq
        t1 = -b + sq
        t = np.where(t0 > 1e-4, t0, t1)
        ok = hit & (t > 1e-4) & (t < best_t)
        best_t = np.where(ok, t, best_t)
        best_i = np.where(ok, i, best_i)
    return best_t, best_i


def _shade_row(y: int, width: int, height: int) -> np.ndarray:
    """Render one scanline; returns (width, 3) RGB in [0, 1]."""
    xs = (np.arange(width) + 0.5) / width * 2.0 - 1.0
    yv = 1.0 - (y + 0.5) / height * 2.0
    dirs = np.stack(
        [xs, np.full(width, yv), np.full(width, -1.5)], axis=1
    )
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    origins = np.zeros((width, 3))
    t, idx = _intersect(origins, dirs)
    row = np.zeros((width, 3))
    hit = idx >= 0
    if not hit.any():
        return row
    points = origins[hit] + dirs[hit] * t[hit, None]
    albedo = np.stack([SPHERES[i][2] for i in idx[hit]])
    centers = np.stack([SPHERES[i][0] for i in idx[hit]])
    radii = np.array([SPHERES[i][1] for i in idx[hit]])
    normals = (points - centers) / radii[:, None]
    to_light = LIGHT - points
    dist = np.linalg.norm(to_light, axis=1, keepdims=True)
    ldir = to_light / dist
    lambert = np.maximum(np.einsum("ij,ij->i", normals, ldir), 0.0)
    # Hard shadows: a ray towards the light from just off the surface.
    shadow_t, _ = _intersect(points + normals * 1e-3, ldir)
    lit = shadow_t[:, None] > dist[:, 0, None]  # nothing closer than light
    shade = AMBIENT + lambert[:, None] * np.where(lit, 1.0, 0.0)
    row[hit] = np.clip(albedo * shade, 0.0, 1.0)
    return row


def render(width: int, height: int, rows) -> np.ndarray:
    """Render the given scanlines; returns (len(rows), width, 3)."""
    return np.stack([_shade_row(y, width, height) for y in rows])


def run_rt(
    runtime: ArmusRuntime,
    n_tasks: int = 4,
    width: int = 48,
    height: int = 32,
    frames: int = 2,
) -> WorkloadResult:
    """Render ``frames`` frames on ``n_tasks`` ranks with interleaved
    scanlines and a barrier between the render and checksum stages."""
    image = np.zeros((height, width, 3))
    partial_sums = np.zeros(n_tasks)

    pool = SpmdPool(runtime, n_tasks, name="rt")

    def body(rank: int, pool: SpmdPool) -> None:
        for _frame in range(frames):
            mine = list(range(rank, height, n_tasks))  # interleaved lines
            if mine:  # more ranks than scanlines leaves some idle
                image[mine] = render(width, height, mine)
            pool.barrier_step()
            partial_sums[rank] = float(image[mine].sum()) if mine else 0.0
            pool.barrier_step()

    pool.run(body)

    reference = render(width, height, range(height))
    image_err = float(np.max(np.abs(image - reference)))
    checksum = float(partial_sums.sum())
    ref_checksum = float(reference.sum())
    has_content = bool(
        (reference.max() > 0.5) and (reference.min() == 0.0)
    )
    validated = (
        image_err == 0.0
        and abs(checksum - ref_checksum) < 1e-9
        and has_content
    )
    return WorkloadResult(
        name="RT",
        n_tasks=n_tasks,
        checksum=checksum,
        validated=validated,
        details={"image_err": image_err, "frames": frames},
    ).require_valid()
