"""SYNC: the JGF barrier microbenchmark.

Measures raw barrier throughput — ``n`` tasks performing ``steps``
back-to-back barrier synchronisations with no work in between.  This is
the purest measure of instrumentation overhead: every task blocks on
every step, so verification traffic is maximal per unit time.

Validation: a shared step counter must equal ``n * steps`` afterwards,
and a per-rank phase trace must show all ranks in lockstep (no rank ever
two steps ahead — the barrier property itself).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.common import SpmdPool, WorkloadResult
from repro.runtime.verifier import ArmusRuntime


def run_sync(
    runtime: ArmusRuntime,
    n_tasks: int = 4,
    steps: int = 50,
) -> WorkloadResult:
    """Run ``steps`` empty barrier synchronisations on ``n_tasks`` ranks."""
    arrivals = np.zeros((n_tasks, steps), dtype=np.int64)
    progress = np.zeros(n_tasks, dtype=np.int64)

    pool = SpmdPool(runtime, n_tasks, name="sync")

    def body(rank: int, pool: SpmdPool) -> None:
        for step in range(steps):
            # Lockstep witness: nobody may be more than one step ahead of
            # anyone else *before* the barrier of this step.
            spread = int(progress.max() - progress.min())
            arrivals[rank, step] = spread
            progress[rank] += 1
            pool.barrier_step()

    pool.run(body)

    total = int(progress.sum())
    max_spread = int(arrivals.max())
    validated = total == n_tasks * steps and max_spread <= 1
    return WorkloadResult(
        name="SYNC",
        n_tasks=n_tasks,
        checksum=float(total),
        validated=validated,
        details={"max_spread": max_spread, "steps": steps},
    ).require_valid()
