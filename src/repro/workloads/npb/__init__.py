"""NPB-like kernels (Section 6.1): BT, CG, FT, MG, SP.

Scaled-down reimplementations of the NAS Parallel Benchmark kernels and
pseudo-applications used by the paper, preserving their synchronisation
structure: SPMD over a fixed task count, a fixed set of cyclic barriers,
stepwise iteration, barrier-based reductions, and validated output.

Problem sizes are tiny "class T" instances (laptop-scale); the
verification cost drivers — tasks, barrier steps, blocked statuses —
scale with the task count exactly as in the originals.
"""

from repro.workloads.npb.cg import run_cg
from repro.workloads.npb.mg import run_mg
from repro.workloads.npb.ft import run_ft
from repro.workloads.npb.bt import run_bt
from repro.workloads.npb.sp import run_sp

#: name -> callable(runtime, n_tasks, **params) for harness sweeps
KERNELS = {
    "BT": run_bt,
    "CG": run_cg,
    "FT": run_ft,
    "MG": run_mg,
    "SP": run_sp,
}

__all__ = ["run_bt", "run_cg", "run_ft", "run_mg", "run_sp", "KERNELS"]
