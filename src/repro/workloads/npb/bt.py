"""BT: block-tridiagonal ADI pseudo-application (NPB BT).

Advances a two-component coupled diffusion system on a 2-D grid with
ADI time stepping: each step factors the implicit operator into an
x-sweep and a y-sweep of *block*-tridiagonal line solves (2x2 blocks
coupling the components), with a barrier between sweeps — BT's
signature structure.

Parallel structure: ranks own row slabs for the x-sweep and column slabs
for the y-sweep; two barrier steps per time step plus a reduction for
the per-step energy checksum.

Validation: one full ADI step is compared against assembling and solving
the dense block systems with ``numpy.linalg.solve``; energies must be
monotonically non-increasing (diffusion dissipates).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.common import SpmdPool, WorkloadResult, slab
from repro.workloads.npb.solvers import block_thomas
from repro.runtime.verifier import ArmusRuntime


def _bt_blocks(m: int, r: float, eps: float):
    """The shared line-system blocks: (lower, diag, upper), each (m,2,2).

    Diagonal blocks couple the two components (the "block" in BT);
    off-diagonals are the diffusion coupling ``-r I``.  The coupling is
    written as ``eps * (I - swap)`` so the whole line matrix is
    ``I + r*Laplacian + eps*coupling`` with both addends PSD — the solve
    is a contraction and the energy checksum decreases monotonically,
    which the validation relies on.
    """
    I2 = np.eye(2)
    K = np.array([[1.0 + 2.0 * r + eps, -eps], [-eps, 1.0 + 2.0 * r + eps]])
    lower = np.tile(-r * I2, (m, 1, 1))
    upper = np.tile(-r * I2, (m, 1, 1))
    diag = np.tile(K, (m, 1, 1))
    # Homogeneous Neumann-ish ends: only one neighbour.
    diag[0] = np.array([[1.0 + r + eps, -eps], [-eps, 1.0 + r + eps]])
    diag[m - 1] = diag[0]
    return lower, diag, upper


def _dense_line_matrix(m: int, r: float, eps: float) -> np.ndarray:
    """Dense (2m x 2m) version of one BT line system, for validation."""
    lower, diag, upper = _bt_blocks(m, r, eps)
    a = np.zeros((2 * m, 2 * m))
    for i in range(m):
        a[2 * i:2 * i + 2, 2 * i:2 * i + 2] = diag[i]
        if i > 0:
            a[2 * i:2 * i + 2, 2 * i - 2:2 * i] = lower[i]
        if i < m - 1:
            a[2 * i:2 * i + 2, 2 * i + 2:2 * i + 4] = upper[i]
    return a


def run_bt(
    runtime: ArmusRuntime,
    n_tasks: int = 4,
    size: int = 24,
    steps: int = 6,
    r: float = 0.4,
    eps: float = 0.05,
    seed: int = 5,
) -> WorkloadResult:
    """Advance the coupled field ``steps`` ADI steps on ``n_tasks`` ranks."""
    rng = np.random.default_rng(seed)
    # u has shape (size, size, 2): two coupled components per grid point.
    u = rng.standard_normal((size, size, 2))
    lower, diag, upper = _bt_blocks(size, r, eps)
    energies = np.zeros(steps)

    pool = SpmdPool(runtime, n_tasks, name="bt")

    def body(rank: int, pool: SpmdPool) -> None:
        rows = slab(size, rank, n_tasks)
        cols = slab(size, rank, n_tasks)
        for step in range(steps):
            # x-sweep: implicit solve along each owned row.
            u[rows] = block_thomas(lower, diag, upper, u[rows])
            pool.barrier_step()
            # y-sweep: implicit solve along each owned column.
            u[:, cols] = block_thomas(
                lower, diag, upper, u[:, cols].transpose(1, 0, 2)
            ).transpose(1, 0, 2)
            pool.barrier_step()
            # Energy checksum (two more barrier steps via the reducer).
            local = float(np.sum(u[rows] ** 2))
            total = pool.all_reduce(rank, local)
            if rank == 0:
                energies[step] = total
            pool.barrier_step()

    # Keep a copy to validate the first step against dense solves.
    u0 = u.copy()
    pool.run(body)

    # Validation 1: replay step 1 with dense solves.
    a = _dense_line_matrix(size, r, eps)
    v = u0.copy()
    v = np.linalg.solve(a, v.reshape(size, 2 * size).T).T.reshape(size, size, 2)
    v = (
        np.linalg.solve(a, v.transpose(1, 0, 2).reshape(size, 2 * size).T)
        .T.reshape(size, size, 2)
        .transpose(1, 0, 2)
    )
    first_energy = float(np.sum(v**2))
    energy_err = abs(first_energy - energies[0]) / first_energy
    # Validation 2: dissipation — energies strictly non-increasing.
    dissipative = bool(np.all(np.diff(energies) <= 1e-9))
    validated = energy_err < 1e-10 and dissipative
    return WorkloadResult(
        name="BT",
        n_tasks=n_tasks,
        checksum=float(energies[-1]),
        validated=validated,
        details={"energy_err": energy_err, "dissipative": dissipative},
    ).require_valid()
